"""Failure-injection and malformed-input tests across the API surface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.model import Instance
from repro.exceptions import InvalidInstanceError, ReproError


class TestMalformedInstances:
    def test_nan_similarities_rejected(self):
        sims = np.array([[0.5, np.nan]])
        with pytest.raises(InvalidInstanceError, match="finite"):
            Instance.from_matrix(sims, np.array([1]), np.array([1, 1]))

    def test_inf_similarities_rejected(self):
        sims = np.array([[np.inf, 0.5]])
        with pytest.raises(InvalidInstanceError, match="finite"):
            Instance.from_matrix(sims, np.array([1]), np.array([1, 1]))

    def test_nan_attributes_rejected(self):
        attrs = np.array([[1.0, np.nan]])
        with pytest.raises(InvalidInstanceError, match="finite"):
            Instance.from_attributes(
                attrs, np.zeros((2, 2)), np.array([1]), np.array([1, 1])
            )

    def test_fractional_capacities_rejected(self):
        # Fractional capacities are a modelling error; truncating them
        # silently (the old int64-cast behaviour) hid real bugs.
        with pytest.raises(InvalidInstanceError, match="integral"):
            Instance.from_matrix(
                np.array([[0.5]]), np.array([1.9]), np.array([2.1])
            )

    def test_integral_float_capacities_accepted(self):
        # Whole numbers spelled as floats are fine -- only genuinely
        # fractional values are rejected.
        instance = Instance.from_matrix(
            np.array([[0.5]]), np.array([2.0]), np.array([3.0])
        )
        assert instance.event_capacities[0] == 2
        assert instance.user_capacities[0] == 3

    def test_nan_capacities_rejected(self):
        with pytest.raises(InvalidInstanceError, match="finite"):
            Instance.from_matrix(
                np.array([[0.5]]), np.array([np.nan]), np.array([1.0])
            )


class TestCorruptFiles:
    def test_cli_missing_input_file_exits_2(self, tmp_path, capsys):
        code = main(["solve", "--input", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_corrupt_npz_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"this is not an npz archive")
        code = main(["solve", "--input", str(bad)])
        assert code == 2

    def test_truncated_npz(self, tmp_path, small_instance):
        from repro.io import load_instance_npz, save_instance_npz

        path = tmp_path / "inst.npz"
        save_instance_npz(small_instance, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ReproError):
            load_instance_npz(path)

    def test_arrangement_with_out_of_range_pairs(self, tmp_path, small_instance):
        import json

        from repro.io import load_arrangement_json

        path = tmp_path / "arr.json"
        path.write_text(json.dumps({"version": 1, "pairs": [[999, 0]], "max_sum": 0}))
        with pytest.raises((ReproError, IndexError)):
            load_arrangement_json(path, small_instance)


class TestDegenerateShapes:
    def test_one_by_one_instance_all_solvers(self):
        from repro.core.algorithms import SOLVERS, get_solver
        from repro.core.validation import validate_arrangement

        instance = Instance.from_matrix(
            np.array([[0.7]]), np.array([1]), np.array([1])
        )
        for name in sorted(SOLVERS):
            if name == "exhaustive":
                continue
            arrangement = get_solver(name).solve(instance)
            validate_arrangement(arrangement)
            if name not in ("random-v", "random-u"):
                assert arrangement.pairs() == [(0, 0)], name

    def test_single_event_many_users(self):
        from repro.core.algorithms import GreedyGEACC

        sims = np.linspace(0.1, 0.9, 30).reshape(1, 30)
        instance = Instance.from_matrix(
            sims, np.array([5]), np.ones(30, dtype=int)
        )
        arrangement = GreedyGEACC().solve(instance)
        # The 5 most interested users get the seats.
        assert sorted(arrangement.users_of(0)) == [25, 26, 27, 28, 29]

    def test_many_events_single_user(self):
        from repro.core.algorithms import GreedyGEACC
        from repro.core.conflicts import ConflictGraph

        sims = np.linspace(0.1, 0.9, 10).reshape(10, 1)
        conflicts = ConflictGraph.complete(10)
        instance = Instance.from_matrix(
            sims, np.ones(10, dtype=int), np.array([10]), conflicts
        )
        arrangement = GreedyGEACC().solve(instance)
        assert arrangement.pairs() == [(9, 0)]  # only the best, all conflict

    def test_all_capacities_zero(self):
        from repro.core.algorithms import GreedyGEACC, MinCostFlowGEACC

        instance = Instance.from_matrix(
            np.array([[0.9]]), np.array([0]), np.array([0])
        )
        assert len(GreedyGEACC().solve(instance)) == 0
        assert len(MinCostFlowGEACC().solve(instance)) == 0
