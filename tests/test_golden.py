"""Golden-value regression tests.

Every generator and solver in this library is deterministic per seed, so
these exact MaxSum values act as a tripwire: any unintended change to a
similarity formula, a tie-break, a generator distribution, or an
algorithm's selection rule shows up here immediately. If a change is
*intentional* (and correct), update the constants alongside it.
"""

import pytest

from repro import (
    GreedyGEACC,
    MeetupCityConfig,
    MinCostFlowGEACC,
    RandomV,
    SyntheticConfig,
    generate_instance,
    meetup_city,
)

_CONFIG = SyntheticConfig(
    n_events=20, n_users=120, cv_high=10, cu_high=4, conflict_ratio=0.25
)


@pytest.fixture(scope="module")
def synthetic_seed7():
    return generate_instance(_CONFIG, 7)


def test_golden_greedy(synthetic_seed7):
    assert GreedyGEACC().solve(synthetic_seed7).max_sum() == pytest.approx(
        65.03877111368212
    )


def test_golden_mincostflow(synthetic_seed7):
    assert MinCostFlowGEACC().solve(synthetic_seed7).max_sum() == pytest.approx(
        62.43383443951378
    )


def test_golden_random_v(synthetic_seed7):
    assert RandomV(seed=0).solve(synthetic_seed7).max_sum() == pytest.approx(
        44.67919626843969
    )


def test_golden_meetup_auckland():
    # Constant updated when the similarity cross terms moved from BLAS
    # matmul to shape-stable einsum (tiling contract): 1-ulp sim shifts
    # flip greedy tie-breaks on this workload.
    instance = meetup_city(MeetupCityConfig(city="auckland"), 0)
    assert GreedyGEACC().solve(instance).max_sum() == pytest.approx(
        915.5538035767246
    )


def test_golden_ordering(synthetic_seed7):
    """The headline ordering holds on the golden workload."""
    greedy = GreedyGEACC().solve(synthetic_seed7).max_sum()
    mcf = MinCostFlowGEACC().solve(synthetic_seed7).max_sum()
    random_v = RandomV(seed=0).solve(synthetic_seed7).max_sum()
    assert greedy > mcf > random_v
