"""Tests for the ``geacc`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "greedy" in out
    assert "fig6-pruning" in out
    assert "auckland" in out


def test_solve_synthetic(capsys):
    code = main([
        "solve", "--events", "6", "--users", "20", "--cv-max", "4",
        "--algorithms", "greedy", "random-v",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "greedy" in out
    assert "MaxSum=" in out
    assert "random-v" in out


def test_solve_city(capsys):
    code = main(["solve", "--city", "auckland", "--algorithms", "greedy"])
    assert code == 0
    assert "MaxSum=" in capsys.readouterr().out


def test_solve_with_memory_flag(capsys):
    code = main([
        "solve", "--events", "4", "--users", "10", "--algorithms", "greedy",
        "--memory",
    ])
    assert code == 0
    assert "peak=" in capsys.readouterr().out


def test_experiment_smoke(capsys, monkeypatch):
    code = main(["experiment", "fig3-conflicts", "--scale", "smoke"])
    assert code == 0
    out = capsys.readouterr().out
    assert "MaxSum" in out
    assert "cf_ratio" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_unknown_algorithm_rejected():
    with pytest.raises(SystemExit):
        main(["solve", "--algorithms", "magic"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_generate_and_solve_roundtrip(capsys, tmp_path):
    path = str(tmp_path / "instance.json")
    assert main([
        "generate", "--events", "5", "--users", "15", "--cv-max", "4",
        "--output", path,
    ]) == 0
    out_path = str(tmp_path / "arrangement.json")
    assert main([
        "solve", "--input", path, "--algorithms", "greedy", "random-v",
        "--output", out_path,
    ]) == 0
    out = capsys.readouterr().out
    assert "written to" in out
    import json

    payload = json.loads(open(out_path).read())
    assert payload["pairs"]


def test_generate_npz(capsys, tmp_path):
    path = str(tmp_path / "instance.npz")
    assert main(["generate", "--events", "4", "--users", "8", "--output", path]) == 0
    assert main(["solve", "--input", path]) == 0
    assert "MaxSum=" in capsys.readouterr().out


def test_reproduce_subset(capsys, tmp_path):
    out = str(tmp_path / "report.md")
    assert main([
        "reproduce", "--scale", "smoke",
        "--figures", "fig3-conflicts", "fig6-pruning",
        "--output", out,
    ]) == 0
    text = open(out).read()
    assert "# GEACC reproduction report" in text
    assert "Table I" in text
    assert "fig3-conflicts" in text
    assert "fig6-pruning" in text
    assert "fig4-real" not in text  # subset respected


def test_reproduce_prints_without_output(capsys):
    assert main([
        "reproduce", "--scale", "smoke", "--figures", "fig3-dimension",
    ]) == 0
    assert "fig3-dimension" in capsys.readouterr().out


def test_simulate(capsys):
    assert main([
        "simulate", "--events", "8", "--users", "40", "--cv-max", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "greedy-arrival" in out
    assert "rebatch" in out
    assert "MaxSum" in out


def test_solve_scenario(capsys):
    assert main([
        "solve", "--scenario", "conference", "--algorithms", "greedy",
    ]) == 0
    assert "MaxSum=" in capsys.readouterr().out


def test_info_lists_scenarios(capsys):
    assert main(["info"]) == 0
    assert "festival" in capsys.readouterr().out
