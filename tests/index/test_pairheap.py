"""Tests for the candidate pair heap of Algorithm 2."""

import pytest

from repro.index.pairheap import CandidatePairHeap


def test_pops_in_non_increasing_similarity():
    heap = CandidatePairHeap()
    heap.push(0, 0, 0.5)
    heap.push(1, 0, 0.9)
    heap.push(0, 1, 0.7)
    sims = [heap.pop()[2] for _ in range(3)]
    assert sims == [0.9, 0.7, 0.5]


def test_no_pair_pushed_twice():
    """The paper's invariant: NO pair enters H more than once, ever."""
    heap = CandidatePairHeap()
    assert heap.push(0, 0, 0.5)
    assert not heap.push(0, 0, 0.9)  # duplicate while in heap
    heap.pop()
    assert not heap.push(0, 0, 0.5)  # duplicate after being popped
    assert len(heap) == 0


def test_membership_tracking():
    heap = CandidatePairHeap()
    heap.push(2, 3, 0.4)
    assert heap.contains(2, 3)
    assert heap.was_pushed(2, 3)
    heap.pop()
    assert not heap.contains(2, 3)
    assert heap.was_pushed(2, 3)


def test_tie_break_deterministic():
    heap = CandidatePairHeap()
    heap.push(1, 1, 0.5)
    heap.push(0, 2, 0.5)
    heap.push(0, 1, 0.5)
    order = [heap.pop()[:2] for _ in range(3)]
    assert order == [(0, 1), (0, 2), (1, 1)]


def test_peek_sim():
    heap = CandidatePairHeap()
    assert heap.peek_sim() is None
    heap.push(0, 0, 0.3)
    heap.push(1, 1, 0.8)
    assert heap.peek_sim() == pytest.approx(0.8)
    assert len(heap) == 2  # peek does not pop


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        CandidatePairHeap().pop()


def test_bool_and_len():
    heap = CandidatePairHeap()
    assert not heap
    heap.push(0, 0, 0.1)
    assert heap
    assert len(heap) == 1
