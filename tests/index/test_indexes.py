"""Tests common to all nearest-neighbour indexes, plus per-kind cases."""

import numpy as np
import pytest

from repro.exceptions import EmptyIndexError
from repro.index import INDEX_CLASSES, make_index
from repro.index.kdtree import KDTreeIndex
from repro.index.linear import ChunkedLinearScanIndex, LinearScanIndex

ALL_KINDS = sorted(INDEX_CLASSES)


def brute_force_order(points, query):
    dists = np.linalg.norm(points - query, axis=1)
    return dists[np.argsort(dists, kind="stable")]


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestAllIndexes:
    def test_stream_is_ascending_and_complete(self, kind):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 100, (60, 5))
        query = rng.uniform(0, 100, 5)
        index = make_index(kind, points)
        stream = list(index.stream(query))
        assert len(stream) == 60
        assert {i for i, _ in stream} == set(range(60))
        dists = [d for _, d in stream]
        assert all(a <= b + 1e-9 for a, b in zip(dists, dists[1:]))
        np.testing.assert_allclose(
            sorted(dists), brute_force_order(points, query), atol=1e-9
        )

    def test_reported_distances_are_true_distances(self, kind):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 10, (25, 3))
        query = rng.uniform(0, 10, 3)
        index = make_index(kind, points)
        for idx, dist in index.stream(query):
            assert dist == pytest.approx(np.linalg.norm(points[idx] - query))

    def test_query_top_k(self, kind):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, (30, 4))
        query = points[7]  # exact duplicate of an indexed point
        index = make_index(kind, points)
        top = index.query(query, k=3)
        assert len(top) == 3
        assert top[0][1] == pytest.approx(0.0)

    def test_query_k_larger_than_index(self, kind):
        points = np.zeros((2, 2))
        index = make_index(kind, points)
        assert len(index.query(np.zeros(2), k=10)) == 2

    def test_empty_index_query_raises(self, kind):
        index = make_index(kind, np.zeros((0, 3)))
        with pytest.raises(EmptyIndexError):
            index.query(np.zeros(3))

    def test_empty_index_stream_is_empty(self, kind):
        index = make_index(kind, np.zeros((0, 3)))
        assert list(index.stream(np.zeros(3))) == []

    def test_duplicate_points_all_returned(self, kind):
        points = np.ones((10, 2))
        index = make_index(kind, points)
        stream = list(index.stream(np.zeros(2)))
        assert len(stream) == 10
        assert all(d == pytest.approx(np.sqrt(2)) for _, d in stream)

    def test_dimension_mismatch(self, kind):
        index = make_index(kind, np.zeros((3, 4)))
        with pytest.raises(ValueError, match="dimension"):
            next(iter(index.stream(np.zeros(2))))

    def test_invalid_k(self, kind):
        index = make_index(kind, np.zeros((3, 2)))
        with pytest.raises(ValueError):
            index.query(np.zeros(2), k=0)

    def test_single_point(self, kind):
        index = make_index(kind, np.array([[1.0, 2.0]]))
        assert list(index.stream(np.array([1.0, 2.0]))) == [(0, 0.0)]


def test_make_index_unknown_kind():
    with pytest.raises(ValueError, match="unknown index kind"):
        make_index("lsh", np.zeros((1, 1)))


def test_points_must_be_2d():
    with pytest.raises(ValueError, match="2-D"):
        LinearScanIndex(np.zeros(5))


def test_chunked_invalid_chunk():
    with pytest.raises(ValueError):
        ChunkedLinearScanIndex(np.zeros((2, 2)), chunk=0)


def test_chunked_various_chunk_sizes():
    rng = np.random.default_rng(4)
    points = rng.uniform(0, 1, (37, 3))
    query = rng.uniform(0, 1, 3)
    expected = [i for i, _ in LinearScanIndex(points).stream(query)]
    for chunk in (1, 2, 7, 37, 100):
        got = [i for i, _ in ChunkedLinearScanIndex(points, chunk).stream(query)]
        # Distances must agree (index ties may permute within equal dist).
        dists_exp = np.linalg.norm(points[expected] - query, axis=1)
        dists_got = np.linalg.norm(points[got] - query, axis=1)
        np.testing.assert_allclose(dists_got, dists_exp, atol=1e-12)


def test_kdtree_invalid_leaf_size():
    with pytest.raises(ValueError):
        KDTreeIndex(np.zeros((2, 2)), leaf_size=0)


def test_kdtree_handles_degenerate_axis():
    """All points share one coordinate; splits must still terminate."""
    rng = np.random.default_rng(5)
    points = np.column_stack([np.zeros(50), rng.uniform(0, 1, 50)])
    index = KDTreeIndex(points, leaf_size=4)
    stream = list(index.stream(np.array([0.0, 0.5])))
    assert len(stream) == 50


def test_kdtree_many_duplicates_at_median():
    points = np.array([[0.0, 0.0]] * 20 + [[1.0, 1.0]] * 20)
    index = KDTreeIndex(points, leaf_size=2)
    stream = list(index.stream(np.array([0.1, 0.1])))
    assert len(stream) == 40
    assert stream[0][0] < 20  # a (0,0) point comes first


def test_idistance_partitions_cover_all_points():
    from repro.index.idistance import IDistanceIndex

    rng = np.random.default_rng(6)
    points = rng.normal(size=(200, 4))
    index = IDistanceIndex(points, n_refs=5, seed=1)
    total = sum(p.keys.shape[0] for p in index._partitions)
    assert total == 200


def test_idistance_more_refs_than_points():
    from repro.index.idistance import IDistanceIndex

    points = np.random.default_rng(7).uniform(0, 1, (3, 2))
    index = IDistanceIndex(points, n_refs=10)
    assert len(list(index.stream(np.zeros(2)))) == 3


class TestVAFile:
    def test_invalid_bits(self):
        from repro.index.vafile import VAFileIndex

        with pytest.raises(ValueError):
            VAFileIndex(np.zeros((2, 2)), bits=0)
        with pytest.raises(ValueError):
            VAFileIndex(np.zeros((2, 2)), bits=20)

    def test_selectivity_in_unit_interval_and_filters(self):
        from repro.index.vafile import VAFileIndex

        rng = np.random.default_rng(11)
        points = rng.uniform(0, 100, (500, 4))
        index = VAFileIndex(points, bits=6)
        selectivity = index.selectivity(rng.uniform(0, 100, 4), k=5)
        assert 0 < selectivity <= 1
        # With 6 bits on uniform data, most points are filtered out.
        assert selectivity < 0.5

    def test_more_bits_never_less_selective(self):
        from repro.index.vafile import VAFileIndex

        rng = np.random.default_rng(12)
        points = rng.uniform(0, 1, (300, 3))
        query = rng.uniform(0, 1, 3)
        coarse = VAFileIndex(points, bits=2).selectivity(query, k=3)
        fine = VAFileIndex(points, bits=8).selectivity(query, k=3)
        assert fine <= coarse + 1e-12

    def test_selectivity_empty_index(self):
        from repro.index.vafile import VAFileIndex

        index = VAFileIndex(np.zeros((0, 3)))
        assert index.selectivity(np.zeros(3)) == 0.0

    def test_bounds_sandwich_true_distances(self):
        from repro.index.vafile import VAFileIndex

        rng = np.random.default_rng(13)
        points = rng.normal(size=(100, 5))
        index = VAFileIndex(points, bits=3)
        query = rng.normal(size=5)
        lower_sq, upper_sq = index._bounds(query)
        true_sq = ((points - query) ** 2).sum(axis=1)
        assert np.all(lower_sq <= true_sq + 1e-9)
        assert np.all(true_sq <= upper_sq + 1e-9)
