"""Tests for the dense tripartite SSP solver.

The critical property: it computes exactly the same minimum-cost flows as
the generic heap-based SSPA on the same GEACC-shaped network.
"""

import numpy as np
import pytest

from repro.exceptions import FlowError
from repro.flow.dense_bipartite import DenseBipartiteMinCostFlow
from repro.flow.network import FlowNetwork
from repro.flow.sspa import SuccessiveShortestPaths


def generic_reference(costs, cv, cu, amount=None):
    """Solve the same network with the generic SSPA."""
    n_events, n_users = costs.shape
    network = FlowNetwork()
    source = network.add_node()
    events = network.add_nodes(n_events)
    users = network.add_nodes(n_users)
    sink = network.add_node()
    for v in range(n_events):
        network.add_arc(source, events[v], int(cv[v]))
        for u in range(n_users):
            network.add_arc(events[v], users[u], 1, float(costs[v, u]))
    for u in range(n_users):
        network.add_arc(users[u], sink, int(cu[u]))
    solver = SuccessiveShortestPaths(network, source, sink)
    return solver.run(amount=amount)


@pytest.mark.parametrize("seed", range(6))
def test_matches_generic_sspa_at_max_flow(seed):
    rng = np.random.default_rng(seed)
    costs = rng.random((4, 6))
    cv = rng.integers(1, 4, size=4)
    cu = rng.integers(1, 3, size=6)
    dense = DenseBipartiteMinCostFlow(costs, cv, cu)
    dense.run()
    generic_flow, generic_cost = generic_reference(costs, cv, cu)
    assert dense.total_flow == generic_flow
    assert dense.total_cost == pytest.approx(generic_cost, abs=1e-9)


@pytest.mark.parametrize("amount", [1, 3, 5])
def test_matches_generic_at_fixed_amount(amount):
    rng = np.random.default_rng(77)
    costs = rng.random((3, 5))
    cv = np.array([2, 2, 2])
    cu = np.array([1, 2, 1, 2, 1])
    dense = DenseBipartiteMinCostFlow(costs, cv, cu)
    dense.run(amount=amount)
    _, generic_cost = generic_reference(costs, cv, cu, amount=amount)
    assert dense.total_flow == amount
    assert dense.total_cost == pytest.approx(generic_cost, abs=1e-9)


def test_augment_costs_non_decreasing():
    rng = np.random.default_rng(5)
    costs = rng.random((4, 8))
    dense = DenseBipartiteMinCostFlow(
        costs, rng.integers(1, 4, 4), rng.integers(1, 3, 8)
    )
    previous = -1.0
    while True:
        cost = dense.augment()
        if cost is None:
            break
        assert cost >= previous - 1e-9
        previous = cost


def test_stop_cost():
    costs = np.array([[0.2, 0.9], [0.95, 0.99]])
    dense = DenseBipartiteMinCostFlow(costs, np.ones(2, int), np.ones(2, int))
    routed = dense.run(stop_cost=0.9)
    assert routed == 1  # only the 0.2 path is cheaper than 0.9
    assert dense.total_cost == pytest.approx(0.2)


def test_flow_respects_capacities():
    rng = np.random.default_rng(6)
    costs = rng.random((5, 7))
    cv = rng.integers(1, 4, 5)
    cu = rng.integers(1, 3, 7)
    dense = DenseBipartiteMinCostFlow(costs, cv, cu)
    dense.run()
    assert np.all(dense.flow.sum(axis=1) <= cv)
    assert np.all(dense.flow.sum(axis=0) <= cu)
    assert dense.total_flow == dense.flow.sum()
    assert dense.total_flow == min(cv.sum(), cu.sum())


def test_exhausted_flag():
    dense = DenseBipartiteMinCostFlow(
        np.array([[0.5]]), np.array([1]), np.array([1])
    )
    assert dense.augment() is not None
    assert dense.augment() is None
    assert dense.exhausted


def test_input_validation():
    with pytest.raises(FlowError):
        DenseBipartiteMinCostFlow(np.zeros(3), np.ones(3), np.ones(1))
    with pytest.raises(FlowError):
        DenseBipartiteMinCostFlow(-np.ones((2, 2)), np.ones(2), np.ones(2))
    with pytest.raises(FlowError):
        DenseBipartiteMinCostFlow(np.ones((2, 2)), np.ones(3), np.ones(2))
