"""Tests for Dinic's max-flow, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.flow.maxflow import max_flow
from repro.flow.network import FlowNetwork


def test_simple_path():
    network = FlowNetwork()
    network.add_nodes(3)
    network.add_arc(0, 1, cap=5)
    network.add_arc(1, 2, cap=3)
    assert max_flow(network, 0, 2) == 3


def test_parallel_paths():
    network = FlowNetwork()
    network.add_nodes(4)
    network.add_arc(0, 1, cap=2)
    network.add_arc(0, 2, cap=3)
    network.add_arc(1, 3, cap=2)
    network.add_arc(2, 3, cap=1)
    assert max_flow(network, 0, 3) == 3


def test_needs_residual_rerouting():
    """The classic case where a greedy path must be partially undone."""
    network = FlowNetwork()
    network.add_nodes(4)
    network.add_arc(0, 1, cap=1)
    network.add_arc(0, 2, cap=1)
    network.add_arc(1, 2, cap=1)
    network.add_arc(1, 3, cap=1)
    network.add_arc(2, 3, cap=1)
    assert max_flow(network, 0, 3) == 2


def test_disconnected_sink():
    network = FlowNetwork()
    network.add_nodes(3)
    network.add_arc(0, 1, cap=4)
    assert max_flow(network, 0, 2) == 0


def test_source_equals_sink():
    network = FlowNetwork()
    network.add_nodes(1)
    assert max_flow(network, 0, 0) == 0


@pytest.mark.parametrize("seed", range(5))
def test_matches_networkx(seed):
    rng = np.random.default_rng(seed + 100)
    n, arcs = 8, 24
    network = FlowNetwork()
    network.add_nodes(n)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    for _ in range(arcs):
        tail, head = (int(x) for x in rng.integers(0, n, size=2))
        if tail == head:
            continue
        cap = int(rng.integers(1, 7))
        network.add_arc(tail, head, cap)
        if graph.has_edge(tail, head):
            graph[tail][head]["capacity"] += cap
        else:
            graph.add_edge(tail, head, capacity=cap)
    expected = nx.maximum_flow_value(graph, 0, n - 1)
    assert max_flow(network, 0, n - 1) == expected
