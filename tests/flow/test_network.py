"""Tests for the residual flow network."""

import pytest

from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork


@pytest.fixture
def triangle():
    network = FlowNetwork()
    network.add_nodes(3)
    network.add_arc(0, 1, cap=2, cost=1.0)   # arc 0
    network.add_arc(1, 2, cap=3, cost=0.5)   # arc 2
    return network


def test_paired_arc_layout(triangle):
    # Forward arcs sit at even indices; twins at odd.
    assert triangle.arcs[0].head == 1
    assert triangle.arcs[1].head == 0
    assert triangle.arcs[1].cap == 0
    assert triangle.arcs[1].cost == -1.0


def test_push_updates_both_directions(triangle):
    triangle.push(0, 2)
    assert triangle.arcs[0].flow == 2
    assert triangle.arcs[0].residual == 0
    assert triangle.arcs[1].flow == -2
    assert triangle.arcs[1].residual == 2  # residual arc became usable


def test_push_beyond_residual_raises(triangle):
    with pytest.raises(FlowError, match="exceeds residual"):
        triangle.push(0, 3)


def test_total_cost_counts_forward_arcs(triangle):
    triangle.push(0, 2)
    triangle.push(2, 1)
    assert triangle.total_cost() == pytest.approx(2 * 1.0 + 1 * 0.5)


def test_reset_flow(triangle):
    triangle.push(0, 1)
    triangle.reset_flow()
    assert triangle.arcs[0].flow == 0
    assert triangle.total_cost() == 0.0


def test_invalid_nodes_and_caps():
    network = FlowNetwork()
    network.add_nodes(2)
    with pytest.raises(FlowError):
        network.add_arc(0, 5, cap=1)
    with pytest.raises(FlowError):
        network.add_arc(0, 1, cap=-1)
    with pytest.raises(FlowError):
        network.add_nodes(-2)


def test_flow_on(triangle):
    triangle.push(0, 1)
    assert triangle.flow_on(0) == 1


def test_as_arrays_mirrors_scalar_arcs(triangle):
    arrays = triangle.as_arrays()
    assert arrays.n_arcs == len(triangle.arcs)
    for i, arc in enumerate(triangle.arcs):
        assert arrays.head[i] == arc.head
        assert arrays.cap[i] == arc.cap
        assert arrays.cost[i] == arc.cost
        assert arrays.flow[i] == arc.flow
        # An arc's tail is its twin's head.
        assert arrays.tail[i] == triangle.arcs[i ^ 1].head
    for node in range(triangle.n_nodes):
        ids = arrays.arc_ids[arrays.indptr[node] : arrays.indptr[node + 1]]
        assert list(ids) == triangle.adjacency[node]


def test_push_dual_writes_into_the_arrays_view(triangle):
    arrays = triangle.as_arrays()
    triangle.push(0, 2)
    assert arrays.flow[0] == 2
    assert arrays.flow[1] == -2  # the twin moved in lock-step
    assert triangle.as_arrays() is arrays  # topology unchanged: same view


def test_reset_flow_zeroes_the_arrays_view(triangle):
    arrays = triangle.as_arrays()
    triangle.push(0, 2)
    triangle.reset_flow()
    assert not arrays.flow.any()


def test_adding_arcs_rebuilds_the_arrays_view(triangle):
    stale = triangle.as_arrays()
    triangle.push(0, 1)
    triangle.add_arc(0, 2, cap=4, cost=2.0)
    fresh = triangle.as_arrays()
    assert fresh is not stale
    assert fresh.n_arcs == len(triangle.arcs)
    assert fresh.flow[0] == 1  # pre-growth flow carried over
    triangle.push(len(triangle.arcs) - 2, 3)
    assert fresh.flow[-2] == 3  # dual-writes target the fresh view
