"""Tests for the residual flow network."""

import pytest

from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork


@pytest.fixture
def triangle():
    network = FlowNetwork()
    network.add_nodes(3)
    network.add_arc(0, 1, cap=2, cost=1.0)   # arc 0
    network.add_arc(1, 2, cap=3, cost=0.5)   # arc 2
    return network


def test_paired_arc_layout(triangle):
    # Forward arcs sit at even indices; twins at odd.
    assert triangle.arcs[0].head == 1
    assert triangle.arcs[1].head == 0
    assert triangle.arcs[1].cap == 0
    assert triangle.arcs[1].cost == -1.0


def test_push_updates_both_directions(triangle):
    triangle.push(0, 2)
    assert triangle.arcs[0].flow == 2
    assert triangle.arcs[0].residual == 0
    assert triangle.arcs[1].flow == -2
    assert triangle.arcs[1].residual == 2  # residual arc became usable


def test_push_beyond_residual_raises(triangle):
    with pytest.raises(FlowError, match="exceeds residual"):
        triangle.push(0, 3)


def test_total_cost_counts_forward_arcs(triangle):
    triangle.push(0, 2)
    triangle.push(2, 1)
    assert triangle.total_cost() == pytest.approx(2 * 1.0 + 1 * 0.5)


def test_reset_flow(triangle):
    triangle.push(0, 1)
    triangle.reset_flow()
    assert triangle.arcs[0].flow == 0
    assert triangle.total_cost() == 0.0


def test_invalid_nodes_and_caps():
    network = FlowNetwork()
    network.add_nodes(2)
    with pytest.raises(FlowError):
        network.add_arc(0, 5, cap=1)
    with pytest.raises(FlowError):
        network.add_arc(0, 1, cap=-1)
    with pytest.raises(FlowError):
        network.add_nodes(-2)


def test_flow_on(triangle):
    triangle.push(0, 1)
    assert triangle.flow_on(0) == 1
