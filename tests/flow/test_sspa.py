"""Tests for the successive-shortest-paths min-cost-flow solver.

Cross-checked against networkx's ``max_flow_min_cost`` on random graphs
(costs scaled to integers for networkx, which requires them).
"""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import InfeasibleFlowError
from repro.flow.network import FlowNetwork
from repro.flow.sspa import SuccessiveShortestPaths, min_cost_flow


def build_diamond():
    """s=0 -> {1, 2} -> t=3 with distinct costs."""
    network = FlowNetwork()
    network.add_nodes(4)
    network.add_arc(0, 1, cap=2, cost=1.0)
    network.add_arc(0, 2, cap=2, cost=2.0)
    network.add_arc(1, 3, cap=2, cost=0.0)
    network.add_arc(2, 3, cap=2, cost=0.0)
    return network


def test_routes_cheapest_first():
    network = build_diamond()
    solver = SuccessiveShortestPaths(network, 0, 3)
    units, cost = solver.augment()
    assert units == 2  # bottleneck of the cheap path
    assert cost == pytest.approx(1.0)


def test_min_cost_flow_amount():
    network = build_diamond()
    flow, cost = min_cost_flow(network, 0, 3, amount=3)
    assert flow == 3
    assert cost == pytest.approx(2 * 1.0 + 1 * 2.0)


def test_max_flow_when_amount_none():
    network = build_diamond()
    flow, cost = min_cost_flow(network, 0, 3)
    assert flow == 4
    assert cost == pytest.approx(2 + 4)


def test_infeasible_amount_raises():
    network = build_diamond()
    with pytest.raises(InfeasibleFlowError):
        min_cost_flow(network, 0, 3, amount=5)


def test_stop_when_predicate():
    network = build_diamond()
    solver = SuccessiveShortestPaths(network, 0, 3)
    flow, cost = solver.run(stop_when=lambda c: c >= 2.0)
    assert flow == 2  # stops before the cost-2 path
    assert cost == pytest.approx(2.0)


def test_next_path_cost_monotone_nondecreasing():
    rng = np.random.default_rng(0)
    network, s, t = _random_network(rng, n=8, arcs=20)
    solver = SuccessiveShortestPaths(network, s, t)
    previous = -1.0
    while True:
        cost = solver.next_path_cost()
        if cost is None:
            break
        assert cost >= previous - 1e-9
        previous = cost
        solver.augment()


def test_negative_costs_with_bellman_ford_init():
    network = FlowNetwork()
    network.add_nodes(3)
    network.add_arc(0, 1, cap=1, cost=-2.0)
    network.add_arc(1, 2, cap=1, cost=1.0)
    network.add_arc(0, 2, cap=1, cost=0.5)
    flow, cost = min_cost_flow(network, 0, 2)
    assert flow == 2
    assert cost == pytest.approx(-1.0 + 0.5)


def _random_network(rng, n, arcs):
    network = FlowNetwork()
    network.add_nodes(n)
    for _ in range(arcs):
        tail, head = rng.integers(0, n, size=2)
        if tail == head:
            continue
        network.add_arc(int(tail), int(head), int(rng.integers(1, 5)),
                        float(rng.integers(0, 10)))
    return network, 0, n - 1


@pytest.mark.parametrize("seed", range(5))
def test_matches_networkx_on_random_graphs(seed):
    """Same max flow value and same min cost as networkx."""
    rng = np.random.default_rng(seed)
    n, arcs = 7, 18
    network = FlowNetwork()
    network.add_nodes(n)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    for _ in range(arcs):
        tail, head = (int(x) for x in rng.integers(0, n, size=2))
        if tail == head or graph.has_edge(tail, head):
            continue  # networkx max_flow_min_cost needs simple digraphs
        cap = int(rng.integers(1, 6))
        cost = int(rng.integers(0, 10))
        network.add_arc(tail, head, cap, float(cost))
        graph.add_edge(tail, head, capacity=cap, weight=cost)

    flow_dict = nx.max_flow_min_cost(graph, 0, n - 1)
    nx_flow_value = sum(flow_dict.get(0, {}).values()) - sum(
        targets.get(0, 0) for targets in flow_dict.values()
    )
    nx_total_cost = nx.cost_of_flow(graph, flow_dict)

    ours_flow, ours_cost = min_cost_flow(network, 0, n - 1)
    assert ours_flow == nx_flow_value
    assert ours_cost == pytest.approx(nx_total_cost, abs=1e-6)


def test_zero_capacity_arcs_ignored():
    network = FlowNetwork()
    network.add_nodes(3)
    network.add_arc(0, 1, cap=0, cost=0.0)
    network.add_arc(1, 2, cap=5, cost=0.0)
    flow, _ = min_cost_flow(network, 0, 2)
    assert flow == 0


def test_source_sink_direct_arc():
    network = FlowNetwork()
    network.add_nodes(2)
    network.add_arc(0, 1, cap=3, cost=2.0)
    flow, cost = min_cost_flow(network, 0, 1)
    assert flow == 3
    assert cost == pytest.approx(6.0)


def test_residual_rerouting_lowers_cost():
    """A later augmentation must push flow back over a used arc."""
    network = FlowNetwork()
    network.add_nodes(4)
    network.add_arc(0, 1, cap=1, cost=1.0)
    network.add_arc(0, 2, cap=1, cost=4.0)
    network.add_arc(1, 2, cap=1, cost=-2.0)  # tempting detour
    network.add_arc(1, 3, cap=1, cost=3.0)
    network.add_arc(2, 3, cap=1, cost=1.0)
    flow, cost = min_cost_flow(network, 0, 3)
    assert flow == 2
    # Optimal: 0-1-2-3 (1 - 2 + 1 = 0) and 0-2... cap(2,3)=1 so the
    # second unit goes 0-1-3 after rerouting: total = 0 + (1 + 3) = 4?
    # Let networkx arithmetic settle it instead of hand-waving:
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_edge(0, 1, capacity=1, weight=1)
    graph.add_edge(0, 2, capacity=1, weight=4)
    graph.add_edge(1, 2, capacity=1, weight=-2)
    graph.add_edge(1, 3, capacity=1, weight=3)
    graph.add_edge(2, 3, capacity=1, weight=1)
    expected = nx.cost_of_flow(graph, nx.max_flow_min_cost(graph, 0, 3))
    assert cost == pytest.approx(expected)


def test_augment_after_exhaustion_returns_none():
    network = build_diamond()
    solver = SuccessiveShortestPaths(network, 0, 3)
    solver.run()
    assert solver.augment() is None
    assert solver.next_path_cost() is None
    assert solver.exhausted
