"""Tests for the Theorem 1 reduction (MFCGS -> GEACC).

The key end-to-end check: for random MFCGS instances, the optimal MaxSum
of the reduced GEACC instance times R equals the MFCGS maximum flow.
"""

import numpy as np
import pytest

from repro.core.algorithms import PruneGEACC
from repro.exceptions import ReductionError
from repro.theory.reduction import MFCGSInstance, mfcgs_max_flow, reduce_to_geacc


def test_instance_validation():
    with pytest.raises(ReductionError):
        MFCGSInstance([(1, 2)])  # not three capacities
    with pytest.raises(ReductionError):
        MFCGSInstance([(1, 2, -1)])
    with pytest.raises(ReductionError):
        MFCGSInstance([(1, 1, 1), (1, 1, 1)], conflicts=[((0, 0), (0, 1))])
    with pytest.raises(ReductionError):
        MFCGSInstance([(1, 1, 1)], conflicts=[((0, 0), (5, 1))])
    with pytest.raises(ReductionError):
        MFCGSInstance([(1, 1, 1), (1, 1, 1)], conflicts=[((0, 3), (1, 1))])


def test_bottleneck():
    mfcgs = MFCGSInstance([(3, 1, 2), (5, 5, 5)])
    assert mfcgs.bottleneck(0) == 1
    assert mfcgs.bottleneck(1) == 5


def test_max_flow_no_conflicts():
    mfcgs = MFCGSInstance([(3, 1, 2), (5, 5, 5), (2, 2, 4)])
    assert mfcgs_max_flow(mfcgs) == 1 + 5 + 2


def test_max_flow_with_conflicts():
    # Paths 0 and 1 conflict: keep the larger (5); path 2 free.
    mfcgs = MFCGSInstance(
        [(3, 1, 2), (5, 5, 5), (2, 2, 4)],
        conflicts=[((0, 1), (1, 1))],
    )
    assert mfcgs_max_flow(mfcgs) == 5 + 2


def test_max_flow_conflict_triangle():
    mfcgs = MFCGSInstance(
        [(2, 2, 2), (3, 3, 3), (4, 4, 4)],
        conflicts=[((0, 0), (1, 0)), ((1, 2), (2, 2)), ((0, 1), (2, 1))],
    )
    # Pairwise conflicting: best single path = 4.
    assert mfcgs_max_flow(mfcgs) == 4


def test_reduction_structure():
    mfcgs = MFCGSInstance(
        [(1, 1, 1), (2, 2, 2), (3, 3, 3)],
        conflicts=[((0, 1), (1, 1))],
    )
    instance, r_total = reduce_to_geacc(mfcgs)
    assert r_total == 6
    assert instance.n_events == 3
    # Paths 0 and 1 merged into one user of capacity 2; path 2 alone.
    assert instance.n_users == 2
    assert sorted(instance.user_capacities.tolist()) == [1, 2]
    assert instance.conflicts.are_conflicting(0, 1)
    assert np.count_nonzero(instance.sims) == 3


def test_reduction_zero_bottlenecks_rejected():
    with pytest.raises(ReductionError, match="R = 0"):
        reduce_to_geacc(MFCGSInstance([(0, 1, 1)]))


@pytest.mark.parametrize("seed", range(8))
def test_equivalence_theorem1(seed):
    """max MaxSum * R == MFCGS max flow on random instances."""
    rng = np.random.default_rng(seed)
    n_paths = int(rng.integers(2, 6))
    caps = [tuple(int(c) for c in rng.integers(1, 6, size=3)) for _ in range(n_paths)]
    conflicts = []
    for i in range(n_paths):
        for j in range(i + 1, n_paths):
            if rng.random() < 0.3:
                conflicts.append(
                    ((i, int(rng.integers(0, 3))), (j, int(rng.integers(0, 3))))
                )
    mfcgs = MFCGSInstance(caps, conflicts)
    instance, r_total = reduce_to_geacc(mfcgs)
    optimum = PruneGEACC().solve(instance).max_sum()
    assert optimum * r_total == pytest.approx(mfcgs_max_flow(mfcgs), abs=1e-6)
