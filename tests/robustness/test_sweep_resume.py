"""Crash-safe sweeps: checkpointing, resume, retry, cell isolation."""

from __future__ import annotations

import json

import pytest

from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.exceptions import ReproError
from repro.experiments.runner import (
    CellResult,
    SweepCheckpoint,
    cell_key,
    run_cell,
    sweep_parameter,
)

GRID = (4, 6)
SOLVERS = ("greedy", "random-u")
REPEATS = 2


class CountingFactory:
    """Instance factory that counts calls and can inject faults."""

    def __init__(self, explode_on_call: int | None = None,
                 error: BaseException | None = None):
        self.calls = 0
        self.explode_on_call = explode_on_call
        self.error = error

    def __call__(self, x, seed):
        self.calls += 1
        if self.explode_on_call is not None and self.calls == self.explode_on_call:
            raise self.error if self.error is not None else RuntimeError("boom")
        config = SyntheticConfig(n_events=x, n_users=15, cv_high=4, cu_high=3)
        return generate_instance(config, seed)


def run_sweep(factory, path=None, resume=False, **kwargs):
    return sweep_parameter(
        "resume-test", "|V|", GRID, factory, solvers=SOLVERS,
        repeats=REPEATS, memory=False, checkpoint_path=path, resume=resume,
        **kwargs,
    )


def maxsum_table(sweep):
    return [(r.x, r.solver, r.max_sum, r.n_pairs) for r in sweep.records]


class TestCheckpointFile:
    def test_header_then_one_line_per_cell(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sweep(CountingFactory(), path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "geacc-sweep-v1"
        assert header["name"] == "resume-test"
        assert len(lines) == 1 + len(GRID) * REPEATS * len(SOLVERS)
        cell = CellResult.from_json(json.loads(lines[1]))
        assert cell.ok
        assert cell.key() == cell_key(GRID[0], 0, SOLVERS[0])

    def test_wrong_sweep_name_refuses_resume(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sweep(CountingFactory(), path)
        with pytest.raises(ReproError, match="belongs to sweep"):
            sweep_parameter(
                "a-different-sweep", "|V|", GRID, CountingFactory(),
                solvers=SOLVERS, repeats=REPEATS, memory=False,
                checkpoint_path=path, resume=True,
            )

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ReproError, match="not a sweep checkpoint"):
            SweepCheckpoint(path, "resume-test").load()


class TestResume:
    def test_resume_skips_completed_cells_byte_for_byte(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        reference = run_sweep(CountingFactory(), path)
        full_lines = path.read_text().splitlines(keepends=True)

        # Simulate a crash after 3 finished cells (header + 3 lines).
        killed = tmp_path / "killed.jsonl"
        killed.write_text("".join(full_lines[:4]))

        factory = CountingFactory()
        resumed = run_sweep(factory, killed, resume=True)

        # Previously-written lines are untouched, the rest was appended.
        assert killed.read_text().splitlines(keepends=True)[:4] == full_lines[:4]
        assert len(killed.read_text().splitlines()) == len(full_lines)
        # One instance per (x, seed) group that still has missing cells:
        # (4, seed 1) lost only its random-u cell, (6, seed 0) and
        # (6, seed 1) lost everything -> 3 regenerated instances.
        assert factory.calls == 3
        # Deterministic metrics agree with the uninterrupted run.
        assert maxsum_table(resumed) == maxsum_table(reference)

    def test_resume_of_complete_checkpoint_runs_zero_cells(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sweep(CountingFactory(), path)
        before = path.read_bytes()
        factory = CountingFactory()
        run_sweep(factory, path, resume=True)
        assert factory.calls == 0
        assert path.read_bytes() == before

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sweep(CountingFactory(), path)
        text = path.read_text()
        # Crash mid-append: the last line is half-written.
        path.write_text(text[: len(text) - 20])
        factory = CountingFactory()
        resumed = run_sweep(factory, path, resume=True)
        assert factory.calls == 1  # only the torn cell re-ran
        assert maxsum_table(resumed) == maxsum_table(run_sweep(CountingFactory()))
        # The torn fragment was truncated before appending, so the healed
        # file is wholly parseable again (no fragment+cell glued line)
        # and a second resume trusts every line.
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + len(GRID) * REPEATS * len(SOLVERS)
        for line in lines:
            json.loads(line)
        factory = CountingFactory()
        run_sweep(factory, path, resume=True)
        assert factory.calls == 0

    def test_keyboard_interrupt_is_not_swallowed(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        factory = CountingFactory(
            explode_on_call=4, error=KeyboardInterrupt()
        )
        with pytest.raises(KeyboardInterrupt):
            run_sweep(factory, path)
        # Factory call 4 is the fourth (x, seed) group's instance, so the
        # three finished groups (2 cells each) reached disk beforehand...
        assert len(path.read_text().splitlines()) == 1 + 6
        # ...and a resume finishes the job with identical tables.
        resumed = run_sweep(CountingFactory(), path, resume=True)
        assert maxsum_table(resumed) == maxsum_table(run_sweep(CountingFactory()))

    def test_without_resume_existing_checkpoint_is_overwritten(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sweep(CountingFactory(), path)
        factory = CountingFactory()
        run_sweep(factory, path)
        # One instance per (x, seed) group, shared by all its solvers.
        assert factory.calls == len(GRID) * REPEATS


class TestCellIsolation:
    def test_transient_failure_retries_with_fresh_seed(self):
        factory = CountingFactory(explode_on_call=1, error=MemoryError("oom"))
        cell = run_cell(factory, 4, 0, "greedy", memory=False)
        assert cell.ok
        assert cell.attempts == 2
        assert cell.failures[0].error_type == "MemoryError"
        assert cell.failures[0].transient

    def test_deterministic_failure_does_not_retry(self):
        factory = CountingFactory(explode_on_call=1, error=ValueError("bad config"))
        cell = run_cell(factory, 4, 0, "greedy", memory=False, max_attempts=3)
        assert not cell.ok
        assert cell.attempts == 1
        assert not cell.failures[0].transient

    def test_exhausted_retries_record_every_attempt(self):
        class AlwaysOOM:
            def __call__(self, x, seed):
                raise MemoryError("oom forever")

        cell = run_cell(AlwaysOOM(), 4, 0, "greedy", memory=False, max_attempts=3)
        assert not cell.ok
        assert cell.attempts == 3
        assert [f.attempt for f in cell.failures] == [0, 1, 2]

    def test_failed_cells_do_not_poison_the_sweep(self, tmp_path):
        # The (4, seed 1) instance draw fails deterministically -- at the
        # group level *and* at run_cell's own attempt -- so both of its
        # cells fail; the other cells still average.
        class BadDraw(CountingFactory):
            def __call__(self, x, seed):
                if (x, seed) == (4, 1):
                    self.calls += 1
                    raise ValueError("bad draw")
                return super().__call__(x, seed)

        factory = BadDraw()
        sweep = run_sweep(factory, tmp_path / "ckpt.jsonl")
        assert len(sweep.failures) == len(SOLVERS)
        assert all(cell.status == "failed" for cell in sweep.failures)
        ok_records = {(r.x, r.solver) for r in sweep.records}
        assert len(ok_records) == len(GRID) * len(SOLVERS)
        # 4 group draws + one per-cell re-draw for each cell of the
        # poisoned group (non-transient: no retries).
        assert factory.calls == len(GRID) * REPEATS + len(SOLVERS)
        assert "failed cells" in sweep.render()

    def test_transient_group_generation_heals_per_cell(self, tmp_path):
        # The shared (x, seed) group draw OOMs once; each cell falls back
        # to drawing its own instance and the sweep stays clean.
        factory = CountingFactory(explode_on_call=2, error=MemoryError("oom"))
        sweep = run_sweep(factory, tmp_path / "ckpt.jsonl")
        assert not sweep.failures
        assert len(sweep.records) == len(GRID) * len(SOLVERS)
        # 4 group draws (one exploded) + 2 per-cell fallback draws.
        assert factory.calls == len(GRID) * REPEATS + len(SOLVERS)

    def test_budgeted_sweep_tags_timeouts_but_still_averages(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        sweep = sweep_parameter(
            "budgeted", "|V|", (6,), CountingFactory(), solvers=("prune",),
            repeats=1, memory=False, checkpoint_path=path, node_limit=5,
        )
        assert not sweep.failures
        assert len(sweep.records) == 1
        cells = SweepCheckpoint(path, "budgeted").load()
        (cell,) = cells.values()
        assert cell.outcome == "feasible-timeout"
