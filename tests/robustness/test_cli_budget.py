"""CLI surface of the anytime harness: exit codes and the sweep command."""

from __future__ import annotations

from repro.cli import EXIT_TIMEOUT, main


def test_solve_without_budget_exits_zero(capsys):
    code = main(["solve", "--events", "6", "--users", "20",
                 "--algorithms", "greedy"])
    assert code == 0
    assert "outcome" not in capsys.readouterr().out


def test_solve_under_deadline_exits_124(capsys):
    # Fig. 6-scale instance, 50 ms deadline: prune answers with its
    # anytime best-so-far and the process signals the timeout.
    code = main(["solve", "--events", "20", "--users", "150",
                 "--algorithms", "prune", "--timeout", "0.05"])
    assert code == EXIT_TIMEOUT == 124
    out = capsys.readouterr().out
    assert "feasible-timeout" in out
    assert "MaxSum" in out


def test_solve_with_generous_budget_exits_zero(capsys):
    code = main(["solve", "--events", "6", "--users", "20",
                 "--algorithms", "greedy", "--timeout", "60"])
    assert code == 0
    assert "outcome=optimal" in capsys.readouterr().out


def test_solve_node_budget_reports_outcome(capsys):
    code = main(["solve", "--events", "6", "--users", "20",
                 "--algorithms", "greedy", "--node-budget", "3"])
    assert code == EXIT_TIMEOUT
    assert "outcome=feasible-timeout" in capsys.readouterr().out


def test_sweep_command_checkpoints_and_resumes(tmp_path, capsys):
    path = str(tmp_path / "sweep.jsonl")
    args = ["sweep", "fig3-events", "--checkpoint", path,
            "--scale", "smoke", "--solvers", "greedy"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "MaxSum" in first

    assert main(args + ["--resume"]) == 0
    second = capsys.readouterr().out
    # MaxSum series are deterministic, so the resumed (fully cached)
    # sweep renders the same table values.
    assert first.splitlines()[:5] == second.splitlines()[:5]


def test_sweep_command_rejects_uncheckpointable_figure(tmp_path, capsys):
    code = main(["sweep", "fig6-pruning",
                 "--checkpoint", str(tmp_path / "x.jsonl")])
    assert code == 2
    assert "does not support checkpointing" in capsys.readouterr().err
