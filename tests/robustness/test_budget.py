"""Budget mechanics: node limits, monotonic deadlines, exhaustion state."""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetExceededError, NNIndexError
from repro.robustness import Budget


class TestNodeLimit:
    def test_raises_after_limit(self):
        budget = Budget(node_limit=3)
        for _ in range(3):
            budget.checkpoint()
        with pytest.raises(BudgetExceededError, match="node budget"):
            budget.checkpoint()
        assert budget.exhausted
        assert budget.nodes == 4

    def test_keeps_raising_once_exhausted(self):
        budget = Budget(node_limit=0)
        with pytest.raises(BudgetExceededError):
            budget.checkpoint()
        with pytest.raises(BudgetExceededError):
            budget.checkpoint()

    def test_weight_counts_as_many_nodes(self):
        budget = Budget(node_limit=10)
        budget.checkpoint(weight=10)
        with pytest.raises(BudgetExceededError):
            budget.checkpoint()

    def test_remaining_nodes_clamped(self):
        budget = Budget(node_limit=2)
        assert budget.remaining_nodes() == 2
        budget.checkpoint()
        assert budget.remaining_nodes() == 1
        assert budget.remaining_seconds() is None


class TestDeadline:
    def test_zero_deadline_fires_on_first_checkpoint(self):
        budget = Budget(deadline=0.0)
        with pytest.raises(BudgetExceededError, match="deadline"):
            budget.checkpoint()
        assert budget.exhausted
        assert "deadline" in budget.exhausted_reason

    def test_clock_stride_delays_detection_but_not_forever(self):
        budget = Budget(deadline=0.0, clock_stride=4)
        budget.start()
        # Node 1 always consults the clock, so a zero deadline cannot
        # slip through even with a large stride.
        with pytest.raises(BudgetExceededError):
            budget.checkpoint()

    def test_generous_deadline_does_not_fire(self):
        budget = Budget(deadline=60.0)
        for _ in range(100):
            budget.checkpoint()
        assert not budget.exhausted
        assert budget.remaining_seconds() > 0

    def test_start_is_idempotent(self):
        budget = Budget(deadline=60.0).start()
        anchor = budget._started_at
        budget.start()
        assert budget._started_at == anchor


class TestProbesAndMarks:
    def test_expired_probe_does_not_raise(self):
        budget = Budget(node_limit=1)
        assert not budget.expired()
        budget.checkpoint()
        assert budget.expired()
        assert not budget.exhausted  # probe alone never flips the state

    def test_mark_exhausted_records_first_reason(self):
        budget = Budget()
        budget.mark_exhausted("engine timeout")
        budget.mark_exhausted("second reason ignored")
        assert budget.exhausted_reason == "engine timeout"
        with pytest.raises(BudgetExceededError, match="engine timeout"):
            budget.checkpoint()

    def test_unlimited_budget_never_expires(self):
        budget = Budget()
        for _ in range(1000):
            budget.checkpoint()
        assert not budget.expired()
        assert budget.remaining_seconds() is None
        assert budget.remaining_nodes() is None

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline=-1.0)
        with pytest.raises(ValueError):
            Budget(node_limit=-1)
        with pytest.raises(ValueError):
            Budget(clock_stride=0)


def test_nn_index_error_deprecated_alias_removed():
    # PR 2 renamed IndexError_ (shadow-prone) to NNIndexError and kept a
    # one-release compatibility alias; PR 5 removed it. Catching the new
    # name must work, resolving the old one must not.
    import repro.exceptions

    assert issubclass(NNIndexError, repro.exceptions.ReproError)
    assert not hasattr(repro.exceptions, "IndexError_")
