"""Crash-point enumeration: recovery is exact at every injected crash.

The tentpole proof of bounded-time crash recovery. A reference run over
an in-memory :class:`FaultFS` counts every durability-relevant
operation (create/write/flush/fsync/rename/directory-fsync/remove) the
journal + snapshot + compaction paths perform; the sweep then re-runs
the workload crashing *before each one*, materialises both post-crash
worlds -- **durable** (everything un-fsync'd lost: the pessimistic
disk) and **cached** (nothing lost, final write possibly torn) -- and
requires recovery to reconstruct a digest-exact prefix of acknowledged
history that includes every acknowledged command. Writes additionally
get a torn variant (a strict prefix of the crashing write applied).

The workload compacts three times with ``retain=2`` so the sweep's
crash windows cover snapshot writes, the journal tail rewrite, *and*
snapshot pruning (the third compaction removes the oldest snapshot).
"""

from pathlib import Path

import pytest

from repro.robustness.faultfs import FaultFS, SimulatedCrash
from repro.service.journal import Journal
from repro.service.snapshot import compact, list_snapshots, snapshot_path
from repro.service.store import ArrangementStore, StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)

#: The virtual root every FaultFS run mounts; nothing real lives here.
ROOT = Path("/faultfs-virtual")

COMMANDS = [
    ("post_event", {"capacity": 2, "attributes": [1.0, 1.0], "conflicts": []}),
    ("register_user", {"capacity": 1, "attributes": [2.0, 2.0]}),
    ("post_event", {"capacity": 1, "attributes": [5.0, 5.0], "conflicts": [0]}),
    ("register_user", {"capacity": 2, "attributes": [6.0, 4.0]}),
    ("request_assignment", {"user": 0}),
    ("commit_batch", {"assign": [[0, 0]], "unassign": [], "users": [0]}),
    ("freeze_event", {"event": 0}),
    ("register_user", {"capacity": 1, "attributes": [3.0, 7.0]}),
]

#: Compact after these command indices: snapshots at seqs 2, 4 and 6,
#: so the third compaction (retain=2) prunes the seq-2 snapshot and the
#: sweep covers the remove path too.
COMPACT_AFTER = {1, 3, 5}


def reference_digests() -> dict[int, str]:
    """Digest of the state after each acknowledged prefix, keyed by seq."""
    store = ArrangementStore(CONFIG)
    digests = {0: store.digest()}
    for seq, (cmd, args) in enumerate(COMMANDS, start=1):
        store.apply({"seq": seq, "cmd": cmd, **args})
        digests[seq] = store.digest()
    return digests


def drive(fs: FaultFS, acked: list[int]) -> None:
    """The workload: append + apply each command, compacting on schedule.

    ``acked`` collects each record's seq as soon as ``append`` returns
    (the fsync'd acknowledgement point) so a crash mid-run leaves
    exactly the acknowledged prefix behind for the caller to check.
    """
    journal = Journal.create(ROOT / "journal.jsonl", CONFIG, fs=fs)
    store = ArrangementStore(CONFIG)
    for index, (cmd, args) in enumerate(COMMANDS):
        record = journal.append(cmd, args)
        acked.append(record["seq"])
        store.apply(record)
        if index in COMPACT_AFTER:
            compact(journal, store, ROOT / "snapshots", retain=2, fs=fs)


def recover_world(fs: FaultFS, target: Path, world: str) -> ArrangementStore:
    """Materialise one post-crash world and recover from the real files."""
    fs.materialise(target, world)
    journal, store = Journal.recover(
        target / "journal.jsonl",
        snapshot_dir=target / "snapshots",
        config=CONFIG,
    )
    journal.close()
    return store


def test_reference_run_covers_every_operation_kind() -> None:
    fs = FaultFS(ROOT)
    drive(fs, [])
    kinds = set(fs.ops)
    # The sweep is only a proof if the workload actually exercises the
    # journal append path, the atomic snapshot write, the tail rewrite
    # AND the retention prune.
    assert {"create", "write", "flush", "fsync", "replace",
            "fsync_dir", "remove"} <= kinds, kinds


def test_crash_sweep_recovers_exact_acknowledged_prefix(tmp_path: Path) -> None:
    digests = reference_digests()
    reference = FaultFS(ROOT)
    drive(reference, [])
    assert reference.op_count > 0

    checked = 0
    for crash_at in range(1, reference.op_count + 1):
        variants = [False]
        if reference.ops[crash_at - 1] == "write":
            variants.append(True)  # the torn-write case
        for torn in variants:
            fs = FaultFS(ROOT, crash_at=crash_at, torn=torn)
            acked: list[int] = []
            with pytest.raises(SimulatedCrash):
                drive(fs, acked)
            durable_floor = max(acked, default=0)
            for world in ("durable", "cached"):
                label = f"k{crash_at}-{'torn' if torn else 'clean'}-{world}"
                store = recover_world(fs, tmp_path / label, world)
                # Nothing acknowledged may be lost...
                assert store.seq >= durable_floor, (
                    f"{label}: recovered seq {store.seq} lost acknowledged "
                    f"records (floor {durable_floor}; ops {fs.ops})"
                )
                # ...and the state must be byte-exact for some prefix of
                # history (never an invented or reordered record).
                assert store.digest() == digests[store.seq], label
                store.check_invariants()
                checked += 1
    # The sweep really enumerated every operation (plus torn variants).
    assert checked >= 2 * reference.op_count


def test_bit_flip_in_newest_snapshot_falls_one_rung(tmp_path: Path) -> None:
    digests = reference_digests()
    fs = FaultFS(ROOT)
    drive(fs, [])
    fs.materialise(tmp_path, "cached")
    snaps = tmp_path / "snapshots"
    newest_seq, newest = list_snapshots(snaps)[0]
    blob = bytearray(newest.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    newest.write_bytes(bytes(blob))
    journal, store = Journal.recover(
        tmp_path / "journal.jsonl", snapshot_dir=snaps, config=CONFIG
    )
    journal.close()
    assert store.seq == len(COMMANDS)
    assert store.digest() == digests[store.seq]
    assert journal.last_recovery is not None
    assert journal.last_recovery.rung == "snapshot+tail"
    assert journal.last_recovery.snapshot_seq < newest_seq
    assert len(journal.last_recovery.snapshots_rejected) == 1


# ----------------------------------------------------------------------
# FaultFS model unit tests
# ----------------------------------------------------------------------


def test_write_is_cached_until_fsync(tmp_path: Path) -> None:
    fs = FaultFS(ROOT)
    handle = fs.open(ROOT / "f", "wb")
    handle.write(b"hello")
    fs.fsync_dir(ROOT)  # the *name* is durable...
    fs.materialise(tmp_path / "before", "durable")
    assert (tmp_path / "before" / "f").read_bytes() == b""  # ...content is not
    fs.fsync(handle)
    fs.materialise(tmp_path / "after", "durable")
    assert (tmp_path / "after" / "f").read_bytes() == b"hello"


def test_create_needs_fsync_dir_to_be_durably_findable(tmp_path: Path) -> None:
    fs = FaultFS(ROOT)
    handle = fs.open(ROOT / "f", "wb")
    handle.write(b"data")
    fs.fsync(handle)
    fs.materialise(tmp_path / "no-dirsync", "durable")
    assert not (tmp_path / "no-dirsync" / "f").exists()
    fs.fsync_dir(ROOT)
    fs.materialise(tmp_path / "dirsync", "durable")
    assert (tmp_path / "dirsync" / "f").read_bytes() == b"data"


def test_replace_is_invisible_in_durable_world_until_fsync_dir(
    tmp_path: Path,
) -> None:
    fs = FaultFS(ROOT)
    old = fs.open(ROOT / "f", "wb")
    old.write(b"old")
    fs.fsync(old)
    fs.fsync_dir(ROOT)
    new = fs.open(ROOT / "f.tmp", "wb")
    new.write(b"new")
    fs.fsync(new)
    fs.replace(ROOT / "f.tmp", ROOT / "f")
    fs.materialise(tmp_path / "before", "durable")
    assert (tmp_path / "before" / "f").read_bytes() == b"old"
    fs.fsync_dir(ROOT)
    fs.materialise(tmp_path / "after", "durable")
    assert (tmp_path / "after" / "f").read_bytes() == b"new"
    assert not (tmp_path / "after" / "f.tmp").exists()


def test_torn_crash_applies_a_strict_prefix(tmp_path: Path) -> None:
    fs = FaultFS(ROOT, crash_at=2, torn=True)  # op1=create, op2=write
    handle = fs.open(ROOT / "f", "wb")
    with pytest.raises(SimulatedCrash):
        handle.write(b"0123456789")
    fs.materialise(tmp_path, "cached")
    assert (tmp_path / "f").read_bytes() == b"01234"


def test_crashed_filesystem_refuses_further_operations() -> None:
    fs = FaultFS(ROOT, crash_at=1)
    with pytest.raises(SimulatedCrash):
        fs.open(ROOT / "f", "wb")
    with pytest.raises(SimulatedCrash, match="already crashed"):
        fs.open(ROOT / "g", "wb")


def test_paths_outside_the_root_are_rejected() -> None:
    fs = FaultFS(ROOT)
    with pytest.raises(ValueError):
        fs.mkdir(Path("/elsewhere"))
    with pytest.raises(ValueError):
        fs.open(Path("/elsewhere/f"), "wb")


def test_exists_listdir_read_bytes() -> None:
    fs = FaultFS(ROOT)
    fs.mkdir(ROOT / "d")
    handle = fs.open(ROOT / "d" / "f", "wb")
    handle.write(b"x")
    assert fs.exists(ROOT / "d")
    assert fs.exists(ROOT / "d" / "f")
    assert not fs.exists(ROOT / "d" / "g")
    assert fs.listdir(ROOT / "d") == ["f"]
    assert fs.read_bytes(ROOT / "d" / "f") == b"x"
    assert dict(fs.iter_files("cached"))[str(ROOT / "d" / "f")] == b"x"
