"""Fault-injection helpers: budgets and solvers that misbehave on cue.

None of these are registered in the solver registry -- they are passed
as instances so the global registry (and every other test) stays clean.
"""

from __future__ import annotations

import time

from repro.core.algorithms.base import Solver, get_solver
from repro.core.model import Arrangement, Instance
from repro.robustness.budget import Budget


class ChaosBudget(Budget):
    """A Budget that injects a fault at the Nth checkpoint.

    Args:
        fail_at: 1-based checkpoint call at which ``error`` is raised
            (before normal accounting). None = never.
        error: The exception instance to raise at ``fail_at``.
        stall_at: 1-based checkpoint call at which to sleep
            ``stall_seconds`` (simulates a solver stalling mid-loop so a
            deadline passes while no checkpoint runs).
    """

    def __init__(
        self,
        deadline: float | None = None,
        node_limit: int | None = None,
        clock_stride: int = 1,
        *,
        fail_at: int | None = None,
        error: BaseException | None = None,
        stall_at: int | None = None,
        stall_seconds: float = 0.0,
    ) -> None:
        super().__init__(
            deadline=deadline, node_limit=node_limit, clock_stride=clock_stride
        )
        self.calls = 0
        self.fail_at = fail_at
        self.error = error
        self.stall_at = stall_at
        self.stall_seconds = stall_seconds

    def checkpoint(self, weight: int = 1) -> None:
        self.calls += 1
        if self.stall_at is not None and self.calls == self.stall_at:
            time.sleep(self.stall_seconds)
        if self.fail_at is not None and self.calls == self.fail_at:
            raise self.error if self.error is not None else RuntimeError("chaos")
        super().checkpoint(weight)


class ExplodingSolver(Solver):
    """A solver that raises ``error`` the moment it is asked to solve."""

    def __init__(self, error: BaseException | None = None) -> None:
        self._error = error if error is not None else RuntimeError("injected crash")

    def solve(self, instance: Instance, budget: Budget | None = None) -> Arrangement:
        raise self._error


class ChaosSolver(Solver):
    """Delegate to a real solver through a fault-injecting budget.

    The inner solver sees a :class:`ChaosBudget` that raises/stalls at
    the Nth of *its* checkpoints while still honouring the outer
    budget's deadline and node limit (counters are forwarded).
    """

    def __init__(
        self,
        base: str = "greedy",
        *,
        fail_at: int | None = None,
        error: BaseException | None = None,
        stall_at: int | None = None,
        stall_seconds: float = 0.0,
    ) -> None:
        self._base = get_solver(base) if isinstance(base, str) else base
        self._fail_at = fail_at
        self._error = error
        self._stall_at = stall_at
        self._stall_seconds = stall_seconds

    def solve(self, instance: Instance, budget: Budget | None = None) -> Arrangement:
        inner = ChaosBudget(
            deadline=budget.deadline if budget is not None else None,
            node_limit=budget.node_limit if budget is not None else None,
            fail_at=self._fail_at,
            error=self._error,
            stall_at=self._stall_at,
            stall_seconds=self._stall_seconds,
        )
        if budget is not None and budget.started:
            inner.start()
        try:
            return self._base.solve(instance, budget=inner)
        finally:
            if budget is not None:
                budget.nodes += inner.nodes
                if inner.exhausted:
                    budget.mark_exhausted(inner.exhausted_reason)
