"""Anytime semantics: budget-limited solves stay feasible, never raise.

The harness validates every arrangement it reports (``validate=True``),
so ``result.ok`` already certifies feasibility; the assertions below
therefore focus on the outcome taxonomy and the degradation floors.
"""

from __future__ import annotations

import pytest

from repro.core.algorithms import GreedyGEACC
from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.robustness import Budget, Outcome, run_with_budget

from tests.robustness.chaos import ChaosSolver

#: Every registered solver the anytime contract covers.
ALL_SOLVERS = (
    "greedy",
    "prune",
    "exhaustive",
    "mincostflow",
    "local-search",
    "fair-greedy",
    "online-greedy",
    "random-v",
    "random-u",
    "ilp",
)


@pytest.fixture(scope="module")
def fig6_scale_instance():
    """A Fig. 6-scale instance Prune-GEACC cannot finish in 50 ms."""
    config = SyntheticConfig(
        n_events=20, n_users=150, cv_high=10, cu_high=4, conflict_ratio=0.25
    )
    return generate_instance(config, seed=3)


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_tiny_node_budget_still_returns_feasible(small_instance, solver):
    result = run_with_budget(solver, small_instance, node_limit=3)
    assert result.ok, result
    assert result.outcome in (Outcome.OPTIMAL, Outcome.FEASIBLE_TIMEOUT)
    assert result.arrangement is not None


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_unbudgeted_run_reports_optimal_outcome(toy, solver):
    # The toy (Table I) instance: small enough that even the exact
    # enumerators complete instantly without a budget.
    result = run_with_budget(solver, toy)
    assert result.ok
    assert result.outcome is Outcome.OPTIMAL


def test_prune_under_50ms_deadline_matches_greedy_floor(fig6_scale_instance):
    # The acceptance criterion of the anytime harness: an exact solver
    # cut off after 50 ms must answer with at least its warm-start seed.
    seed_max_sum = GreedyGEACC().solve(fig6_scale_instance).max_sum()
    result = run_with_budget("prune", fig6_scale_instance, timeout=0.05)
    assert result.outcome is Outcome.FEASIBLE_TIMEOUT
    assert result.ok
    assert result.max_sum() >= seed_max_sum - 1e-9
    assert result.seconds < 5.0  # the deadline actually preempted the search


def test_prune_node_limit_matches_greedy_floor(small_instance):
    seed_max_sum = GreedyGEACC().solve(small_instance).max_sum()
    result = run_with_budget("prune", small_instance, node_limit=10)
    assert result.ok
    assert result.max_sum() >= seed_max_sum - 1e-9


def test_stalling_solver_is_preempted_at_next_checkpoint(small_instance):
    # A mid-loop stall burns the whole deadline while no checkpoint can
    # run; the next checkpoint must preempt and the partial arrangement
    # must validate.
    chaos = ChaosSolver("greedy", stall_at=3, stall_seconds=0.05)
    result = run_with_budget(chaos, small_instance, timeout=0.02)
    assert result.ok, result
    assert result.outcome is Outcome.FEASIBLE_TIMEOUT


def test_solver_raising_midway_reports_failure(small_instance):
    chaos = ChaosSolver("greedy", fail_at=3, error=RuntimeError("cosmic ray"))
    result = run_with_budget(chaos, small_instance, timeout=10.0)
    assert not result.ok
    assert result.outcome is Outcome.FAILED
    assert result.arrangement is None
    assert result.failures[0].error_type == "RuntimeError"
    assert result.failures[0].transient


def test_shared_budget_is_single_use_across_calls(small_instance):
    budget = Budget(node_limit=5)
    first = run_with_budget("greedy", small_instance, budget=budget)
    assert first.outcome is Outcome.FEASIBLE_TIMEOUT
    # The same budget stays exhausted: a second solver only gets the
    # empty-arrangement floor, it cannot reset the meter.
    second = run_with_budget("greedy", small_instance, budget=budget)
    assert second.ok
    assert second.outcome is Outcome.FEASIBLE_TIMEOUT
    assert len(second.arrangement) == 0


def test_unknown_solver_name_fails_structurally(small_instance):
    result = run_with_budget("no-such-solver", small_instance)
    assert result.outcome is Outcome.FAILED
    assert result.failures
    assert not result.failures[0].transient
