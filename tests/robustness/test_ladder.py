"""Degradation ladder: fall-through on failure, shared global budget."""

from __future__ import annotations

import pytest

from repro.exceptions import SolverFailedError
from repro.robustness import (
    DEFAULT_LADDER,
    Outcome,
    raise_on_failure,
    solve_with_ladder,
)

from tests.robustness.chaos import ChaosSolver, ExplodingSolver


def test_default_ladder_answers_on_a_healthy_instance(small_instance):
    # A short deadline: Prune-GEACC answers with its anytime best (at
    # least the Greedy seed) and no rung ever fails.
    result = solve_with_ladder(small_instance, timeout=0.2)
    assert result.ok
    assert result.solver == "prune"
    assert result.failures == ()


def test_first_rung_crash_falls_through_to_second(small_instance):
    ladder = (ExplodingSolver(RuntimeError("rung 1 died")), "greedy")
    result = solve_with_ladder(small_instance, ladder, timeout=30.0)
    assert result.ok
    assert result.solver == "greedy"
    assert len(result.failures) == 1
    assert result.failures[0].error_type == "RuntimeError"
    assert result.failures[0].transient


def test_mid_solve_crash_falls_through(small_instance):
    ladder = (ChaosSolver("greedy", fail_at=5, error=OSError("disk gone")), "random-u")
    result = solve_with_ladder(small_instance, ladder, timeout=30.0)
    assert result.ok
    assert result.solver == "random-u"
    assert result.failures[0].error_type == "OSError"


def test_every_rung_failing_yields_structured_failure(small_instance):
    ladder = (
        ExplodingSolver(RuntimeError("one")),
        ExplodingSolver(ValueError("two")),
    )
    result = solve_with_ladder(small_instance, ladder, timeout=30.0)
    assert not result.ok
    assert result.outcome is Outcome.FAILED
    assert result.arrangement is None
    assert [f.message for f in result.failures] == ["one", "two"]

    with pytest.raises(SolverFailedError) as excinfo:
        raise_on_failure(result)
    assert excinfo.value.failures == result.failures


def test_exhausted_shared_budget_still_yields_feasible_answer(small_instance):
    # timeout=0: the deadline is gone before the first rung starts. The
    # ladder's contract is "always an answer": Prune's floor is its
    # (unbudgeted) Greedy warm-start seed, reported as feasible-timeout.
    result = solve_with_ladder(small_instance, DEFAULT_LADDER, timeout=0.0)
    assert result.ok
    assert result.outcome is Outcome.FEASIBLE_TIMEOUT
    assert result.solver == "prune"


def test_raise_on_failure_passes_successes_through(small_instance):
    result = solve_with_ladder(small_instance, ("greedy",), timeout=30.0)
    assert raise_on_failure(result) is result


def test_empty_ladder_rejected(small_instance):
    with pytest.raises(ValueError, match="ladder"):
        solve_with_ladder(small_instance, ())
