"""The geacc-lint console entry point and the `geacc lint` subcommand."""

from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as geacc_main
from tests.analysis.conftest import FIXTURES


def test_exit_zero_on_clean_tree(capsys: pytest.CaptureFixture) -> None:
    code = lint_main([str(FIXTURES / "determinism_good.py")])
    assert code == 0
    assert capsys.readouterr().out == ""


def test_exit_one_with_diagnostics_on_findings(capsys: pytest.CaptureFixture) -> None:
    code = lint_main([str(FIXTURES / "determinism_bad.py"), "--select", "R1"])
    assert code == 1
    out = capsys.readouterr().out
    assert "determinism_bad.py:14:" in out
    assert "R1" in out


def test_statistics_footer(capsys: pytest.CaptureFixture) -> None:
    code = lint_main(
        [str(FIXTURES / "hygiene_bad.py"), "--select", "R5", "--statistics"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "4 finding(s)" in out
    assert "R5: 4" in out


def test_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R1", "R2", "R3", "R4", "R5"):
        assert rule_id in out


def test_unknown_rule_id_is_a_usage_error(capsys: pytest.CaptureFixture) -> None:
    code = lint_main([str(FIXTURES / "determinism_good.py"), "--select", "R9"])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_empty_select_is_a_usage_error(capsys: pytest.CaptureFixture) -> None:
    # --select "" would otherwise run zero rules and report any tree clean.
    code = lint_main([str(FIXTURES / "determinism_bad.py"), "--select", ""])
    assert code == 2
    assert "names no rules" in capsys.readouterr().err


def test_ignore_flag(capsys: pytest.CaptureFixture) -> None:
    code = lint_main(
        [str(FIXTURES / "determinism_bad.py"), "--ignore", "R1,R5"]
    )
    assert code == 0


def test_geacc_lint_subcommand(capsys: pytest.CaptureFixture) -> None:
    bad = geacc_main(["lint", str(FIXTURES / "hygiene_bad.py"), "--select", "R5"])
    assert bad == 1
    good = geacc_main(["lint", str(FIXTURES / "hygiene_good.py")])
    assert good == 0


def test_geacc_lint_subcommand_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert geacc_main(["lint", "--list-rules"]) == 0
    assert "R3" in capsys.readouterr().out
