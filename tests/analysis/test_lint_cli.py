"""The geacc-lint console entry point and the `geacc lint` subcommand."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as geacc_main
from tests.analysis.conftest import FIXTURES


def test_exit_zero_on_clean_tree(capsys: pytest.CaptureFixture) -> None:
    code = lint_main([str(FIXTURES / "determinism_good.py")])
    assert code == 0
    assert capsys.readouterr().out == ""


def test_exit_one_with_diagnostics_on_findings(capsys: pytest.CaptureFixture) -> None:
    code = lint_main([str(FIXTURES / "determinism_bad.py"), "--select", "R1"])
    assert code == 1
    out = capsys.readouterr().out
    assert "determinism_bad.py:14:" in out
    assert "R1" in out


def test_statistics_footer(capsys: pytest.CaptureFixture) -> None:
    code = lint_main(
        [str(FIXTURES / "hygiene_bad.py"), "--select", "R5", "--statistics"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "4 finding(s)" in out
    assert "R5: 4" in out


def test_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for number in range(1, 14):
        assert f"R{number} " in out


def test_select_runs_the_typestate_rules(capsys: pytest.CaptureFixture) -> None:
    code = lint_main(
        [str(FIXTURES / "typestate_bad"), "--select", "R9,R10,R11,R12"]
    )
    assert code == 1
    out = capsys.readouterr().out
    for rule_id in ("R9", "R10", "R11", "R12"):
        assert rule_id in out


def test_unknown_rule_id_is_a_usage_error(capsys: pytest.CaptureFixture) -> None:
    code = lint_main([str(FIXTURES / "determinism_good.py"), "--select", "R99"])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_empty_select_is_a_usage_error(capsys: pytest.CaptureFixture) -> None:
    # --select "" would otherwise run zero rules and report any tree clean.
    code = lint_main([str(FIXTURES / "determinism_bad.py"), "--select", ""])
    assert code == 2
    assert "names no rules" in capsys.readouterr().err


def test_ignore_flag(capsys: pytest.CaptureFixture) -> None:
    code = lint_main(
        [str(FIXTURES / "determinism_bad.py"), "--ignore", "R1,R5"]
    )
    assert code == 0


def test_geacc_lint_subcommand(capsys: pytest.CaptureFixture) -> None:
    bad = geacc_main(["lint", str(FIXTURES / "hygiene_bad.py"), "--select", "R5"])
    assert bad == 1
    good = geacc_main(["lint", str(FIXTURES / "hygiene_good.py")])
    assert good == 0


def test_geacc_lint_subcommand_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert geacc_main(["lint", "--list-rules"]) == 0
    assert "R3" in capsys.readouterr().out


def test_syntax_error_exits_one(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n    pass\n")
    assert lint_main([str(target)]) == 1
    out = capsys.readouterr().out
    assert "E0" in out and "syntax error" in out


def test_json_format_emits_one_object_per_line(
    capsys: pytest.CaptureFixture,
) -> None:
    code = lint_main(
        [str(FIXTURES / "determinism_bad.py"), "--select", "R1", "--format", "json"]
    )
    assert code == 1
    lines = capsys.readouterr().out.splitlines()
    assert lines
    for line in lines:
        record = json.loads(line)
        assert set(record) == {"rule", "path", "line", "col", "message", "suppressed"}
        assert record["rule"] == "R1"
        assert record["suppressed"] is False
        assert record["path"].endswith("determinism_bad.py")
        assert isinstance(record["line"], int) and isinstance(record["col"], int)


def test_json_format_includes_suppressed_findings_without_failing(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # geacc-lint: disable=R1 reason=demo\n"
    )
    code = lint_main([str(target), "--select", "R1", "--format", "json"])
    assert code == 0  # suppressed findings never fail the run
    [line] = capsys.readouterr().out.splitlines()
    record = json.loads(line)
    assert record["rule"] == "R1"
    assert record["suppressed"] is True
    # Text mode hides the same finding entirely.
    assert lint_main([str(target), "--select", "R1"]) == 0
    assert capsys.readouterr().out == ""


def test_jobs_output_is_identical_to_serial(capsys: pytest.CaptureFixture) -> None:
    args = [str(FIXTURES / "typestate_bad"), "--select", "R9,R10,R11,R12"]
    serial_code = lint_main(args)
    serial_out = capsys.readouterr().out
    parallel_code = lint_main([*args, "--jobs", "2"])
    parallel_out = capsys.readouterr().out
    assert serial_code == parallel_code == 1
    assert serial_out == parallel_out


def test_negative_jobs_is_a_usage_error(capsys: pytest.CaptureFixture) -> None:
    code = lint_main([str(FIXTURES / "determinism_good.py"), "--jobs", "-2"])
    assert code == 2
    assert "jobs" in capsys.readouterr().err


def test_exclude_skips_matching_subtrees(capsys: pytest.CaptureFixture) -> None:
    bad = lint_main([str(FIXTURES / "typestate_bad"), "--select", "R9"])
    assert bad == 1
    capsys.readouterr()
    code = lint_main(
        [str(FIXTURES / "typestate_bad"), "--select", "R9", "--exclude", "service"]
    )
    assert code == 0
    assert capsys.readouterr().out == ""


def test_exclude_matches_single_files(capsys: pytest.CaptureFixture) -> None:
    code = lint_main(
        [
            str(FIXTURES / "typestate_bad"),
            "--select", "R9,R12",
            "--exclude", "service/journal_bad.py",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "journal_bad.py" not in out
    assert "fsync_bad.py" in out


def test_geacc_lint_subcommand_forwards_new_flags(
    capsys: pytest.CaptureFixture,
) -> None:
    code = geacc_main(
        [
            "lint", str(FIXTURES / "typestate_bad"),
            "--select", "R11",
            "--format", "json",
            "--jobs", "2",
            "--exclude", "service",
        ]
    )
    assert code == 1
    lines = capsys.readouterr().out.splitlines()
    assert lines and all(json.loads(line)["rule"] == "R11" for line in lines)
