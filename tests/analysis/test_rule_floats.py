"""R2: exact float equality in core//flow/ is flagged; tolerance helpers pass."""

from tests.analysis.conftest import FIXTURES, hits, lint
from repro.core.numeric import close, strictly_greater, strictly_less


def test_bad_fixture_fires_on_each_float_comparison() -> None:
    findings = lint(FIXTURES / "scoped_bad", select=["R2"])
    assert hits(findings) == [("R2", 5), ("R2", 9), ("R2", 10)]
    assert all(d.path.endswith("core/floats_bad.py") for d in findings)


def test_rule_is_scoped_to_core_and_flow() -> None:
    # The same comparisons outside core// flow/ are not this rule's business.
    findings = lint(FIXTURES / "scoped_bad" / "core" / "floats_bad.py", select=["R2"])
    assert findings == []  # linted as a bare file, the core/ scope is gone


def test_good_fixture_is_silent_under_all_rules() -> None:
    assert lint(FIXTURES / "scoped_good") == []


def test_numeric_helpers_behave() -> None:
    assert close(0.1 + 0.2, 0.3)
    assert not close(0.3, 0.30001)
    assert strictly_less(1.0, 1.1)
    assert not strictly_less(1.0, 1.0 + 1e-15)
    assert strictly_greater(2.0, 1.0)
