"""Suppression binding, reason= hygiene (R13), and directive parsing."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.suppress import parse_suppressions
from tests.analysis.conftest import hits

BAD_RNG = "import numpy as np\nrng = np.random.default_rng()\n"


# ----------------------------------------------------------------------
# Directive parsing: reason clauses
# ----------------------------------------------------------------------


def test_reason_free_text_is_captured() -> None:
    index = parse_suppressions(
        ["x = 1  # geacc-lint: disable=R1 reason=replay of durable records"]
    )
    [directive] = index.directives
    assert directive.rules == frozenset({"R1"})
    assert directive.reason == "replay of durable records"


def test_bare_directive_has_no_reason_but_still_suppresses() -> None:
    index = parse_suppressions(["x = 1  # geacc-lint: disable=R1"])
    [directive] = index.directives
    assert directive.reason is None
    assert index.is_suppressed(1, "R1")


def test_reason_on_bare_disable() -> None:
    index = parse_suppressions(["x = 1  # geacc-lint: disable reason=test"])
    [directive] = index.directives
    assert directive.rules == frozenset({"*"})
    assert directive.reason == "test"


def test_directive_mention_in_a_docstring_is_not_a_directive() -> None:
    source = [
        '"""Docs quoting `# geacc-lint: disable=R1` are not directives."""',
        "x = 1",
    ]
    index = parse_suppressions(source)
    assert index.directives == []
    assert not index.is_suppressed(1, "R1")


# ----------------------------------------------------------------------
# Statement binding
# ----------------------------------------------------------------------


def test_directive_on_last_line_of_multiline_statement_binds(
    tmp_path: Path,
) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng(\n"
        ")  # geacc-lint: disable=R1 reason=test\n"
    )
    assert run_lint([target]) == []


def test_directive_on_decorator_line_covers_the_def(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import functools\n"
        "\n"
        "\n"
        "@functools.lru_cache  # geacc-lint: disable=R5 reason=test\n"
        "def helper(x):\n"
        "    return x\n"
    )
    assert run_lint([target], select=["R5"]) == []


def test_directive_on_def_line_covers_its_decorators(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import functools\n"
        "\n"
        "\n"
        "@functools.lru_cache\n"
        "def helper(x):  # geacc-lint: disable=R5 reason=test\n"
        "    return x\n"
    )
    assert run_lint([target], select=["R5"]) == []


def test_def_line_directive_does_not_cover_the_body(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "\n"
        "\n"
        "def helper():  # geacc-lint: disable reason=test\n"
        "    return np.random.default_rng()\n"
    )
    assert hits(run_lint([target], select=["R1"])) == [("R1", 5)]


def test_binding_without_a_tree_is_line_local() -> None:
    # A directive inside a file the parser rejects binds to its own line.
    source = ["x = (  # geacc-lint: disable=R1 reason=test", "1)"]
    index = parse_suppressions(source, tree=None)
    assert index.is_suppressed(1, "R1")
    assert not index.is_suppressed(2, "R1")


def test_binding_with_a_tree_expands_over_the_span() -> None:
    source = ["x = (  # geacc-lint: disable=R1 reason=test", "1)"]
    tree = ast.parse("\n".join(source))
    index = parse_suppressions(source, tree=tree)
    assert index.is_suppressed(1, "R1")
    assert index.is_suppressed(2, "R1")


# ----------------------------------------------------------------------
# R13 hygiene and unsuppressibility
# ----------------------------------------------------------------------


def test_bare_directive_becomes_an_r13_finding(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # geacc-lint: disable=R1\n"
    )
    findings = run_lint([target])
    assert hits(findings) == [("R13", 2)]  # R1 silenced, hygiene flagged
    assert "reason=" in findings[0].message


def test_reasoned_directive_satisfies_r13(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # geacc-lint: disable=R1 reason=demo\n"
    )
    assert run_lint([target]) == []


def test_r13_cannot_be_suppressed(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "# geacc-lint: disable-file=R13 reason=trying to silence the auditor\n"
        "import numpy as np\n"
        "rng = np.random.default_rng()  # geacc-lint: disable\n"
    )
    findings = run_lint([target])
    assert hits(findings) == [("R13", 3)]


def test_bare_file_level_directive_is_flagged_once(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text("# geacc-lint: disable-file=R1\n" + BAD_RNG)
    assert hits(run_lint([target])) == [("R13", 1)]
