"""R9-R12: the CFG/typestate rules over their fixture packs.

The packs mirror the rules' directory scoping: R9/R12 fixtures live
under ``service/``, R10 under ``parallel/``, R11 under ``algorithms/``
-- linted as trees so the scope check is part of what is tested.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_lint
from tests.analysis.conftest import FIXTURES, REPO_ROOT, hits, lint

BAD = FIXTURES / "typestate_bad"
GOOD = FIXTURES / "typestate_good"


def test_r9_flags_every_unjournaled_mutation() -> None:
    findings = lint(BAD, select=["R9"])
    assert hits(findings) == [
        ("R9", 6),   # no append anywhere
        ("R9", 11),  # append on one branch only
        ("R9", 16),  # one append consumed by the first of two applies
        ("R9", 21),  # zero-iteration loop path never appends
        ("R9", 24),  # append after the mutation
    ]
    assert all(d.path.endswith("service/journal_bad.py") for d in findings)


def test_r10_flags_every_leakable_acquisition() -> None:
    findings = lint(BAD, select=["R10"])
    assert hits(findings) == [
        ("R10", 7),   # never released
        ("R10", 12),  # leaks when the call between acquire/close raises
        ("R10", 19),  # rebind drops the only alias
        ("R10", 28),  # released on one branch only
    ]
    assert all(d.path.endswith("parallel/leases_bad.py") for d in findings)


def test_r11_flags_uncheckpointed_budget_loops() -> None:
    findings = lint(BAD, select=["R11"])
    assert hits(findings) == [
        ("R11", 6),   # budget parameter, no checkpoint in the loop
        ("R11", 14),  # self._budget user, no checkpoint in the loop
    ]
    assert all(d.path.endswith("algorithms/checkpoint_bad.py") for d in findings)


def test_r12_flags_acks_and_returns_with_unflushed_writes() -> None:
    findings = lint(BAD, select=["R12"])
    assert hits(findings) == [
        ("R12", 10),  # send_response after flush (not fsync)
        ("R12", 14),  # plain return with the write unflushed
        ("R12", 20),  # fsync on one branch only
    ]
    by_line = {d.line: d.message for d in findings}
    assert "can return" in by_line[14]
    assert "success response" in by_line[10]
    assert "success response" in by_line[20]


def test_typestate_good_pack_is_clean_under_all_rules() -> None:
    assert lint(GOOD) == []


def test_rules_are_scoped_to_their_directories() -> None:
    # Linted as bare files, the service//parallel//algorithms/ scope is
    # gone and the typestate rules stay silent.
    assert lint(BAD / "service" / "journal_bad.py", select=["R9"]) == []
    assert lint(BAD / "service" / "fsync_bad.py", select=["R12"]) == []
    assert lint(BAD / "parallel" / "leases_bad.py", select=["R10"]) == []
    assert lint(BAD / "algorithms" / "checkpoint_bad.py", select=["R11"]) == []


def test_seeded_violation_in_a_frontend_copy_is_caught(tmp_path: Path) -> None:
    """Flip the live write-ahead spine in a scratch copy; R9 must bite.

    This pins the rule to the real service code, not just to synthetic
    fixtures -- without ever touching the live tree.
    """
    source = (REPO_ROOT / "src" / "repro" / "service" / "frontend.py").read_text(
        encoding="utf-8"
    )
    spine = (
        "            record = self.journal.append(cmd, args)\n"
        "            self.store.apply(record)\n"
    )
    assert spine in source, "frontend.py write-ahead spine moved; update the test"
    flipped = source.replace(
        spine,
        "            self.store.apply(args)\n"
        "            record = self.journal.append(cmd, args)\n",
    )
    scratch = tmp_path / "service"
    scratch.mkdir()
    (scratch / "frontend.py").write_text(flipped, encoding="utf-8")

    findings = run_lint([tmp_path], select=["R9"])
    assert findings, "seeded journal-order violation was not detected"
    assert all(d.rule_id == "R9" for d in findings)
    assert any("store.apply" in d.message for d in findings)
    # The untouched copy stays clean, so the finding is the seed itself.
    clean = tmp_path / "clean" / "service"
    clean.mkdir(parents=True)
    (clean / "frontend.py").write_text(source, encoding="utf-8")
    assert run_lint([tmp_path / "clean"], select=["R9"]) == []


def test_live_service_and_parallel_trees_are_typestate_clean() -> None:
    src = REPO_ROOT / "src" / "repro"
    assert run_lint([src], select=["R9", "R10", "R11", "R12"]) == []
