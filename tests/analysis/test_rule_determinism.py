"""R1: unseeded / global-state randomness is flagged; seeded Generators pass."""

from tests.analysis.conftest import FIXTURES, hits, lint


def test_bad_fixture_fires_on_every_global_rng_use() -> None:
    findings = lint(FIXTURES / "determinism_bad.py", select=["R1"])
    assert hits(findings) == [
        ("R1", 6),   # from random import shuffle
        ("R1", 7),   # from numpy.random import rand
        ("R1", 11),  # random.sample(...)
        ("R1", 12),  # np.random.seed(42)
        ("R1", 13),  # np.random.rand(n)
        ("R1", 14),  # np.random.default_rng() without a seed
    ]


def test_messages_point_at_the_generator_api() -> None:
    findings = lint(FIXTURES / "determinism_bad.py", select=["R1"])
    unseeded = [d for d in findings if d.line == 14]
    assert len(unseeded) == 1
    assert "seed" in unseeded[0].message


def test_good_fixture_is_silent_under_all_rules() -> None:
    assert lint(FIXTURES / "determinism_good.py") == []
