"""R4: set iteration feeding heaps / keyed tie-breaks is flagged."""

from tests.analysis.conftest import FIXTURES, hits, lint


def test_bad_fixture_fires_on_heap_feeds_and_keyed_tiebreaks() -> None:
    findings = lint(FIXTURES / "ordering_bad.py", select=["R4"])
    assert hits(findings) == [
        ("R4", 8),   # for v in set(...) feeding heappush
        ("R4", 15),  # comprehension over a set literal in a heap-pushing fn
        ("R4", 22),  # max(dict.values(), key=...)
        ("R4", 26),  # sorted({...}, key=...)
    ]


def test_heap_feed_message_names_the_function() -> None:
    findings = lint(FIXTURES / "ordering_bad.py", select=["R4"])
    heap_feed = [d for d in findings if d.line == 8]
    assert len(heap_feed) == 1
    assert "build_heap()" in heap_feed[0].message


def test_good_fixture_is_silent_under_all_rules() -> None:
    # sorted(set(...)) without a key and keyed tie-breaks over
    # index-ordered sequences are both fine.
    assert lint(FIXTURES / "ordering_good.py") == []
