"""R14: raw writes in service modules are flagged; the durable core is exempt."""

from tests.analysis.conftest import FIXTURES, hits, lint


def test_bad_fixture_fires_on_every_raw_write() -> None:
    findings = lint(FIXTURES / "atomicio_bad", select=["R14"])
    assert hits(findings) == [
        ("R14", 8),   # open(path, "w")
        ("R14", 10),  # path.open("wb")
        ("R14", 12),  # open(path, mode="a")
        ("R14", 14),  # open(path, "r+")
        ("R14", 16),  # os.replace
        ("R14", 17),  # os.rename
        ("R14", 18),  # path.write_text
        ("R14", 19),  # path.write_bytes
    ]


def test_messages_route_to_the_atomic_helpers() -> None:
    findings = lint(FIXTURES / "atomicio_bad", select=["R14"])
    assert findings
    assert all(
        "atomic_write_bytes" in d.message or "journal" in d.message
        for d in findings
    )


def test_good_pack_is_silent() -> None:
    # journal.py is exempt by basename, reader_ok.py only reads, and
    # dump_ok.py writes outside any service/ directory.
    assert lint(FIXTURES / "atomicio_good", select=["R14"]) == []


def test_exemption_is_by_basename_not_content() -> None:
    # The exempt file really does contain raw writes -- renamed (linted
    # as a tree whose service/ dir holds it under another check), the
    # same content in writer_bad.py fires. This guards against the
    # exemption accidentally matching everything.
    findings = lint(
        FIXTURES / "atomicio_bad" / "service" / "writer_bad.py", select=["R14"]
    )
    # Linted as a bare file the service/ scope is gone and R14 is silent.
    assert findings == []


def test_real_service_package_is_clean() -> None:
    # Lint from src/repro so the service/ directory is in scope (rule
    # scoping is root-relative): the shipped serving layer must route
    # every write through the exempt durable core.
    from tests.analysis.conftest import REPO_ROOT

    findings = lint(REPO_ROOT / "src" / "repro", select=["R14"])
    assert findings == []
