"""R16: cross-shard reach-ins are flagged; the facade and sharding/ are not."""

from tests.analysis.conftest import FIXTURES, REPO_ROOT, hits, lint


def test_bad_fixture_fires_on_every_reach_in_and_private_import() -> None:
    findings = lint(FIXTURES / "shardaccess_bad", select=["R16"])
    assert hits(findings) == [
        ("R16", 3),   # from repro.service.sharding.manager import ...
        ("R16", 4),   # from repro.service.sharding.manifest import ...
        ("R16", 6),   # import repro.service.sharding.manager
        ("R16", 10),  # coordinator.managers[0].store
        ("R16", 11),  # coordinator.shards[1].journal
        ("R16", 12),  # managers[0].engine
        ("R16", 13),  # shards[2].service
    ]


def test_messages_route_to_the_coordinator_surface() -> None:
    findings = lint(FIXTURES / "shardaccess_bad", select=["R16"])
    assert findings
    assert all(
        "ShardCoordinator" in d.message or "facade" in d.message
        for d in findings
    )


def test_good_pack_is_silent() -> None:
    # replay_ok.py uses only the package facade and coordinator command
    # surface; internals_ok.py sits under a sharding/ directory, where
    # the machinery legitimately owns per-shard handles.
    assert lint(FIXTURES / "shardaccess_good", select=["R16"]) == []


def test_exemption_is_by_directory_not_content() -> None:
    # The sharding/ fixture really does reach into shard internals; the
    # same content outside that directory fires. This guards against
    # the exemption accidentally matching everything.
    bad = FIXTURES / "shardaccess_bad" / "ops" / "drain_bad.py"
    assert lint(bad, select=["R16"]) != []


def test_real_source_tree_is_clean() -> None:
    # The shipped CLI/loadgen/http integration must use the facade only.
    findings = lint(REPO_ROOT / "src" / "repro", select=["R16"])
    assert findings == []
