"""Engine behaviour: suppressions, syntax errors, rule table, selection."""

from pathlib import Path

import pytest

from repro.analysis import RULES, load_rules, run_lint
from repro.analysis.registry import Rule, register_rule
from repro.analysis.suppress import parse_suppressions
from tests.analysis.conftest import FIXTURES, hits


BAD_RNG = "import numpy as np\nrng = np.random.default_rng()\n"


def test_line_suppression_silences_one_rule(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # geacc-lint: disable=R1 reason=test\n"
    )
    assert run_lint([target]) == []


def test_line_suppression_is_rule_specific(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # geacc-lint: disable=R4 reason=test\n"
    )
    assert hits(run_lint([target])) == [("R1", 2)]


def test_bare_disable_silences_all_rules_on_the_line(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # geacc-lint: disable reason=test\n"
    )
    assert run_lint([target]) == []


def test_file_level_suppression(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text("# geacc-lint: disable-file=R1 reason=test\n" + BAD_RNG)
    assert run_lint([target]) == []


def test_suppression_parser_handles_lists() -> None:
    index = parse_suppressions(["x = 1  # geacc-lint: disable=R1, R2 reason=test"])
    assert index.is_suppressed(1, "R1")
    assert index.is_suppressed(1, "R2")
    assert not index.is_suppressed(1, "R3")
    assert not index.is_suppressed(2, "R1")


def test_syntax_errors_become_e0_diagnostics(tmp_path: Path) -> None:
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n    pass\n")
    findings = run_lint([target])
    assert len(findings) == 1
    assert findings[0].rule_id == "E0"
    assert "syntax error" in findings[0].message


def test_rule_table_is_complete() -> None:
    load_rules()
    assert set(RULES) == {
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
        "R9", "R10", "R11", "R12", "R13", "R14", "R15", "R16",
    }
    for rule_id, cls in RULES.items():
        assert cls.rule_id == rule_id
        assert cls.title
        assert cls.rationale


def test_select_and_ignore_filter_rules() -> None:
    assert [r.rule_id for r in load_rules(select=["R1", "R3"])] == ["R1", "R3"]
    assert [r.rule_id for r in load_rules(ignore=["R2"])] == [
        "R1", "R10", "R11", "R12", "R13", "R14", "R15", "R16",
        "R3", "R4", "R5", "R6", "R7", "R8", "R9",
    ]


def test_unknown_rule_ids_raise() -> None:
    with pytest.raises(ValueError, match="unknown rule"):
        load_rules(select=["R99"])


def test_duplicate_rule_registration_raises() -> None:
    load_rules()

    class Duplicate(Rule):
        rule_id = "R1"
        title = "dup"

    with pytest.raises(ValueError, match="already registered"):
        register_rule(Duplicate)


def test_findings_are_sorted_and_deduplicated() -> None:
    findings = run_lint([FIXTURES / "determinism_bad.py"], select=["R1"])
    assert findings == sorted(findings)
    assert len(findings) == len(set(findings))


def test_directory_discovery_is_recursive(tmp_path: Path) -> None:
    nested = tmp_path / "pkg" / "sub"
    nested.mkdir(parents=True)
    (nested / "mod.py").write_text(BAD_RNG)
    assert hits(run_lint([tmp_path])) == [("R1", 2)]
