"""CFG builder: shapes, exceptional edges, finally duplication, refinements."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import (
    EXC,
    NORMAL,
    REFINE_NONE,
    REFINE_NOT_NONE,
    CFG,
    build_cfg,
    function_cfgs,
    stmt_can_raise,
)


def cfg_of(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(func)


def lines_in_block(cfg: CFG, idx: int) -> list[int]:
    return [stmt.lineno for stmt in cfg.blocks[idx].stmts]


def blocks_holding(cfg: CFG, line: int) -> list[int]:
    return [
        block.idx
        for block in cfg.blocks
        if any(stmt.lineno == line for stmt in block.stmts)
    ]


def reachable_lines(cfg: CFG, kinds: tuple[str, ...] = (NORMAL, EXC)) -> set[int]:
    """Line numbers reachable from the entry along the given edge kinds."""
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        idx = stack.pop()
        for edge in cfg.succs(idx):
            if edge.kind in kinds and edge.dst not in seen:
                seen.add(edge.dst)
                stack.append(edge.dst)
    return {line for idx in seen for line in lines_in_block(cfg, idx)}


def test_straight_line_is_a_single_path() -> None:
    cfg = cfg_of(
        """
        def f(x):
            a = x
            b = a
            return b
        """
    )
    assert {3, 4, 5} <= reachable_lines(cfg)
    # No branching anywhere: every block has at most one normal successor.
    for block in cfg.blocks:
        normal = [e for e in cfg.succs(block.idx) if e.kind == NORMAL]
        assert len(normal) <= 1


def test_if_else_branches_and_rejoins() -> None:
    cfg = cfg_of(
        """
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """
    )
    [then_block] = blocks_holding(cfg, 4)
    [else_block] = blocks_holding(cfg, 6)
    [join_block] = blocks_holding(cfg, 7)
    assert then_block != else_block
    assert {e.dst for e in cfg.succs(then_block)} == {join_block}
    assert {e.dst for e in cfg.succs(else_block)} == {join_block}


def test_while_loop_has_a_back_edge() -> None:
    cfg = cfg_of(
        """
        def f(n):
            while n:
                n = n - 1
            return n
        """
    )
    [body_block] = blocks_holding(cfg, 4)
    # Some successor chain from the body leads back to a block that can
    # reach the body again (the loop header).
    header_candidates = {e.dst for e in cfg.succs(body_block)}
    assert any(
        body_block in {e.dst for e in cfg.succs(h)} for h in header_candidates
    )


def test_early_return_reaches_exit_directly() -> None:
    cfg = cfg_of(
        """
        def f(x):
            if x is None:
                return None
            return x
        """
    )
    [early] = blocks_holding(cfg, 4)
    assert {e.dst for e in cfg.succs(early)} == {cfg.exit}


def test_raising_statement_gets_its_own_block_and_exc_edge() -> None:
    cfg = cfg_of(
        """
        def f(x):
            a = 1
            work(x)
            return a
        """
    )
    [call_block] = blocks_holding(cfg, 4)
    kinds = {e.kind for e in cfg.succs(call_block)}
    assert kinds == {NORMAL, EXC}
    # With no enclosing handler the exception propagates to the exit.
    exc_edges = [e for e in cfg.succs(call_block) if e.kind == EXC]
    assert {e.dst for e in exc_edges} == {cfg.exit}


def test_try_except_routes_exc_edges_into_the_handler() -> None:
    cfg = cfg_of(
        """
        def f(x):
            try:
                work(x)
            except ValueError:
                fallback()
            return x
        """
    )
    [raising] = blocks_holding(cfg, 4)
    [handler] = blocks_holding(cfg, 6)
    exc_targets: set[int] = set()
    stack = [e.dst for e in cfg.succs(raising) if e.kind == EXC]
    exc_targets.update(stack)
    # The handler body is reachable from the raising statement.
    while stack:
        idx = stack.pop()
        for edge in cfg.succs(idx):
            if edge.dst not in exc_targets:
                exc_targets.add(edge.dst)
                stack.append(edge.dst)
    assert handler in exc_targets


def test_finally_body_is_instantiated_for_each_exit_kind() -> None:
    cfg = cfg_of(
        """
        def f(x):
            try:
                work(x)
            finally:
                cleanup()
        """
    )
    # cleanup() runs on the normal path AND on the exceptional path, so
    # its statement appears in more than one block.
    assert len(blocks_holding(cfg, 6)) >= 2


def test_none_test_branches_carry_refinements() -> None:
    cfg = cfg_of(
        """
        def f(x):
            if x is None:
                a = 1
            else:
                a = 2
            return a
        """
    )
    refinements = {e.refine for e in cfg.edges if e.refine is not None}
    assert ("x", REFINE_NONE) in refinements
    assert ("x", REFINE_NOT_NONE) in refinements


def test_with_statement_body_is_linked() -> None:
    cfg = cfg_of(
        """
        def f(handle):
            with handle.attach() as lease:
                use(lease)
            return None
        """
    )
    assert {4, 5} <= reachable_lines(cfg)


def test_stmt_can_raise_classification() -> None:
    module = ast.parse(
        textwrap.dedent(
            """
            a = 1
            b = f(a)
            raise ValueError(a)
            assert a
            import os
            c = a
            """
        )
    )
    can_raise = [stmt_can_raise(stmt) for stmt in module.body]
    assert can_raise == [False, True, True, True, True, False]


def test_function_cfgs_finds_nested_and_method_functions() -> None:
    tree = ast.parse(
        textwrap.dedent(
            """
            def outer():
                def inner():
                    return 1
                return inner

            class C:
                def method(self):
                    return 2
            """
        )
    )
    names = sorted(cfg.func.name for cfg in function_cfgs(tree))
    assert names == ["inner", "method", "outer"]


def test_rpo_starts_at_entry_and_covers_every_block() -> None:
    cfg = cfg_of(
        """
        def f(x):
            if x:
                a = 1
            while a:
                a = a - 1
            return a
        """
    )
    order = cfg.rpo()
    assert order[0] == cfg.entry
    assert sorted(order) == sorted(b.idx for b in cfg.blocks)
