"""R8: server-side sockets outside repro.service are flagged; inside they pass."""

from tests.analysis.conftest import FIXTURES, hits, lint


def test_bad_fixture_fires_on_every_listener_primitive() -> None:
    findings = lint(FIXTURES / "netio_bad.py", select=["R8"])
    assert hits(findings) == [
        ("R8", 3),   # import socket
        ("R8", 4),   # import socket as sock
        ("R8", 5),   # import socketserver
        ("R8", 6),   # import http.server
        ("R8", 7),   # from http.server import ThreadingHTTPServer
        ("R8", 8),   # from http import server
        ("R8", 9),   # from socketserver import TCPServer
        ("R8", 13),  # socket.create_server(...)
        ("R8", 14),  # sock.socket()
        ("R8", 15),  # socketserver.TCPServer(...)
        ("R8", 16),  # http.server.HTTPServer(...)
        ("R8", 17),  # server.ThreadingHTTPServer(...)
    ]


def test_messages_route_to_repro_service() -> None:
    findings = lint(FIXTURES / "netio_bad.py", select=["R8"])
    assert findings
    assert all("repro.service" in d.message for d in findings)


def test_good_fixture_is_silent_under_r8() -> None:
    assert lint(FIXTURES / "netio_good.py", select=["R8"]) == []


def test_service_package_is_exempt() -> None:
    # The same primitives under a service/ package directory are the
    # sanctioned implementation, not a violation.
    findings = lint(FIXTURES / "scoped_good", select=["R8"])
    assert findings == []


def test_exemption_requires_the_directory_scope() -> None:
    # Linted as a bare file the service/ scope is gone and R8 fires.
    findings = lint(
        FIXTURES / "scoped_good" / "service" / "server_ok.py", select=["R8"]
    )
    assert hits(findings) == [
        ("R8", 3),   # import socket
        ("R8", 4),   # from http.server import ThreadingHTTPServer
        ("R8", 8),   # socket.socket()
    ]
