"""R15: per-element numpy loops in the kernel dirs are flagged."""

from tests.analysis.conftest import FIXTURES, hits, lint


def test_bad_fixture_fires_once_per_loop() -> None:
    findings = lint(FIXTURES / "vectorloops_bad", select=["R15"])
    assert hits(findings) == [("R15", 5), ("R15", 6), ("R15", 6), ("R15", 12)]
    # One finding per loop even when the body indexes at several sites.
    multi_site = [d for d in findings if d.path.endswith("residual_bad.py")]
    assert len(multi_site) == 2


def test_message_names_the_indexing_site() -> None:
    findings = lint(
        FIXTURES / "vectorloops_bad" / "flow" / "residual_bad.py",
        select=["R15"],
    )
    # Linted as a bare file the flow/ scope is gone ...
    assert findings == []
    findings = lint(FIXTURES / "vectorloops_bad", select=["R15"])
    first = next(d for d in findings if d.line == 6)
    assert "line 7" in first.message  # ... and in scope, the site is cited


def test_good_fixture_is_silent_under_all_rules() -> None:
    assert lint(FIXTURES / "vectorloops_good") == []


def test_reference_module_is_exempt_by_name() -> None:
    findings = lint(
        FIXTURES / "vectorloops_good" / "flow", select=["R15"]
    )
    assert findings == []
