"""Helpers for the geacc-lint test suite."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Diagnostic, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint(
    target: Path, select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Diagnostic]:
    """Run the linter on one fixture file/tree."""
    return run_lint([target], select=select, ignore=ignore)


def hits(findings: list[Diagnostic]) -> list[tuple[str, int]]:
    """Compress findings to sorted (rule_id, line) pairs for asserts."""
    return sorted((d.rule_id, d.line) for d in findings)
