"""Acceptance gate: the shipped tree lints clean under its own rules.

This is the executable form of "geacc-lint src/repro exits 0": any PR
that introduces unseeded randomness, exact float objective equality,
an unregistered solver, a set-fed tie-break, or untyped core API fails
tier-1 here, not just in CI.
"""

from repro.analysis import run_lint
from tests.analysis.conftest import REPO_ROOT


def test_src_repro_lints_clean() -> None:
    findings = run_lint([REPO_ROOT / "src" / "repro"])
    rendered = "\n".join(d.render() for d in findings)
    assert findings == [], f"geacc-lint findings:\n{rendered}"
