"""R3: solver-registry completeness over a miniature core/algorithms tree."""

from tests.analysis.conftest import FIXTURES, lint


def test_bad_tree_flags_ghost_and_duplicate_solvers() -> None:
    findings = lint(FIXTURES / "registry_bad", select=["R3"])
    by_file: dict[str, list[str]] = {}
    for diag in findings:
        by_file.setdefault(diag.path.rsplit("/", 1)[-1], []).append(diag.message)

    ghost = by_file.pop("ghost.py")
    assert len(ghost) == 3
    assert any("lacks @register_solver" in m for m in ghost)
    assert any("never runs" in m for m in ghost)
    assert any("__all__" in m for m in ghost)
    assert all(d.line == 6 for d in findings if d.path.endswith("ghost.py"))

    dup = by_file.pop("dup.py")
    assert len(dup) == 3  # duplicate name + unimported + unexported, all GreedyB
    assert any("already registered" in m for m in dup)
    assert all(d.line == 13 for d in findings if d.path.endswith("dup.py"))

    assert by_file == {}  # GreedyA and base.py are clean


def test_good_tree_is_silent() -> None:
    # Abstract intermediates are exempt; the registered, imported,
    # exported concrete solver satisfies the rule.
    assert lint(FIXTURES / "registry_good", select=["R3"]) == []


def test_rule_skips_trees_without_the_solver_package() -> None:
    assert lint(FIXTURES / "scoped_good", select=["R3"]) == []
