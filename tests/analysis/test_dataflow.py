"""The fixpoint engine: joins, directions, refinement and exc hooks."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import CFG, EXC, REFINE_NONE, Block, Edge, build_cfg
from repro.analysis.dataflow import BACKWARD, MAY, MUST, Analysis, solve


def cfg_of(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(func)


class AssignedNames(Analysis[frozenset]):
    """Forward analysis: which names have been assigned by this point."""

    def __init__(self, mode: str) -> None:
        self.mode = mode

    def initial(self, cfg: CFG) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left & right if self.mode == MUST else left | right

    def transfer_stmt(self, stmt: ast.stmt, fact: frozenset) -> frozenset:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    fact = fact | {target.id}
        return fact


BRANCHY = """
def f(cond):
    if cond:
        a = 1
    else:
        b = 2
    return cond
"""


def test_must_join_is_intersection_may_join_is_union() -> None:
    cfg = cfg_of(BRANCHY)
    must = solve(cfg, AssignedNames(MUST)).in_facts[cfg.exit]
    may = solve(cfg, AssignedNames(MAY)).in_facts[cfg.exit]
    assert must == frozenset()  # neither name is assigned on every path
    assert may == frozenset({"a", "b"})  # each is assigned on some path


def test_loops_reach_a_fixpoint() -> None:
    cfg = cfg_of(
        """
        def f(n):
            total = 0
            while n:
                n = n - 1
                extra = 1
            return total
        """
    )
    out = solve(cfg, AssignedNames(MUST)).in_facts[cfg.exit]
    # total is assigned on every path; extra only if the loop ran.
    assert out is not None
    assert "total" in out
    assert "extra" not in out


def test_unreachable_blocks_have_no_fact() -> None:
    cfg = cfg_of(
        """
        def f(x):
            return x
            y = 1
        """
    )
    solution = solve(cfg, AssignedNames(MAY))
    dead = [
        block.idx
        for block in cfg.blocks
        if any(stmt.lineno == 4 for stmt in block.stmts)
    ]
    assert dead and all(solution.in_facts[idx] is None for idx in dead)
    # stmt_facts() skips them rather than handing checkers a None fact.
    walked = [stmt.lineno for _b, stmt, _in, _out in solution.stmt_facts()]
    assert 4 not in walked


class RefinedNames(AssignedNames):
    """Pretend a name assigned before an ``is None`` arm never happened."""

    def refine(self, edge: Edge, fact: frozenset) -> frozenset:
        assert edge.refine is not None
        name, tag = edge.refine
        if tag == REFINE_NONE:
            return fact - {name}
        return fact


def test_refine_hook_is_applied_on_branch_edges() -> None:
    cfg = cfg_of(
        """
        def f():
            x = compute()
            if x is None:
                return None
            return x
        """
    )
    solution = solve(cfg, RefinedNames(MAY))
    # The early return sits on the "x is None" arm: the refinement
    # removed x there, while the fall-through arm still carries it.
    checked = 0
    for _block, stmt, before, _after in solution.stmt_facts():
        if not isinstance(stmt, ast.Return):
            continue
        checked += 1
        if isinstance(stmt.value, ast.Constant):  # return None: the None arm
            assert "x" not in before
        else:  # return x -- the fall-through arm
            assert "x" in before
    assert checked == 2


class ExcAware(AssignedNames):
    """Mark facts crossing an exceptional edge."""

    def transfer_exc(self, block: Block, fact: frozenset) -> frozenset:
        return fact | {"<exc>"}


def test_transfer_exc_shapes_exceptional_edges_only() -> None:
    cfg = cfg_of(
        """
        def f(x):
            try:
                risky(x)
            except ValueError:
                handled = 1
            return x
        """
    )
    solution = solve(cfg, ExcAware(MAY))
    handler_in = None
    for block in cfg.blocks:
        if any(stmt.lineno == 6 for stmt in block.stmts):  # handled = 1
            handler_in = solution.in_facts[block.idx]
    assert handler_in is not None and "<exc>" in handler_in
    # The normal path to the exit may also flow through join points fed
    # by the handler, but the entry fact itself is untouched.
    assert "<exc>" not in solution.in_facts[cfg.entry]
    assert any(edge.kind == EXC for edge in cfg.edges)


class LiveLoads(Analysis[frozenset]):
    """Backward may-analysis: names read later than this point."""

    def __init__(self) -> None:
        self.direction = BACKWARD
        self.mode = MAY

    def initial(self, cfg: CFG) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def transfer_stmt(self, stmt: ast.stmt, fact: frozenset) -> frozenset:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                fact = fact | {node.id}
        return fact


def test_backward_direction_propagates_uses_to_the_entry() -> None:
    cfg = cfg_of(
        """
        def f(x):
            y = x
            return y
        """
    )
    solution = solve(cfg, LiveLoads())
    entry_fact = solution.in_facts[cfg.entry]
    assert entry_fact is not None
    assert {"x", "y"} <= entry_fact
