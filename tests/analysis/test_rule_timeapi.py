"""R6: wall-clock time.time() is flagged; monotonic/perf_counter pass."""

from tests.analysis.conftest import FIXTURES, hits, lint


def test_bad_fixture_fires_on_every_wall_clock_use() -> None:
    findings = lint(FIXTURES / "timeapi_bad.py", select=["R6"])
    assert hits(findings) == [
        ("R6", 5),   # from time import time
        ("R6", 9),   # time.time()
        ("R6", 13),  # clock.time() via import time as clock
    ]


def test_messages_point_at_the_monotonic_clock() -> None:
    findings = lint(FIXTURES / "timeapi_bad.py", select=["R6"])
    assert findings
    assert all("monotonic" in d.message for d in findings)


def test_good_fixture_is_silent_under_r6() -> None:
    assert lint(FIXTURES / "timeapi_good.py", select=["R6"]) == []
