"""R6 bad fixture: wall-clock time in deadline/duration code."""

import time
import time as clock
from time import time  # noqa: F811  (rebinding is the point of the fixture)


def deadline_from_wall_clock(seconds: float) -> float:
    return time.time() + seconds


def elapsed(start: float) -> float:
    return clock.time() - start
