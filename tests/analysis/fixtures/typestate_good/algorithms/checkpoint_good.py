"""R11 near-misses (algorithms/): checkpointed or budget-free loops."""


def drain_heap(heap, budget):
    total = 0.0
    while heap:
        budget.checkpoint()
        total += heap.pop()
    return total


def checkpoint_in_guarded_form(heap, budget):
    # The repo idiom: checkpoint each pop, return best-so-far when the
    # budget runs out. The try does not hide the call from the rule.
    best = 0.0
    while heap:
        try:
            budget.checkpoint()
        except RuntimeError:
            return best
        best = max(best, heap.pop())
    return best


def helper_without_budget(heap):
    # Near-miss: not budget-aware -- bounded loops here are the
    # caller's responsibility.
    total = 0.0
    while heap:
        total += heap.pop()
    return total


def for_loops_are_bounded(items, budget):
    budget.checkpoint()
    total = 0.0
    for item in items:
        total += item
    return total


class Solver:
    def solve(self, instance):
        best = None
        while self._budget.remaining() > 0:
            self._budget.checkpoint()
            best = self._improve(instance, best)
        return best

    def _local_scan(self, instance):
        # Near-miss: a nested helper's while loop is not this
        # function's loop, and the helper itself never sees a budget.
        def scan(row):
            index = 0
            while index < len(row):
                index += 1
            return index

        self._budget.checkpoint()
        return scan(instance)
