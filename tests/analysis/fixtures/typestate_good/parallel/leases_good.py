"""R10 near-misses (parallel/): every lease dies or is handed off."""

from multiprocessing import shared_memory


def released_in_finally(handle, solver):
    # Near-miss: solver() may raise mid-use, but the finally releases
    # the lease on the exceptional path too.
    lease = handle.attach()
    try:
        return solver(lease.payload)
    finally:
        lease.close()


def guarded_release(handle):
    # Near-miss: the None arm provably holds no lease (refinement drops
    # the site), and the live arm releases before any call can raise.
    lease = handle.attach()
    if lease is None:
        return None
    payload = lease.payload
    lease.close()
    return payload


def escape_by_return(name):
    # The caller owns the segment once we return it.
    segment = shared_memory.SharedMemory(name=name)
    return segment


def escape_by_handoff(handle, registry):
    lease = handle.attach()
    registry.adopt(lease)
    return True


def with_statement_owns_exit(handle):
    with handle.attach() as lease:
        return lease.payload.sum()


def alias_release_counts(handle):
    lease = handle.attach()
    alias = lease
    alias.close()
    return None


def release_then_rebind(name_a, name_b):
    segment = shared_memory.SharedMemory(name=name_a)
    segment.close()
    segment = shared_memory.SharedMemory(name=name_b)
    segment.close()
    return None
