"""R12 near-misses (service/): every ack happens on a durable state."""

import os


class Journal:
    def write_fsync_ack(self, handler, record):
        self._handle.write(record)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        handler.send_response(200)

    def write_fsync_return(self, record):
        self._handle.write(record)
        os.fsync(self._handle.fileno())
        return True

    def error_path_is_not_an_ack(self, record):
        # Near-miss: raising with an unflushed write is fine -- an
        # exception is the failure signal, nobody takes it for an ack.
        self._handle.write(record)
        if len(record) > 65536:
            raise ValueError("record too large")
        os.fsync(self._handle.fileno())

    def response_bytes_are_not_journal_bytes(self, wfile, blob):
        # Near-miss: wfile is the HTTP response stream, not the journal
        # handle; writing it sets no hazard.
        wfile.write(blob)
        return True
