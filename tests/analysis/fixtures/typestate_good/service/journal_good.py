"""R9 near-misses (service/): every apply is dominated by its own append."""


class Service:
    def journal_then_apply(self, cmd):
        self._journal.append(cmd)
        self._store.apply(cmd)

    def early_return_before_append(self, cmd):
        # Near-miss: a path leaves the function before any mutation, so
        # the apply below is still dominated on every path reaching it.
        if cmd is None:
            return None
        self._journal.append(cmd)
        return self._store.apply(cmd)

    def append_on_both_branches(self, cmd, batch):
        if batch:
            self._journal.append(batch)
        else:
            self._journal.append(cmd)
        self._store.apply(cmd)

    def one_append_per_iteration(self, cmds):
        for cmd in cmds:
            self._journal.append(cmd)
            self._store.apply(cmd)

    def no_mutation_at_all(self, cmd):
        self._journal.append(cmd)
        return self._store.snapshot()
