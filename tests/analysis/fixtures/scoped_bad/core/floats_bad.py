"""R2 bad fixture (lives under core/): exact float equality on objectives."""


def same_objective(max_sum_a, max_sum_b):
    return max_sum_a == max_sum_b  # line 5: R2


def stale(sims, u, v, best_score):
    if sims[u][v] != best_score:  # line 9: R2
        return 0.5 == sims[u][v]  # line 10: R2 (float literal operand)
    return u == v  # int identity comparison: not flagged
