"""R5 bad fixture (lives under core/): unannotated public API."""


def similarity(event, user):  # line 4: R5 params + R5 return
    return 0.0


class Accumulator:
    def value(self):  # line 9: R5 return annotation missing
        return 1.0

    def _internal(self, x):  # private: not flagged
        return x
