"""R15 bad fixture (lives under flow/): per-element array walks."""


def total_cost(cost, flow):
    total = 0.0
    for i in range(len(cost)):  # line 6: R15 (len-bounded, scalar index)
        total += cost[i] * flow[i]
    return total


def relax_all(dist, heads, weights):
    for j in range(weights.shape[0]):  # line 12: R15 (shape-bounded)
        head = heads[j]
        if dist[head] > weights[j]:
            dist[head] = weights[j]
    return dist
