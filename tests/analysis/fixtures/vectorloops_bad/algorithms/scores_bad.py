"""R15 bad fixture (lives under algorithms/): scalar scoring loop."""


def best_candidate(sims, visited):
    best, best_score = -1, -1.0
    for u in range(0, sims.shape[0], 2):  # line 6: R15 (any range arity)
        if not visited[u] and sims[u] > best_score:
            best, best_score = u, sims[u]
    return best
