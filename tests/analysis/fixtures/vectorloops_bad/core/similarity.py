"""R15 bad fixture (named core/similarity.py): per-pair sim loop."""


def pairwise(event_attrs, user_attrs, out):
    for v in range(len(event_attrs)):  # line 5: R15
        out[v] = ((event_attrs[v] - user_attrs) ** 2).sum()
    return out
