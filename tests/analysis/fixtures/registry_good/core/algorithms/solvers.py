"""A compliant solver hierarchy: abstract bases are exempt."""

from abc import abstractmethod

from .base import Solver, register_solver


class BaseArranger(Solver):
    @abstractmethod
    def plan(self):
        ...


@register_solver("arranger")
class Arranger(BaseArranger):
    def plan(self):
        return []

    def solve(self, instance):
        return None
