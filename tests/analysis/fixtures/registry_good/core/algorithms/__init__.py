from .solvers import Arranger

__all__ = ["Arranger"]
