"""Miniature solver registry mirroring repro.core.algorithms.base."""

SOLVERS = {}


def register_solver(name):
    def decorate(cls):
        SOLVERS[name] = cls
        return cls

    return decorate


class Solver:
    def solve(self, instance):
        raise NotImplementedError
