"""R7 fixture: every process-pool primitive below must be flagged."""

import multiprocessing
import multiprocessing as mp
from multiprocessing import Pool  # line 5: from-import of Pool
from concurrent.futures import ProcessPoolExecutor  # line 6
from concurrent import futures


def naked_pools() -> None:
    multiprocessing.Pool(2)  # line 11
    mp.Process(target=print)  # line 12
    mp.pool.Pool(2)  # line 13
    multiprocessing.set_start_method("fork")  # line 14
    ctx = multiprocessing.get_context("fork")  # line 15
    futures.ProcessPoolExecutor(2)  # line 16
    del ctx, Pool, ProcessPoolExecutor
