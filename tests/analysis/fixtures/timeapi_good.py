"""R6 good fixture: monotonic deadlines, perf_counter durations."""

import time
from time import monotonic, perf_counter


def deadline(seconds: float) -> float:
    return time.monotonic() + seconds


def measure_once() -> float:
    start = perf_counter()
    return perf_counter() - start


def remaining(until: float) -> float:
    return until - monotonic()
