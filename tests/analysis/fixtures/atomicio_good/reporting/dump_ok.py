"""R14 scope fixture: writes outside a ``service/`` directory pass."""


def dump(path: str, text: str) -> None:
    with open(path, "w") as sink:
        sink.write(text)
