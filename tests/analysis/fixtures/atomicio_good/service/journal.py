"""R14 exemption fixture: ``journal.py`` implements the durable core."""

import os


def rewrite(path: str, blob: bytes) -> None:
    with open(path + ".tmp", "wb") as sink:
        sink.write(blob)
    os.replace(path + ".tmp", path)
