"""R14 silent fixture: reads, computed modes, and str.replace pass."""

from pathlib import Path


def load(path: Path, mode: str, name: str) -> bytes:
    with open(path) as source:  # absent mode defaults to "r"
        source.read()
    with open(path, "rb") as source:
        source.read()
    with path.open(mode) as source:  # non-literal mode: not provably a write
        source.read()
    path.read_text(encoding="utf-8")
    return name.replace("-", "_").encode()  # str.replace, not os.replace
