"""R1 good fixture: explicitly seeded Generators threaded by argument."""

import numpy as np


def sample_users(n: int, seed: int) -> tuple:
    rng = np.random.default_rng(seed)
    other = np.random.default_rng(seed=seed + 1)
    return rng.permutation(n), other.integers(0, n)


def shuffle_in_place(items: list, rng: np.random.Generator) -> None:
    rng.shuffle(items)
