"""R8 exemption fixture: under a service/ package, listeners are the point."""

import socket
from http.server import ThreadingHTTPServer


def build_server(handler: object) -> ThreadingHTTPServer:
    probe = socket.socket()
    probe.close()
    return ThreadingHTTPServer(("127.0.0.1", 0), handler)  # type: ignore[arg-type]
