"""R7 exemption fixture: under a parallel/ package, pools are the point."""

import multiprocessing


def build_pool() -> object:
    ctx = multiprocessing.get_context("fork")
    return ctx.Pool(2)
