"""R2 good fixture: tolerance helpers instead of exact equality."""

from repro.core.numeric import close


def same_objective(max_sum_a: float, max_sum_b: float) -> bool:
    return close(max_sum_a, max_sum_b)


def metric_dispatch(metric: str) -> bool:
    return metric == "euclidean"  # string comparison: exempt


def count_check(n_events: int, expected: int) -> bool:
    return n_events == expected  # int comparison: not float-typed
