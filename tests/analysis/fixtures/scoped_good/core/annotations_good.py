"""R5 good fixture: fully annotated public API under core/."""


def similarity(event: int, user: int) -> float:
    return 0.0


class Accumulator:
    def __init__(self, start: float = 0.0) -> None:
        self._total = start

    def value(self) -> float:
        return self._total

    def _internal(self, x):  # private helpers are exempt
        return x
