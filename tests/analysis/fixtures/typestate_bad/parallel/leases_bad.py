"""R10 bad fixture (lives under parallel/): leases that can die unreleased."""

from multiprocessing import shared_memory


def never_closed(handle):
    lease = handle.attach()  # line 7: R10 (no release on any path)
    return lease.payload.sum()


def leaks_when_work_raises(handle, solver):
    lease = handle.attach()  # line 12: R10 (solver() raising skips close)
    result = solver(lease.payload)
    lease.close()
    return result


def rebind_drops_first_segment(name_a, name_b):
    segment = shared_memory.SharedMemory(name=name_a)  # line 19: R10 (rebound)
    segment = shared_memory.SharedMemory(name=name_b)
    try:
        return bytes(segment.buf)
    finally:
        segment.close()


def closed_on_then_branch_only(handle, keep):
    lease = handle.attach()  # line 28: R10 (keep path exits unreleased)
    if not keep:
        lease.close()
