"""R9 bad fixture (lives under service/): store mutations the journal misses."""


class Service:
    def mutate_without_append(self, cmd):
        self._store.apply(cmd)  # line 6: R9 (no append anywhere)

    def append_on_one_branch_only(self, cmd, fast):
        if not fast:
            self._journal.append(cmd)
        self._store.apply(cmd)  # line 11: R9 (fast path skips the append)

    def one_append_two_applies(self, first, second):
        self._journal.append(first)
        self._store.apply(first)
        self._store.apply(second)  # line 16: R9 (the append was consumed)

    def append_inside_loop_apply_after(self, cmds):
        for cmd in cmds:
            self._journal.append(cmd)
        self._store.apply(cmds)  # line 21: R9 (zero-iteration path never appends)

    def append_after_apply(self, cmd):
        self._store.apply(cmd)  # line 24: R9 (order flipped)
        self._journal.append(cmd)
