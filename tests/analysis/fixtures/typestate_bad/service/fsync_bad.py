"""R12 bad fixture (lives under service/): acks racing an unflushed write."""

import os


class Journal:
    def ack_without_fsync(self, handler, record):
        self._handle.write(record)
        self._handle.flush()  # flush is not durability
        handler.send_response(200)  # line 10: R12 (ack with unflushed write)

    def return_without_fsync(self, record):
        self._handle.write(record)
        return True  # line 14: R12 (returning is the in-process ack)

    def fsync_on_one_branch_only(self, handler, record, lazy):
        self._handle.write(record)
        if not lazy:
            os.fsync(self._handle.fileno())
        handler._reply(200)  # line 20: R12 (lazy path may ack unflushed)
