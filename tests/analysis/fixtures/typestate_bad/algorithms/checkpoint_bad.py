"""R11 bad fixture (lives under algorithms/): uncheckpointed solver loops."""


def drain_heap(heap, budget):
    total = 0.0
    while heap:  # line 6: R11 (budget-aware, loop never checkpoints)
        total += heap.pop()
    return total


class Solver:
    def solve(self, instance):
        best = None
        while self._budget.remaining() > 0:  # line 14: R11 (self._budget user)
            best = self._improve(instance, best)
        return best
