"""R4 bad fixture: set-order-dependent heap pushes and keyed tie-breaks."""

import heapq


def build_heap(candidates, sims):
    heap = []
    for v in set(candidates):  # line 8: R4 set feeds heappush
        heapq.heappush(heap, (-sims[v], v))
    return heap


def seed_heap(pairs):
    heap = []
    entries = [pair for pair in {(0, 1), (1, 2)}]  # line 15: R4 comprehension
    for entry in entries:
        heapq.heappush(heap, entry)
    return heap


def pick_best(scores):
    return max(scores.values(), key=abs)  # line 22: R4 keyed max over values()


def rank(found):
    return sorted({x for x in found}, key=str)  # line 26: R4 keyed sort of set
