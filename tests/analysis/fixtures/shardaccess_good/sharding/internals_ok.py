"""R16 fixture: inside a sharding/ directory the machinery owns itself."""

from repro.service.sharding.manager import ShardManager
from repro.service.sharding.manifest import ShardManifest


def rebalance(coordinator) -> None:
    source = coordinator.managers[0].store
    coordinator.shards[1].journal.append("rebalance", {"moves": []})
    assert isinstance(source, object)
    assert ShardManager is not None and ShardManifest is not None
