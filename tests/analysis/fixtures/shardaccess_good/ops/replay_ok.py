"""R16 fixture: the package facade and coordinator surface are legal."""

from repro.service.sharding import ShardCoordinator, ShardManager


def replay(root) -> str:
    with ShardCoordinator.recover(root, threaded=False) as coordinator:
        coordinator.run_pending_batch()
        path = ShardManager.journal_path(root, 0)
        summary = coordinator.state_summary()
        return f"{path}: {summary['sharding']['shards']} shards"


def inspect(store, managers) -> object:
    # A plain .store attribute (no fleet subscript) is someone else's
    # store; only subscripted fleet access is a shard reach-in.
    state = store.arrangement_state()
    sizes = [len(m) for m in managers]
    return state, sizes
