"""R14 fixture: raw writes in a service module -- every one flagged."""

import os
from pathlib import Path


def persist(path: Path, blob: bytes, text: str) -> None:
    with open(path, "w") as sink:
        sink.write(text)
    with path.open("wb") as sink:
        sink.write(blob)
    with open(path, mode="a") as sink:
        sink.write(text)
    with open(path, "r+") as sink:
        sink.write(text)
    os.replace(str(path) + ".tmp", path)
    os.rename(path, str(path) + ".bak")
    path.write_text(text)
    path.write_bytes(blob)
