"""R5 good fixture: None defaults, concrete exception types."""


def extend(history=None):
    history = [] if history is None else history
    history.append(1)
    return history


def merge(mapping=None, extras=None):
    return {**(mapping or {}), **(extras or {})}


def guarded(fn):
    try:
        return fn()
    except (ValueError, KeyError):
        return None
