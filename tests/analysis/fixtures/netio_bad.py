"""R8 fixture: every server-side network primitive below must be flagged."""

import socket  # line 3
import socket as sock  # line 4
import socketserver  # line 5
import http.server  # line 6
from http.server import ThreadingHTTPServer  # line 7
from http import server  # line 8
from socketserver import TCPServer  # line 9


def naked_listeners() -> None:
    socket.create_server(("", 0))  # line 13
    sock.socket()  # line 14
    socketserver.TCPServer(("", 0), None)  # line 15
    http.server.HTTPServer(("", 0), None)  # line 16
    server.ThreadingHTTPServer(("", 0), None)  # line 17
    del ThreadingHTTPServer, TCPServer
