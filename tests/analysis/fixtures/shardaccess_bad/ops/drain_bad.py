"""R16 fixture: cross-shard reach-ins and private submodule imports."""

from repro.service.sharding.manager import ShardManager
from repro.service.sharding.manifest import ShardManifest

import repro.service.sharding.manager


def drain(coordinator, managers, shards) -> None:
    coordinator.managers[0].store.retire_event(3)
    coordinator.shards[1].journal.append("freeze", {"event": 3})
    managers[0].engine.run_pending_batch()
    shards[2].service.freeze_event(7)
