"""R7 fixture: thread pools and innocent multiprocessing helpers pass."""

import multiprocessing
from concurrent.futures import ThreadPoolExecutor


def fine() -> int:
    with ThreadPoolExecutor(max_workers=2) as pool:
        pool.submit(print)
    return multiprocessing.cpu_count()
