"""R15 scope fixture: the same walk outside the kernel dirs is silent."""


def checksum(records):
    total = 0
    for i in range(len(records)):  # service/ is not kernel territory
        total += records[i].size
    return total
