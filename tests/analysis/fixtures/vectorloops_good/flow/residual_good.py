"""R15 good fixture: block kernels and counters that index nothing."""


def total_cost(cost, flow):
    return float((cost * flow).sum())


def sweep(relax_once, max_sweeps):
    for _ in range(max_sweeps):  # plain-int bound: not an array walk
        if not relax_once():
            break


def count_batches(arcs, batch):
    batches = 0
    for start in range(0, len(arcs), batch):  # len-bounded but the loop
        batches += 1  # variable never indexes anything: silent
    return batches
