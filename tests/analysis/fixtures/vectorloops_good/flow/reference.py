"""R15 exemption fixture: flow/reference.py is scalar on purpose."""


def total_cost(cost, flow):
    total = 0.0
    for i in range(len(cost)):  # exempt by module name
        total += cost[i] * flow[i]
    return total
