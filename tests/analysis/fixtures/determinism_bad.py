"""R1 bad fixture: every flavour of hidden-global-state randomness."""

import random

import numpy as np
from random import shuffle  # noqa: F401  (line 6: R1 import)
from numpy.random import rand  # noqa: F401  (line 7: R1 import)


def sample_users(n):
    pool = random.sample(range(n), 3)  # line 11: R1 stdlib call
    np.random.seed(42)  # line 12: R1 legacy global call
    noise = np.random.rand(n)  # line 13: R1 legacy global call
    rng = np.random.default_rng()  # line 14: R1 unseeded default_rng
    return pool, noise, rng
