"""R4 good fixture: tie-break inputs are index-ordered before use."""

import heapq


def build_heap(candidates, sims):
    heap = []
    for v in sorted(set(candidates)):  # ordered before feeding the heap
        heapq.heappush(heap, (-sims[v], v))
    return heap


def pick_best(scores):
    # Keyed tie-break over an index-ordered sequence is deterministic.
    return max(sorted(scores.items()), key=lambda kv: kv[1])


def rank(found):
    return sorted(found)  # no key: total order over distinct elements
