from .dup import GreedyA

__all__ = ["GreedyA"]
