"""A solver that silently falls out of the registry."""

from .base import Solver


class GhostSolver(Solver):  # line 6: R3 x3 (unregistered, unimported, unexported)
    def solve(self, instance):
        return None
