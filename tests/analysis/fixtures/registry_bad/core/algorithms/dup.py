"""Two solvers claiming the same registry name."""

from .base import Solver, register_solver


@register_solver("greedy")
class GreedyA(Solver):  # line 7: clean (registered, imported, exported)
    def solve(self, instance):
        return None


@register_solver("greedy")
class GreedyB(Solver):  # line 13: R3 duplicate name (+ unimported, unexported)
    def solve(self, instance):
        return None
