"""R5 bad fixture: mutable defaults and a bare except."""


def extend(history=[]):  # line 4: R5 mutable default
    history.append(1)
    return history


def merge(mapping={}, extras=dict()):  # line 9: R5 x2 (both defaults)
    return {**mapping, **extras}


def guarded(fn):
    try:
        return fn()
    except:  # line 16: R5 bare except
        return None
