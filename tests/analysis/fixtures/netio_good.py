"""R8 fixture: client-side HTTP and plain I/O stay silent."""

import json
import urllib.request


def consume_service(base: str) -> dict:
    # Clients are fine under R8 -- only *being* a server is corralled.
    with urllib.request.urlopen(base + "/state", timeout=5) as response:
        payload: dict = json.loads(response.read())
    return payload


def unrelated_attribute_chains() -> str:
    # Dotted calls that merely resemble module access must not trip the
    # alias tracking.
    text = " http.server "
    return text.strip().upper()
