"""R5: mutable defaults, bare excepts, and unannotated core API."""

from tests.analysis.conftest import FIXTURES, hits, lint


def test_bad_fixture_fires_on_defaults_and_bare_except() -> None:
    findings = lint(FIXTURES / "hygiene_bad.py", select=["R5"])
    assert hits(findings) == [
        ("R5", 4),   # history=[]
        ("R5", 9),   # mapping={}
        ("R5", 9),   # extras=dict()
        ("R5", 16),  # bare except
    ]


def test_annotation_check_applies_under_core_only() -> None:
    findings = lint(FIXTURES / "scoped_bad", select=["R5"])
    annotations = [d for d in findings if d.path.endswith("annotations_bad.py")]
    assert hits(annotations) == [
        ("R5", 4),  # similarity(): unannotated params
        ("R5", 4),  # similarity(): missing return annotation
        ("R5", 9),  # Accumulator.value(): missing return annotation
    ]
    # The same unannotated defs outside core/ are not flagged.
    assert lint(FIXTURES / "hygiene_good.py", select=["R5"]) == []


def test_annotation_message_lists_parameter_names() -> None:
    findings = lint(FIXTURES / "scoped_bad", select=["R5"])
    param_findings = [d for d in findings if "unannotated parameter" in d.message]
    assert any("event, user" in d.message for d in param_findings)


def test_good_fixtures_are_silent_under_all_rules() -> None:
    assert lint(FIXTURES / "hygiene_good.py") == []
    assert lint(FIXTURES / "scoped_good") == []
