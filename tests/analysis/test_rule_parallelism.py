"""R7: process pools outside repro.parallel are flagged; inside they pass."""

from tests.analysis.conftest import FIXTURES, hits, lint


def test_bad_fixture_fires_on_every_pool_primitive() -> None:
    findings = lint(FIXTURES / "parallelism_bad.py", select=["R7"])
    assert hits(findings) == [
        ("R7", 5),   # from multiprocessing import Pool
        ("R7", 6),   # from concurrent.futures import ProcessPoolExecutor
        ("R7", 11),  # multiprocessing.Pool(...)
        ("R7", 12),  # mp.Process(...)
        ("R7", 13),  # mp.pool.Pool(...)
        ("R7", 14),  # set_start_method("fork")
        ("R7", 15),  # get_context("fork")
        ("R7", 16),  # futures.ProcessPoolExecutor(...)
    ]


def test_messages_route_to_run_cell_groups() -> None:
    findings = lint(FIXTURES / "parallelism_bad.py", select=["R7"])
    assert findings
    assert all("repro.parallel" in d.message for d in findings)


def test_good_fixture_is_silent_under_r7() -> None:
    assert lint(FIXTURES / "parallelism_good.py", select=["R7"]) == []


def test_parallel_package_is_exempt() -> None:
    # The same primitives under a parallel/ package directory are the
    # sanctioned implementation, not a violation.
    findings = lint(FIXTURES / "scoped_good", select=["R7"])
    assert findings == []


def test_exemption_requires_the_directory_scope() -> None:
    # Linted as a bare file the parallel/ scope is gone and R7 fires.
    findings = lint(
        FIXTURES / "scoped_good" / "parallel" / "pool_ok.py", select=["R7"]
    )
    assert hits(findings) == [("R7", 7)]
