"""Tests for conflict-set generators."""

import numpy as np

from repro.datagen.conflictgen import random_conflicts, random_schedule_conflicts


def test_random_conflicts_ratio():
    graph = random_conflicts(10, 0.4, seed=0)
    assert len(graph) == round(0.4 * 45)


def test_random_conflicts_deterministic():
    assert random_conflicts(8, 0.5, seed=3).pairs == random_conflicts(8, 0.5, seed=3).pairs


def test_schedule_conflicts_consistency():
    rng = np.random.default_rng(0)
    graph, intervals, locations = random_schedule_conflicts(15, rng)
    assert graph.n_events == 15
    assert len(intervals) == 15
    assert len(locations) == 15
    # Every overlapping pair must conflict.
    for i in range(15):
        for j in range(i + 1, 15):
            s_i, e_i = intervals[i]
            s_j, e_j = intervals[j]
            if s_i < e_j and s_j < e_i:
                assert graph.are_conflicting(i, j)


def test_schedule_intervals_fit_in_day():
    rng = np.random.default_rng(1)
    _, intervals, _ = random_schedule_conflicts(30, rng, day_hours=10.0)
    for start, end in intervals:
        assert 0 <= start < end <= 10.0


def test_faster_travel_never_adds_conflicts():
    rng_a = np.random.default_rng(2)
    rng_b = np.random.default_rng(2)
    slow, _, _ = random_schedule_conflicts(12, rng_a, travel_speed=5.0)
    fast, _, _ = random_schedule_conflicts(12, rng_b, travel_speed=500.0)
    assert fast.pairs <= slow.pairs
