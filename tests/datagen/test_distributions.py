"""Tests for the Table III samplers."""

import numpy as np
import pytest

from repro.datagen.distributions import sample_attributes, sample_capacities


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestAttributes:
    @pytest.mark.parametrize("dist", ["uniform", "normal", "zipf"])
    def test_shape_and_range(self, rng, dist):
        t = 10_000.0
        attrs = sample_attributes(rng, 200, 20, dist, t)
        assert attrs.shape == (200, 20)
        assert np.all(attrs >= 0)
        assert np.all(attrs <= t)

    def test_uniform_spans_range(self, rng):
        attrs = sample_attributes(rng, 2000, 2, "uniform", 100.0)
        assert attrs.min() < 10
        assert attrs.max() > 90

    def test_normal_is_bimodal(self, rng):
        """The two modes (T/4 and 3T/4) should both be populated."""
        t = 1000.0
        attrs = sample_attributes(rng, 4000, 1, "normal", t)
        low = np.sum(attrs < t / 2)
        high = np.sum(attrs >= t / 2)
        assert low > 1000
        assert high > 1000

    def test_zipf_is_skewed_to_zero(self, rng):
        t = 1000.0
        attrs = sample_attributes(rng, 5000, 1, "zipf", t)
        assert np.median(attrs) < t / 4
        assert attrs.max() > t / 2  # long tail exists

    def test_unknown_distribution(self, rng):
        with pytest.raises(ValueError, match="unknown attribute"):
            sample_attributes(rng, 1, 1, "cauchy")


class TestCapacities:
    def test_uniform_bounds_inclusive(self, rng):
        caps = sample_capacities(rng, 5000, "uniform", low=1, high=4)
        assert caps.min() == 1
        assert caps.max() == 4
        assert caps.dtype == np.int64

    def test_uniform_invalid_bounds(self, rng):
        with pytest.raises(ValueError):
            sample_capacities(rng, 10, "uniform", low=0, high=4)
        with pytest.raises(ValueError):
            sample_capacities(rng, 10, "uniform", low=5, high=4)

    def test_normal_clipped_at_one(self, rng):
        caps = sample_capacities(rng, 5000, "normal", mu=2.0, sigma=1.0)
        assert caps.min() >= 1
        assert abs(caps.mean() - 2.0) < 0.5

    def test_normal_integer_valued(self, rng):
        caps = sample_capacities(rng, 100, "normal", mu=25.0, sigma=12.5)
        assert caps.dtype == np.int64

    def test_unknown_distribution(self, rng):
        with pytest.raises(ValueError, match="unknown capacity"):
            sample_capacities(rng, 10, "poisson")
