"""Tests for synthetic instance generation."""

import numpy as np
import pytest

from repro.datagen.synthetic import SyntheticConfig, generate_instance


def test_default_config_matches_table_iii():
    config = SyntheticConfig()
    assert config.n_events == 100
    assert config.n_users == 1000
    assert config.d == 20
    assert config.t == 10_000.0
    assert (config.cv_low, config.cv_high) == (1, 50)
    assert (config.cu_low, config.cu_high) == (1, 4)
    assert config.conflict_ratio == 0.25


def test_generated_instance_shape():
    config = SyntheticConfig(n_events=12, n_users=40, d=5, conflict_ratio=0.5)
    instance = generate_instance(config, seed=1)
    assert instance.n_events == 12
    assert instance.n_users == 40
    assert instance.event_attributes.shape == (12, 5)
    assert len(instance.conflicts) == round(0.5 * 12 * 11 / 2)
    assert instance.event_capacities.min() >= 1
    assert instance.user_capacities.max() <= 4


def test_deterministic_per_seed():
    config = SyntheticConfig(n_events=5, n_users=10)
    a = generate_instance(config, seed=9)
    b = generate_instance(config, seed=9)
    np.testing.assert_array_equal(a.event_attributes, b.event_attributes)
    np.testing.assert_array_equal(a.user_capacities, b.user_capacities)
    assert a.conflicts.pairs == b.conflicts.pairs


def test_different_seeds_differ():
    config = SyntheticConfig(n_events=5, n_users=10)
    a = generate_instance(config, seed=1)
    b = generate_instance(config, seed=2)
    assert not np.array_equal(a.event_attributes, b.event_attributes)


def test_with_override():
    config = SyntheticConfig().with_(n_events=7, conflict_ratio=1.0)
    assert config.n_events == 7
    assert config.conflict_ratio == 1.0
    assert config.n_users == 1000  # untouched fields preserved


def test_normal_capacity_distributions():
    config = SyntheticConfig(
        n_events=50,
        n_users=50,
        cv_distribution="normal",
        cu_distribution="normal",
    )
    instance = generate_instance(config, seed=0)
    assert instance.event_capacities.min() >= 1
    assert instance.user_capacities.min() >= 1


def test_zipf_attributes():
    config = SyntheticConfig(n_events=30, n_users=30, attr_distribution="zipf")
    instance = generate_instance(config, seed=0)
    assert np.all(instance.event_attributes >= 0)
    assert np.all(instance.event_attributes <= config.t)


def test_similarity_lazy_until_needed():
    instance = generate_instance(SyntheticConfig(n_events=5, n_users=5), seed=0)
    assert not instance.has_matrix
    sims = instance.sims
    assert sims.shape == (5, 5)
    assert np.all(sims >= 0) and np.all(sims <= 1)
