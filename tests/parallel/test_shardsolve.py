"""solve_shard_batch == solve_with_ladder, with and without shared memory."""

import pytest

from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.parallel import shardsolve
from repro.parallel.shardsolve import solve_shard_batch
from repro.robustness.harness import solve_with_ladder

CONFIG = SyntheticConfig(n_events=8, n_users=30, cv_high=4, cu_high=3)


def make_instance(seed: int = 0):
    return generate_instance(CONFIG, seed)


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_shared_memory_solve_is_bit_identical(seed: int) -> None:
    instance = make_instance(seed)
    serial = solve_with_ladder(instance, ("greedy",))
    shared = solve_shard_batch(instance, ("greedy",))
    assert shared.ok and serial.ok
    assert shared.solver == serial.solver
    assert shared.outcome == serial.outcome
    # Bit-identical arrangements, not merely equal objectives: the shm
    # round-trip must not perturb a single similarity float.
    assert shared.arrangement.pairs() == serial.arrangement.pairs()
    assert shared.arrangement.max_sum() == serial.arrangement.max_sum()


def test_full_default_ladder_agrees(seed: int = 5) -> None:
    instance = make_instance(seed)
    serial = solve_with_ladder(instance)
    shared = solve_shard_batch(instance, ("prune", "greedy", "random-u"))
    assert shared.arrangement.pairs() == serial.arrangement.pairs()


def test_fallback_path_when_archiving_is_unavailable(monkeypatch) -> None:
    # No /dev/shm (or a too-small payload) makes from_instance return
    # None; the batch solve must degrade to the plain in-process ladder.
    monkeypatch.setattr(
        shardsolve.SharedInstanceArchive,
        "from_instance",
        classmethod(lambda cls, instance, **kwargs: None),
    )
    instance = make_instance(seed=2)
    serial = solve_with_ladder(instance, ("greedy",))
    shared = solve_shard_batch(instance, ("greedy",))
    assert shared.arrangement.pairs() == serial.arrangement.pairs()


def test_no_segment_leaks_after_a_batch(tmp_path) -> None:
    # The create/attach/close/unlink lifecycle must complete inside one
    # call: destroying an already-destroyed archive is the only trace.
    instance = make_instance(seed=4)
    created: list[object] = []
    original = shardsolve.SharedInstanceArchive.from_instance

    def spy(instance, **kwargs):
        archive = original(instance, **kwargs)
        if archive is not None:
            created.append(archive)
        return archive

    import unittest.mock

    with unittest.mock.patch.object(
        shardsolve.SharedInstanceArchive, "from_instance", spy
    ):
        solve_shard_batch(instance, ("greedy",))
    for archive in created:
        with pytest.raises(Exception):
            archive.handle.attach()
