"""Shared-memory instance archives: bit-identical round-trips, clean teardown."""

import pickle

import numpy as np
import pytest

from repro.core.algorithms.base import get_solver
from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.parallel import SharedInstanceArchive

CONFIG = SyntheticConfig(n_events=8, n_users=30, cv_high=4, cu_high=3)


def make_instance(seed: int = 0):
    return generate_instance(CONFIG, seed)


def test_round_trip_is_bit_identical() -> None:
    instance = make_instance()
    expected_sims = instance.sims.copy()
    archive = SharedInstanceArchive.from_instance(instance, include_sims=True)
    assert archive is not None
    try:
        with archive.handle.attach() as other:
            assert other.n_events == instance.n_events
            assert other.n_users == instance.n_users
            np.testing.assert_array_equal(
                other.event_capacities, instance.event_capacities
            )
            np.testing.assert_array_equal(
                other.user_capacities, instance.user_capacities
            )
            assert other.conflicts.pairs == instance.conflicts.pairs
            assert other.has_matrix
            # Bit-identical, not merely close: parallel workers must
            # produce the same floats as the serial path.
            np.testing.assert_array_equal(other.sims, expected_sims)
    finally:
        archive.destroy()


def test_solvers_agree_across_the_boundary() -> None:
    instance = make_instance(seed=3)
    instance.sims
    archive = SharedInstanceArchive.from_instance(instance, include_sims=True)
    assert archive is not None
    try:
        with archive.handle.attach() as other:
            mine = get_solver("greedy").solve(instance)
            theirs = get_solver("greedy").solve(other)
            assert mine.max_sum() == theirs.max_sum()
            assert mine.pairs() == theirs.pairs()
    finally:
        archive.destroy()


def test_handle_pickles_small() -> None:
    instance = make_instance()
    archive = SharedInstanceArchive.from_instance(instance, include_sims=True)
    assert archive is not None
    try:
        payload = pickle.dumps(archive.handle)
        # The whole point: the handle crosses the process boundary, the
        # arrays do not. Anything beyond ~1 KiB means data leaked in.
        assert len(payload) < 1024
        handle = pickle.loads(payload)
        with handle.attach() as other:
            assert other.n_events == instance.n_events
    finally:
        archive.destroy()


def test_without_sims_the_view_stays_attribute_backed() -> None:
    instance = make_instance()
    archive = SharedInstanceArchive.from_instance(instance, include_sims=False)
    assert archive is not None
    try:
        with archive.handle.attach() as other:
            assert not other.has_matrix
            assert other.sim(0, 0) == instance.sim(0, 0)
    finally:
        archive.destroy()


def test_destroy_is_idempotent_and_attach_after_destroy_fails() -> None:
    archive = SharedInstanceArchive.from_instance(make_instance())
    assert archive is not None
    handle = archive.handle
    archive.destroy()
    archive.destroy()  # second destroy is a no-op, not an error
    with pytest.raises(Exception):
        handle.attach()


def test_lease_close_is_idempotent() -> None:
    archive = SharedInstanceArchive.from_instance(make_instance())
    assert archive is not None
    try:
        lease = archive.handle.attach()
        assert lease.instance is not None
        lease.close()
        assert lease.instance is None
        lease.close()  # no-op
    finally:
        archive.destroy()


def test_cols_layout_round_trip_is_bit_identical() -> None:
    # The Fortran-order packing changes strides only: rehydrated values
    # must equal the row-major origin bit-for-bit, and user columns come
    # back contiguous for column-heavy consumers.
    instance = make_instance(seed=5)
    expected = instance.sims.copy()
    archive = SharedInstanceArchive.from_instance(instance, sims_layout="cols")
    assert archive is not None
    try:
        with archive.handle.attach() as other:
            assert other.sims.flags.f_contiguous
            assert other.sims[:, 0].flags.c_contiguous
            assert not other.sims.flags.writeable
            np.testing.assert_array_equal(other.sims, expected)
    finally:
        archive.destroy()


def test_solvers_agree_across_the_cols_layout() -> None:
    instance = make_instance(seed=6)
    instance.sims
    expected = get_solver("greedy").solve(instance).pairs()
    archive = SharedInstanceArchive.from_instance(instance, sims_layout="cols")
    assert archive is not None
    try:
        with archive.handle.attach() as other:
            assert get_solver("greedy").solve(other).pairs() == expected
    finally:
        archive.destroy()


def test_unknown_sims_layout_is_rejected() -> None:
    with pytest.raises(ValueError, match="sims_layout"):
        SharedInstanceArchive.from_instance(make_instance(), sims_layout="diag")
