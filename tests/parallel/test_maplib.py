"""repro.parallel.maplib: ordering, fallbacks, and argument checking."""

from __future__ import annotations

import functools
import os

import pytest

from repro.parallel import parallel_map


def square(value: int) -> int:
    return value * value


def offset_square(value: int, offset: int = 0) -> int:
    return value * value + offset


def identify(value: int) -> tuple[int, int]:
    return value, os.getpid()


def test_serial_path_preserves_order() -> None:
    assert parallel_map(square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_parallel_results_match_serial_in_order() -> None:
    items = list(range(37))
    assert parallel_map(square, items, jobs=4) == [square(i) for i in items]


def test_partial_callables_cross_the_process_boundary() -> None:
    worker = functools.partial(offset_square, offset=100)
    assert parallel_map(worker, [1, 2, 3], jobs=2) == [101, 104, 109]


def test_work_actually_leaves_the_parent_process() -> None:
    results = parallel_map(identify, list(range(8)), jobs=2)
    assert [value for value, _pid in results] == list(range(8))
    assert any(pid != os.getpid() for _value, pid in results)


def test_jobs_zero_means_all_cores() -> None:
    assert parallel_map(square, [1, 2, 3, 4], jobs=0) == [1, 4, 9, 16]


def test_single_item_runs_in_process() -> None:
    results = parallel_map(identify, [7], jobs=8)
    assert results == [(7, os.getpid())]


def test_empty_input() -> None:
    assert parallel_map(square, [], jobs=4) == []


def test_negative_jobs_rejected() -> None:
    with pytest.raises(ValueError, match="jobs"):
        parallel_map(square, [1], jobs=-1)
