"""The parallel sweep path: determinism, resume, budgets, validation.

The factory lives at module level so it survives a pickle round-trip --
the executor only needs that on spawn-only platforms, but the tests
should not depend on ``fork`` being available.
"""

import json
from pathlib import Path

import pytest

from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.experiments.runner import canonical_checkpoint_lines, sweep_parameter
from repro.parallel import run_cell_groups
from repro.robustness.budget import Budget

GRID = [4, 6]
REPEATS = 2
SOLVERS = ("greedy", "random-u")


def factory(x, seed):
    config = SyntheticConfig(n_events=x, n_users=15, cv_high=4, cu_high=3)
    return generate_instance(config, seed)


def run_sweep(path=None, resume=False, **kwargs):
    return sweep_parameter(
        "parallel-test", "|V|", GRID, factory, solvers=SOLVERS,
        repeats=REPEATS, memory=False, checkpoint_path=path, resume=resume,
        **kwargs,
    )


def cell_keys(path: Path) -> list[tuple]:
    lines = path.read_text(encoding="utf-8").splitlines()[1:]
    return [
        (d["x"], d["seed"], d["solver"])
        for d in (json.loads(line) for line in lines)
    ]


def test_jobs4_matches_serial_byte_for_byte(tmp_path: Path) -> None:
    serial_path = tmp_path / "serial.jsonl"
    parallel_path = tmp_path / "parallel.jsonl"
    serial = run_sweep(serial_path)
    parallel = run_sweep(parallel_path, jobs=4)
    assert canonical_checkpoint_lines(serial_path) == canonical_checkpoint_lines(
        parallel_path
    )
    for mine, theirs in zip(serial.records, parallel.records):
        assert (mine.x, mine.solver) == (theirs.x, theirs.solver)
        assert mine.max_sum == theirs.max_sum
        assert mine.n_pairs == theirs.n_pairs


def test_kill_and_resume_under_jobs4(tmp_path: Path) -> None:
    full_path = tmp_path / "full.jsonl"
    run_sweep(full_path)
    # Simulate a kill mid-run: keep the header and the first two cells.
    survived = full_path.read_text(encoding="utf-8").splitlines()[:3]
    partial_path = tmp_path / "partial.jsonl"
    partial_path.write_text("\n".join(survived) + "\n", encoding="utf-8")

    resumed = run_sweep(partial_path, resume=True, jobs=4)
    keys = cell_keys(partial_path)
    assert len(keys) == len(set(keys)), "resume re-ran an already-finished cell"
    assert len(keys) == len(GRID) * REPEATS * len(SOLVERS)
    assert canonical_checkpoint_lines(partial_path) == canonical_checkpoint_lines(
        full_path
    )
    assert not resumed.failures


def test_exhausted_budget_cancels_and_resume_completes(tmp_path: Path) -> None:
    path = tmp_path / "budgeted.jsonl"
    budget = Budget(deadline=0.0)
    budget.start()
    run_sweep(path, jobs=4, budget=budget)
    assert budget.exhausted
    partial_keys = cell_keys(path)
    assert len(partial_keys) < len(GRID) * REPEATS * len(SOLVERS)

    resumed = run_sweep(path, resume=True, jobs=4)
    keys = cell_keys(path)
    assert len(keys) == len(set(keys))
    assert len(keys) == len(GRID) * REPEATS * len(SOLVERS)
    assert not resumed.failures


def test_jobs_zero_means_all_cores(tmp_path: Path) -> None:
    sweep = run_sweep(tmp_path / "all-cores.jsonl", jobs=0)
    assert len(sweep.records) == len(GRID) * len(SOLVERS)


def test_negative_jobs_is_rejected() -> None:
    with pytest.raises(ValueError, match="jobs"):
        run_cell_groups(factory, [], jobs=-1)
