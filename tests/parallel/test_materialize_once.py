"""The similarity matrix is materialised once per shared instance.

Re-materialising the ``(|V|, |U|)`` matrix per (seed, solver) cell was
the sweep's single largest redundant cost; these tests pin the fix by
counting calls to :func:`repro.core.similarity.similarity_matrix`
through the :mod:`repro.core.model` import site. ``Instance.sims``
caches, so with one eager materialisation per instance every later
``sims`` / ``sim_row`` / ``sim_col`` access must be a cache hit -- any
extra call is a regression.
"""

import pytest

import repro.core.model as model
from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.experiments.runner import sweep_parameter
from repro.robustness.harness import solve_with_ladder

SOLVERS = ("greedy", "random-u")


def factory(x, seed):
    config = SyntheticConfig(n_events=x, n_users=15, cv_high=4, cu_high=3)
    return generate_instance(config, seed)


@pytest.fixture
def count_materialisations(monkeypatch):
    calls = []
    real = model.similarity_matrix

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(model, "similarity_matrix", counting)
    return calls


def test_sweep_group_materialises_once(count_materialisations) -> None:
    sweep = sweep_parameter(
        "materialise-once", "|V|", [5], factory, solvers=SOLVERS,
        repeats=1, memory=False,
    )
    assert len(sweep.records) == len(SOLVERS)
    assert not sweep.failures
    # One (grid point, seed) group, two solvers, one materialisation.
    assert len(count_materialisations) == 1


def test_ladder_rungs_share_one_matrix(count_materialisations) -> None:
    instance = factory(5, 0)
    result = solve_with_ladder(instance, ladder=["greedy", "random-u"])
    assert result.ok
    assert len(count_materialisations) == 1
