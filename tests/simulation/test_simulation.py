"""Tests for the dynamic-EBSN simulator and its policies."""

import numpy as np
import pytest

from repro.core.algorithms import GreedyGEACC
from repro.core.model import Instance
from repro.core.validation import validate_arrangement
from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.exceptions import ReproError
from repro.simulation import (
    GreedyArrivalPolicy,
    RebatchPolicy,
    Simulator,
    Timeline,
    random_timeline,
)


def tiny_instance():
    sims = np.array([[0.9, 0.6], [0.8, 0.7]])
    return Instance.from_matrix(sims, np.array([1, 1]), np.array([1, 1]))


def make_timeline(post, start, arrive):
    return Timeline(
        post_times=np.asarray(post, dtype=float),
        start_times=np.asarray(start, dtype=float),
        arrival_times=np.asarray(arrive, dtype=float),
    )


class TestTimeline:
    def test_validation(self):
        with pytest.raises(ReproError, match="after it is posted"):
            make_timeline([0.0], [0.0], [0.0])
        with pytest.raises(ReproError, match="align"):
            Timeline(np.zeros(2), np.ones(3), np.zeros(1))

    def test_horizon(self):
        timeline = make_timeline([0, 1], [5, 3], [7, 2])
        assert timeline.horizon == 7

    def test_validate_against_instance(self):
        timeline = make_timeline([0], [1], [0, 0])
        with pytest.raises(ReproError, match="events"):
            timeline.validate_against(tiny_instance())

    def test_random_timeline_shapes(self):
        instance = tiny_instance()
        timeline = random_timeline(instance, np.random.default_rng(0))
        timeline.validate_against(instance)
        assert np.all(timeline.start_times > timeline.post_times)

    def test_random_timeline_bad_horizon(self):
        with pytest.raises(ReproError):
            random_timeline(tiny_instance(), np.random.default_rng(0), horizon=1.0)


class TestLifecycle:
    def test_user_misses_already_frozen_event(self):
        instance = tiny_instance()
        # Event 0 starts at t=5; user 1 arrives at t=6 and can only get
        # event 1. User 0 arrives early and takes event 0 (0.9).
        timeline = make_timeline([0, 0], [5, 20], [1, 6])
        result = Simulator(instance, timeline).run(GreedyArrivalPolicy())
        assert (0, 0) in result.arrangement
        assert (0, 1) not in result.arrangement
        assert (1, 1) in result.arrangement
        assert result.achieved_max_sum == pytest.approx(0.9 + 0.7)

    def test_event_posted_after_user_arrival_is_offered(self):
        instance = tiny_instance()
        # Both users arrive before event 1 is posted.
        timeline = make_timeline([0, 10], [30, 31], [1, 2])
        result = Simulator(instance, timeline).run(GreedyArrivalPolicy())
        # At t=10 event 1 is offered to the unserved best user.
        assert len(result.arrangement) == 2

    def test_cannot_assign_unposted_or_frozen(self):
        instance = tiny_instance()
        from repro.simulation.simulator import SimulationState

        state = SimulationState(instance)
        state._arrive_user(0)
        with pytest.raises(ReproError):
            state.assign(0, 0)  # not posted yet
        state._post_event(0)
        state._freeze_event(0)
        with pytest.raises(ReproError):
            state.assign(0, 0)  # frozen

    def test_unassign_frozen_rejected(self):
        instance = tiny_instance()
        from repro.simulation.simulator import SimulationState

        state = SimulationState(instance)
        state._post_event(0)
        state._arrive_user(0)
        state.assign(0, 0)
        state._freeze_event(0)
        with pytest.raises(ReproError, match="frozen"):
            state.unassign(0, 0)

    def test_non_policy_rejected(self):
        instance = tiny_instance()
        timeline = make_timeline([0, 0], [1, 1], [0, 0])
        with pytest.raises(ReproError, match="Policy"):
            Simulator(instance, timeline).run(object())


class TestPolicies:
    @pytest.fixture
    def workload(self):
        config = SyntheticConfig(
            n_events=12, n_users=60, cv_high=6, cu_high=3, conflict_ratio=0.3
        )
        instance = generate_instance(config, seed=5)
        timeline = random_timeline(instance, np.random.default_rng(5))
        return instance, timeline

    def test_results_are_feasible(self, workload):
        instance, timeline = workload
        for policy in (GreedyArrivalPolicy(), RebatchPolicy()):
            result = Simulator(instance, timeline).run(policy)
            validate_arrangement(result.arrangement)
            assert result.events_frozen == instance.n_events
            assert result.achieved_max_sum > 0

    def test_rebatch_at_least_as_good_as_greedy_arrival(self, workload):
        instance, timeline = workload
        fcfs = Simulator(instance, timeline).run(GreedyArrivalPolicy())
        rebatch = Simulator(instance, timeline).run(RebatchPolicy())
        assert rebatch.achieved_max_sum >= fcfs.achieved_max_sum * 0.95

    def test_neither_beats_clairvoyant_offline(self, workload):
        instance, timeline = workload
        offline = GreedyGEACC().solve(instance).max_sum()
        # Clairvoyant offline ignores the timeline entirely; with
        # arrivals spread over the horizon the online policies lose
        # seats at early-starting events, so offline dominates both
        # approximately (offline greedy itself is approximate, hence
        # the small tolerance).
        for policy in (GreedyArrivalPolicy(), RebatchPolicy()):
            result = Simulator(instance, timeline).run(policy)
            assert result.achieved_max_sum <= offline * 1.05

    def test_rebatch_counts_rebatches(self, workload):
        instance, timeline = workload
        policy = RebatchPolicy()
        Simulator(instance, timeline).run(policy)
        assert policy.rebatches == instance.n_events

    def test_summary_text(self, workload):
        instance, timeline = workload
        result = Simulator(instance, timeline).run(GreedyArrivalPolicy())
        assert "greedy-arrival" in result.summary()
        assert "MaxSum" in result.summary()

    def test_deterministic(self, workload):
        instance, timeline = workload
        a = Simulator(instance, timeline).run(RebatchPolicy())
        b = Simulator(instance, timeline).run(RebatchPolicy())
        assert a.arrangement.pairs() == b.arrangement.pairs()
