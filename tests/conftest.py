"""Shared fixtures: the Table I toy instance and small random instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.core.toy import toy_instance
from repro.datagen.synthetic import SyntheticConfig, generate_instance


@pytest.fixture
def toy() -> Instance:
    """The paper's Table I instance (3 events, 5 users, one conflict)."""
    return toy_instance()


@pytest.fixture
def small_instance() -> Instance:
    """A small synthetic instance with conflicts, fixed seed."""
    config = SyntheticConfig(
        n_events=8, n_users=30, cv_high=6, cu_high=3, conflict_ratio=0.3
    )
    return generate_instance(config, seed=123)


@pytest.fixture
def medium_instance() -> Instance:
    """A medium synthetic instance (Table III shape at 1/10 scale)."""
    config = SyntheticConfig(
        n_events=20, n_users=120, cv_high=10, cu_high=4, conflict_ratio=0.25
    )
    return generate_instance(config, seed=7)


def random_matrix_instance(
    rng: np.random.Generator,
    n_events: int,
    n_users: int,
    max_cv: int = 4,
    max_cu: int = 3,
    conflict_ratio: float = 0.3,
    zero_fraction: float = 0.1,
) -> Instance:
    """Helper for property tests: explicit-matrix instance.

    A ``zero_fraction`` of similarities is forced to exactly 0 so the
    ``sim > 0`` constraint paths get exercised.
    """
    sims = rng.random((n_events, n_users))
    zeros = rng.random((n_events, n_users)) < zero_fraction
    sims[zeros] = 0.0
    event_capacities = rng.integers(1, max_cv + 1, size=n_events)
    user_capacities = rng.integers(1, max_cu + 1, size=n_users)
    conflicts = ConflictGraph.random(n_events, conflict_ratio, rng)
    return Instance.from_matrix(sims, event_capacities, user_capacities, conflicts)
