"""End-to-end integration tests across the whole pipeline.

Generate -> solve with every registered solver -> validate -> analyse ->
persist -> reload, on synthetic and (simulated) real workloads.
"""

import numpy as np
import pytest

from repro import (
    SOLVERS,
    GreedyGEACC,
    MeetupCityConfig,
    SyntheticConfig,
    analyze,
    generate_instance,
    get_solver,
    meetup_city,
    validate_arrangement,
)
from repro.core.bounds import nn_capacity_bound, relaxation_bound
from repro.io import (
    load_arrangement_json,
    load_instance_npz,
    save_arrangement_json,
    save_instance_npz,
)

FAST_SOLVERS = sorted(set(SOLVERS) - {"prune", "exhaustive", "mincostflow"})


@pytest.fixture(scope="module")
def workload():
    config = SyntheticConfig(
        n_events=15, n_users=80, cv_high=8, cu_high=3, conflict_ratio=0.3
    )
    return generate_instance(config, seed=42)


def test_every_registered_solver_end_to_end(workload):
    results = {}
    for name in FAST_SOLVERS:
        arrangement = get_solver(name).solve(workload)
        validate_arrangement(arrangement)
        results[name] = arrangement.max_sum()
    arrangement = get_solver("mincostflow").solve(workload)
    validate_arrangement(arrangement)
    results["mincostflow"] = arrangement.max_sum()
    # Sanity ordering: greedy >= mincostflow >= random baselines here.
    assert results["greedy"] >= results["mincostflow"]
    assert results["mincostflow"] > results["random-v"]
    # Upper bounds sandwich everything.
    relax = relaxation_bound(workload)
    nn = nn_capacity_bound(workload)
    for name, value in results.items():
        assert value <= relax + 1e-9, name
        assert value <= nn + 1e-9, name


def test_pipeline_with_persistence(workload, tmp_path):
    arrangement = GreedyGEACC().solve(workload)
    stats = analyze(arrangement)
    save_instance_npz(workload, tmp_path / "w.npz")
    save_arrangement_json(arrangement, tmp_path / "a.json")
    instance = load_instance_npz(tmp_path / "w.npz")
    loaded = load_arrangement_json(tmp_path / "a.json", instance)
    validate_arrangement(loaded, instance)
    assert analyze(loaded).max_sum == pytest.approx(stats.max_sum)


def test_meetup_city_pipeline():
    instance = meetup_city(MeetupCityConfig(city="auckland"), seed=3)
    arrangement = GreedyGEACC().solve(instance)
    validate_arrangement(arrangement)
    stats = analyze(arrangement)
    assert stats.users_matched > instance.n_users * 0.5
    assert stats.max_sum > 0


def test_metric_variants_end_to_end():
    rng = np.random.default_rng(0)
    from repro.core.model import Instance

    for metric in ("euclidean", "cosine", "dot"):
        instance = Instance.from_attributes(
            rng.uniform(0, 1, (8, 4)),
            rng.uniform(0, 1, (30, 4)),
            rng.integers(1, 5, 8),
            rng.integers(1, 3, 30),
            t=1.0,
            metric=metric,
        )
        arrangement = GreedyGEACC().solve(instance)
        validate_arrangement(arrangement)
        assert arrangement.max_sum() > 0
