"""Tests for instance/arrangement persistence."""

import numpy as np
import pytest

from repro.core.algorithms import GreedyGEACC
from repro.exceptions import ReproError
from repro.io import (
    load_arrangement_json,
    load_instance_json,
    load_instance_npz,
    save_arrangement_json,
    save_instance_json,
    save_instance_npz,
)


def assert_instances_equal(a, b):
    assert a.n_events == b.n_events
    assert a.n_users == b.n_users
    np.testing.assert_array_equal(a.event_capacities, b.event_capacities)
    np.testing.assert_array_equal(a.user_capacities, b.user_capacities)
    assert a.conflicts.pairs == b.conflicts.pairs
    np.testing.assert_allclose(a.sims, b.sims, atol=1e-12)


class TestInstanceJson:
    def test_roundtrip_matrix_instance(self, toy, tmp_path):
        path = tmp_path / "toy.json"
        save_instance_json(toy, path)
        loaded = load_instance_json(path)
        assert_instances_equal(toy, loaded)

    def test_roundtrip_attribute_instance(self, small_instance, tmp_path):
        path = tmp_path / "inst.json"
        save_instance_json(small_instance, path)
        loaded = load_instance_json(path)
        assert_instances_equal(small_instance, loaded)
        assert loaded.event_attributes is not None
        assert loaded.t == small_instance.t

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_instance_json(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_instance_json(path)

    def test_wrong_version(self, tmp_path, toy):
        import json

        path = tmp_path / "v99.json"
        save_instance_json(toy, path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="version"):
            load_instance_json(path)


class TestInstanceNpz:
    def test_roundtrip_matrix_instance(self, toy, tmp_path):
        path = tmp_path / "toy.npz"
        save_instance_npz(toy, path)
        assert_instances_equal(toy, load_instance_npz(path))

    def test_roundtrip_attribute_instance(self, small_instance, tmp_path):
        path = tmp_path / "inst.npz"
        save_instance_npz(small_instance, path)
        loaded = load_instance_npz(path)
        assert_instances_equal(small_instance, loaded)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_instance_npz(tmp_path / "nope.npz")


class TestArrangementJson:
    def test_roundtrip(self, small_instance, tmp_path):
        arrangement = GreedyGEACC().solve(small_instance)
        path = tmp_path / "arr.json"
        save_arrangement_json(arrangement, path)
        loaded = load_arrangement_json(path, small_instance)
        assert loaded.pairs() == arrangement.pairs()
        assert loaded.max_sum() == pytest.approx(arrangement.max_sum())

    def test_wrong_instance_detected(self, small_instance, medium_instance, tmp_path):
        arrangement = GreedyGEACC().solve(small_instance)
        path = tmp_path / "arr.json"
        save_arrangement_json(arrangement, path)
        with pytest.raises((ReproError, IndexError)):
            load_arrangement_json(path, medium_instance)

    def test_check_disabled(self, small_instance, tmp_path):
        import json

        arrangement = GreedyGEACC().solve(small_instance)
        path = tmp_path / "arr.json"
        save_arrangement_json(arrangement, path)
        payload = json.loads(path.read_text())
        payload["max_sum"] = 123.0
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="MaxSum"):
            load_arrangement_json(path, small_instance)
        loaded = load_arrangement_json(path, small_instance, check=False)
        assert loaded.pairs() == arrangement.pairs()
