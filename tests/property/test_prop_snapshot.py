"""Property: snapshot + tail recovery is indistinguishable from replay.

For an *arbitrary* command sequence and *arbitrary* snapshot points,
recovering through the ladder (newest snapshot + journal tail) must
produce exactly the state a full journal replay produces -- same
canonical digest, same seq. The snapshot is an optimisation, never an
alternative history.

Reuses the service-driven command scripts of
:mod:`tests.property.test_prop_journal` so the journals carry every
record shape the serving layer can emit (events, conflicts, committed
micro-batch deltas, freezes, cancellations).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.journal import iter_records, replay
from repro.service.snapshot import recover_state, write_snapshot
from repro.service.store import ArrangementStore
from tests.property.test_prop_journal import command_scripts, drive


@settings(max_examples=25, deadline=None)
@given(
    script=command_scripts(),
    snapshot_fractions=st.lists(
        st.floats(0.0, 1.0), min_size=1, max_size=3, unique=True
    ),
)
def test_snapshot_plus_tail_equals_full_replay(
    script, snapshot_fractions, tmp_path_factory
) -> None:
    ops, seed = script
    base = tmp_path_factory.mktemp("snap")
    journal_path = base / "journal.jsonl"
    snapshot_dir = base / "snapshots"
    live = drive(journal_path, ops, seed)

    # Re-fold the journal, dropping snapshots at the drawn seqs (the
    # journal itself stays untrimmed so full replay remains possible).
    snap_seqs = sorted({int(f * live.seq) for f in snapshot_fractions})
    store: ArrangementStore | None = None
    for item, _ in iter_records(journal_path):
        if store is None:
            store = ArrangementStore(item.config)
            if 0 in snap_seqs:
                write_snapshot(store, snapshot_dir)
            continue
        store.apply(item)  # geacc-lint: disable=R9 reason=re-folding records already durable in this journal
        if store.seq in snap_seqs:
            write_snapshot(store, snapshot_dir)

    full, full_durable = replay(journal_path)
    recovered, durable, report = recover_state(journal_path, snapshot_dir)
    assert durable == full_durable
    assert recovered == full
    assert recovered.digest() == full.digest() == live.digest()
    assert recovered.seq == live.seq
    recovered.check_invariants()
    assert report.rung == "snapshot+tail"
    assert report.snapshot_seq == max(snap_seqs)
    assert report.records_replayed == live.seq - max(snap_seqs)
