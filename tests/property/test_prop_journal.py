"""Property-based crash-recovery tests for the service journal.

Two invariants the serving layer stands on:

* **crash safety** -- truncate a journal at *any* byte past the header
  (the kill -9 window: a partial final ``write``) and ``replay`` must
  reconstruct exactly the state of the durable record prefix, never
  raising and never inventing or losing an accepted command;
* **batch-boundary independence** -- however a command stream is sliced
  into micro-batches, each run's journal replays to that run's exact
  live state (solver outputs travel as ``commit_batch`` deltas, so
  replay never re-solves and cannot drift from what the service
  acknowledged).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.frontend import ArrangementService
from repro.service.journal import replay
from repro.service.store import ArrangementStore, StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)

OPS = ("post", "register", "request", "freeze", "cancel")


@st.composite
def command_scripts(draw, min_ops: int = 3, max_ops: int = 14):
    """A random op sequence plus the seed that fleshes out its payloads."""
    ops = draw(
        st.lists(st.sampled_from(OPS), min_size=min_ops, max_size=max_ops)
    )
    seed = draw(st.integers(0, 2**16))
    return ops, seed


def drive(
    journal_path: Path,
    ops: list[str],
    seed: int,
    batch_after: list[bool] | None = None,
) -> ArrangementStore:
    """Run ``ops`` through a synchronous service; returns its live store.

    ``batch_after[i]`` forces a micro-batch right after op ``i`` --
    the knob the batch-boundary-independence property turns. The final
    batch always runs (``close`` drains stragglers).
    """
    rng = np.random.default_rng(seed)
    service = ArrangementService.create(journal_path, CONFIG, threaded=False)
    with service:
        store = service.store
        for index, op in enumerate(ops):
            if op == "post":
                known = store.n_events
                conflicts = [
                    e for e in range(known) if rng.random() < 0.3
                ]
                service.post_event(
                    capacity=int(rng.integers(0, 4)),
                    attributes=[float(x) for x in rng.uniform(0, 10, 2)],
                    conflicts=conflicts,
                )
            elif op == "register":
                service.register_user(
                    capacity=int(rng.integers(1, 3)),
                    attributes=[float(x) for x in rng.uniform(0, 10, 2)],
                )
            elif op == "request" and store.n_users:
                user = int(rng.integers(0, store.n_users))
                service.request_assignment(user, wait=False)
            elif op == "freeze" and store.open_events():
                candidates = store.open_events()
                service.freeze_event(
                    candidates[int(rng.integers(0, len(candidates)))]
                )
            elif op == "cancel" and store.open_events():
                candidates = store.open_events()
                service.cancel_event(
                    candidates[int(rng.integers(0, len(candidates)))]
                )
            if batch_after is not None and batch_after[index]:
                service.run_pending_batch()
        service.check_invariants()
    return service.store


@settings(max_examples=25, deadline=None)
@given(script=command_scripts(), cut_fraction=st.floats(0.0, 1.0))
def test_replay_after_arbitrary_truncation_matches_durable_prefix(
    script, cut_fraction, tmp_path_factory
) -> None:
    """Kill -9 at any byte: replay == the state of the records that fit."""
    ops, seed = script
    base = tmp_path_factory.mktemp("crash")
    live = drive(base / "full.jsonl", ops, seed)
    blob = (base / "full.jsonl").read_bytes()
    header_end = blob.index(b"\n") + 1

    cut = header_end + int(cut_fraction * (len(blob) - header_end))
    torn = base / "torn.jsonl"
    torn.write_bytes(blob[:cut])
    recovered, durable = replay(torn)

    # Reference: exactly the records whose final newline survived.
    durable_prefix = blob[: blob.rindex(b"\n", 0, cut) + 1] if cut else b""
    assert cut >= header_end  # the header itself is always durable
    reference = base / "reference.jsonl"
    reference.write_bytes(durable_prefix)
    expected, expected_durable = replay(reference)

    assert durable == len(durable_prefix)
    assert expected_durable == len(durable_prefix)
    assert recovered == expected
    assert recovered.digest() == expected.digest()
    recovered.check_invariants()
    # And the untruncated journal still reproduces the live state.
    full_replay, _ = replay(base / "full.jsonl")
    assert full_replay.digest() == live.digest()


@settings(max_examples=25, deadline=None)
@given(
    script=command_scripts(),
    boundaries=st.lists(st.booleans(), min_size=14, max_size=14),
)
def test_replay_is_independent_of_batch_boundaries(
    script, boundaries, tmp_path_factory
) -> None:
    """Any batching of the same commands: each journal replays to its
    own acknowledged state, byte-identical digest included."""
    ops, seed = script
    base = tmp_path_factory.mktemp("batches")
    for label, batch_after in (
        ("eager", [True] * len(ops)),          # a batch after every op
        ("lazy", [False] * len(ops)),          # one final batch only
        ("drawn", boundaries[: len(ops)]),     # arbitrary boundaries
    ):
        path = base / f"{label}.jsonl"
        live = drive(path, ops, seed, batch_after=batch_after)
        recovered, _ = replay(path)
        assert recovered == live
        assert recovered.digest() == live.digest()
        recovered.check_invariants()
