"""Property-based round-trip tests for persistence."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.algorithms import GreedyGEACC
from repro.io import (
    load_arrangement_json,
    load_instance_json,
    load_instance_npz,
    save_arrangement_json,
    save_instance_json,
    save_instance_npz,
)
from tests.property.strategies import attribute_instances, tiny_instances


@settings(max_examples=20, deadline=None)
@given(instance=tiny_instances())
def test_json_roundtrip_matrix_instances(instance, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "instance.json"
    save_instance_json(instance, path)
    loaded = load_instance_json(path)
    np.testing.assert_allclose(loaded.sims, instance.sims, atol=1e-12)
    np.testing.assert_array_equal(
        loaded.event_capacities, instance.event_capacities
    )
    np.testing.assert_array_equal(loaded.user_capacities, instance.user_capacities)
    assert loaded.conflicts.pairs == instance.conflicts.pairs


@settings(max_examples=15, deadline=None)
@given(instance=attribute_instances())
def test_npz_roundtrip_attribute_instances(instance, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "instance.npz"
    save_instance_npz(instance, path)
    loaded = load_instance_npz(path)
    np.testing.assert_allclose(
        loaded.event_attributes, instance.event_attributes
    )
    np.testing.assert_allclose(loaded.sims, instance.sims, atol=1e-12)
    assert loaded.t == instance.t


@settings(max_examples=15, deadline=None)
@given(instance=tiny_instances())
def test_solver_output_survives_roundtrip(instance, tmp_path_factory):
    """Solve, persist, reload: identical pairs and MaxSum."""
    base = tmp_path_factory.mktemp("io")
    arrangement = GreedyGEACC().solve(instance)
    save_instance_json(instance, base / "instance.json")
    save_arrangement_json(arrangement, base / "arrangement.json")
    loaded_instance = load_instance_json(base / "instance.json")
    loaded = load_arrangement_json(base / "arrangement.json", loaded_instance)
    assert loaded.pairs() == arrangement.pairs()
    assert loaded.max_sum() == pytest.approx(arrangement.max_sum())
