"""Vectorised kernels vs scalar references: bit-identical, ties included.

The block kernels (similarity tiles, the dense min-cost-flow kernel,
chunked top-k candidate generation) all promise *exact* equality with
their scalar specifications -- not allclose, equality. IEEE arithmetic
makes that a real invariant: each kernel is written to fold in the same
association as its scalar counterpart, and these properties are the
contract's teeth. Cost/similarity grids are deliberately quantised so
ties occur constantly; tie handling is where vectorisation usually
diverges first.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms.neighbors import _chunked_descending
from repro.core.similarity import (
    SimilarityRowCache,
    similarity_matrix,
    similarity_tiles,
    top_k_descending,
)
from repro.flow.dense_bipartite import DenseBipartiteMinCostFlow
from repro.flow.reference import ReferenceBipartiteMinCostFlow

_METRICS = st.sampled_from(["euclidean", "cosine"])


@st.composite
def attribute_sets(draw, max_events: int = 8, max_users: int = 10):
    seed = draw(st.integers(0, 2**16))
    n_events = draw(st.integers(1, max_events))
    n_users = draw(st.integers(1, max_users))
    d = draw(st.integers(1, 4))
    rng = np.random.default_rng(seed)
    return rng.random((n_events, d)), rng.random((n_users, d))


@settings(max_examples=40, deadline=None)
@given(attribute_sets(), _METRICS, st.data())
def test_tiles_equal_full_matrix_blocks(attrs, metric, data):
    event_attrs, user_attrs = attrs
    nv, nu = event_attrs.shape[0], user_attrs.shape[0]
    full = similarity_matrix(event_attrs, user_attrs, 3.0, metric)
    lo_v = data.draw(st.integers(0, nv - 1), label="lo_v")
    hi_v = data.draw(st.integers(lo_v + 1, nv), label="hi_v")
    lo_u = data.draw(st.integers(0, nu - 1), label="lo_u")
    hi_u = data.draw(st.integers(lo_u + 1, nu), label="hi_u")
    tile = similarity_tiles(
        event_attrs, user_attrs, 3.0,
        slice(lo_v, hi_v), slice(lo_u, hi_u), metric,
    )
    assert np.array_equal(tile, full[lo_v:hi_v, lo_u:hi_u])


@settings(max_examples=40, deadline=None)
@given(attribute_sets(), _METRICS, st.data())
def test_row_cache_suffix_extension_is_bit_identical(attrs, metric, data):
    # Serve a row over a user prefix, append the rest, serve again: the
    # extended row (prefix kept + suffix tile) must equal a from-scratch
    # full row exactly.
    event_attrs, user_attrs = attrs
    nu = user_attrs.shape[0]
    prefix = data.draw(st.integers(1, nu), label="prefix")
    cache = SimilarityRowCache(3.0, metric)
    cache.row(0, event_attrs[0], user_attrs[:prefix])
    extended = cache.row(0, event_attrs[0], user_attrs)
    full = similarity_matrix(event_attrs[:1], user_attrs, 3.0, metric)[0]
    assert np.array_equal(extended, full)
    assert not extended.flags.writeable


@st.composite
def tied_values(draw, max_size: int = 30):
    # A coarse grid: most draws collide, so every selection boundary is
    # a tie-break decision.
    grid = draw(
        st.lists(st.integers(0, 4), min_size=1, max_size=max_size)
    )
    return np.array(grid, dtype=np.float64) * 0.25


@settings(max_examples=60, deadline=None)
@given(tied_values(), st.data())
def test_top_k_prefix_matches_stable_argsort(values, data):
    expected = np.argsort(-values, kind="stable")
    k = data.draw(st.integers(0, values.shape[0] + 2), label="k")
    got = top_k_descending(values, k)
    assert np.array_equal(got, expected[: max(0, min(k, values.shape[0]))])


@settings(max_examples=60, deadline=None)
@given(tied_values())
def test_chunked_stream_is_exactly_stable_argsort_order(values):
    stream = list(_chunked_descending(values))
    expected = [
        (int(i), float(values[i]))
        for i in np.argsort(-values, kind="stable")
    ]
    assert stream == expected


@st.composite
def flow_workloads(draw, max_events: int = 5, max_users: int = 7):
    seed = draw(st.integers(0, 2**16))
    n_events = draw(st.integers(1, max_events))
    n_users = draw(st.integers(1, max_users))
    rng = np.random.default_rng(seed)
    costs = rng.random((n_events, n_users))
    # Quantise about half the grid to one decimal: cost ties, equal
    # reduced costs, and boundary-equal path costs all become routine.
    quantise = rng.random((n_events, n_users)) < 0.5
    costs[quantise] = np.round(costs[quantise], 1)
    cv = rng.integers(0, 4, n_events)
    cu = rng.integers(0, 3, n_users)
    return costs, cv, cu


@settings(max_examples=30, deadline=None)
@given(flow_workloads(), st.sampled_from(["max", "stop", "unit"]))
def test_dense_kernel_matches_scalar_reference_bitwise(workload, mode):
    """Flows, costs, and potentials agree exactly in every driving mode.

    ``max`` runs to exhaustion, ``stop`` stops at the marginal-cost
    threshold Algorithm 1 uses (1 - eps), ``unit`` augments one unit at
    a time comparing every per-unit path cost -- the exact shapes
    :class:`~repro.core.algorithms.mincostflow.MinCostFlowGEACC` drives
    the kernel through.
    """
    costs, cv, cu = workload
    dense = DenseBipartiteMinCostFlow(costs, cv, cu)
    reference = ReferenceBipartiteMinCostFlow(costs, cv, cu)
    if mode == "max":
        dense.run()
        reference.run()
    elif mode == "stop":
        dense.run(stop_cost=1.0 - 1e-12)
        reference.run(stop_cost=1.0 - 1e-12)
    else:
        while True:
            got = dense.augment()
            want = reference.augment()
            assert got == want  # None == None ends both together
            if got is None:
                break
    assert dense.total_flow == reference.total_flow
    assert dense.total_cost == reference.total_cost
    assert np.array_equal(dense.flow, reference.flow)
    assert np.array_equal(np.asarray(dense._pot_v), np.asarray(reference._pot_v))
    assert np.array_equal(np.asarray(dense._pot_u), np.asarray(reference._pot_u))
    assert dense._pot_t == reference._pot_t
    assert dense.exhausted == reference.exhausted
