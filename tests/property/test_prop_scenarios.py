"""Property-based structural tests for the scenario generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import GreedyGEACC
from repro.core.validation import validate_arrangement
from repro.datasets.scenarios import (
    conference,
    course_allocation,
    festival,
    volunteer_shifts,
)


@settings(max_examples=15, deadline=None)
@given(
    n_slots=st.integers(1, 4),
    per_slot=st.integers(1, 3),
    attendees=st.integers(1, 40),
    seed=st.integers(0, 100),
)
def test_conference_structure(n_slots, per_slot, attendees, seed):
    scenario = conference(n_slots, per_slot, attendees, seed=seed)
    instance = scenario.instance
    assert instance.n_events == n_slots * per_slot
    # Conflict count: complete graph within each slot.
    expected = n_slots * per_slot * (per_slot - 1) // 2
    assert len(instance.conflicts) == expected
    arrangement = GreedyGEACC().solve(instance)
    validate_arrangement(arrangement)
    # One session per slot per attendee.
    for user in range(instance.n_users):
        slots = [event // per_slot for event in arrangement.events_of(user)]
        assert len(slots) == len(set(slots))


@settings(max_examples=15, deadline=None)
@given(
    stages=st.integers(1, 4),
    timeslots=st.integers(1, 4),
    fans=st.integers(1, 30),
    seed=st.integers(0, 100),
)
def test_festival_structure(stages, timeslots, fans, seed):
    scenario = festival(stages, timeslots, fans, seed=seed)
    instance = scenario.instance
    assert instance.n_events == stages * timeslots
    conflicts = instance.conflicts
    for a in range(instance.n_events):
        for b in range(a + 1, instance.n_events):
            same_slot = a // stages == b // stages
            adjacent_far = (
                abs(a // stages - b // stages) == 1
                and abs(a % stages - b % stages) > 1
            )
            assert conflicts.are_conflicting(a, b) == (same_slot or adjacent_far)
    validate_arrangement(GreedyGEACC().solve(instance))


@settings(max_examples=10, deadline=None)
@given(
    courses=st.integers(2, 12),
    students=st.integers(1, 30),
    seed=st.integers(0, 100),
)
def test_course_allocation_structure(courses, students, seed):
    scenario = course_allocation(courses, students, seed=seed)
    meetings = scenario.metadata["meetings"]
    conflicts = scenario.instance.conflicts
    for a in range(courses):
        for b in range(a + 1, courses):
            assert conflicts.are_conflicting(a, b) == bool(
                meetings[a] & meetings[b]
            )
    validate_arrangement(GreedyGEACC().solve(scenario.instance))


@settings(max_examples=10, deadline=None)
@given(
    shifts=st.integers(1, 15),
    volunteers=st.integers(1, 30),
    seed=st.integers(0, 100),
)
def test_volunteer_shifts_structure(shifts, volunteers, seed):
    scenario = volunteer_shifts(shifts, volunteers, seed=seed)
    intervals = scenario.metadata["intervals"]
    conflicts = scenario.instance.conflicts
    for a in range(shifts):
        for b in range(a + 1, shifts):
            s_a, e_a = intervals[a]
            s_b, e_b = intervals[b]
            assert conflicts.are_conflicting(a, b) == (s_a < e_b and s_b < e_a)
    arrangement = GreedyGEACC().solve(scenario.instance)
    validate_arrangement(arrangement)
    # No volunteer works two overlapping shifts.
    for volunteer in range(volunteers):
        worked = sorted(arrangement.events_of(volunteer))
        for i, a in enumerate(worked):
            for b in worked[i + 1 :]:
                s_a, e_a = intervals[a]
                s_b, e_b = intervals[b]
                assert not (s_a < e_b and s_b < e_a)
