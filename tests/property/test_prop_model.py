"""Property-based tests of the Arrangement bookkeeping invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Arrangement
from repro.core.validation import is_feasible
from tests.property.strategies import tiny_instances


@settings(max_examples=40, deadline=None)
@given(tiny_instances(), st.lists(st.integers(0, 10_000), max_size=40))
def test_random_add_remove_keeps_books_consistent(instance, moves):
    """Apply a random feasible add/remove trace; bookkeeping must agree
    with a naive recomputation at every step."""
    arrangement = Arrangement(instance)
    shadow: set[tuple[int, int]] = set()
    for move in moves:
        v = move % instance.n_events
        u = (move // instance.n_events) % instance.n_users
        if (v, u) in shadow:
            arrangement.remove(v, u)
            shadow.discard((v, u))
        elif arrangement.can_add(v, u) and instance.sim(v, u) > 0:
            arrangement.add(v, u)
            shadow.add((v, u))
        # Invariants after every step:
        assert set(arrangement.pairs()) == shadow
        assert len(arrangement) == len(shadow)
        for event in range(instance.n_events):
            used = sum(1 for (e, _) in shadow if e == event)
            assert arrangement.event_remaining(event) == (
                instance.event_capacities[event] - used
            )
        for user in range(instance.n_users):
            used = sum(1 for (_, w) in shadow if w == user)
            assert arrangement.user_remaining(user) == (
                instance.user_capacities[user] - used
            )
    expected_sum = sum(instance.sim(v, u) for v, u in shadow)
    assert abs(arrangement.max_sum() - expected_sum) < 1e-9
    assert is_feasible(arrangement)


@settings(max_examples=30, deadline=None)
@given(tiny_instances())
def test_copy_preserves_and_isolates(instance):
    arrangement = Arrangement(instance)
    for v in range(instance.n_events):
        for u in range(instance.n_users):
            if instance.sim(v, u) > 0 and arrangement.can_add(v, u):
                arrangement.add(v, u)
                break
    clone = arrangement.copy()
    assert clone.pairs() == arrangement.pairs()
    assert abs(clone.max_sum() - arrangement.max_sum()) < 1e-12
    for v, u in list(clone.pairs()):
        clone.remove(v, u)
    assert len(clone) == 0
    assert len(arrangement) == len(arrangement.pairs())


@settings(max_examples=30, deadline=None)
@given(tiny_instances())
def test_can_add_iff_add_stays_feasible(instance):
    """can_add must exactly predict feasibility of the mutated state."""
    arrangement = Arrangement(instance)
    # Fill greedily by index order to create a non-trivial state.
    for v in range(instance.n_events):
        for u in range(instance.n_users):
            if instance.sim(v, u) > 0 and arrangement.can_add(v, u):
                arrangement.add(v, u)
    for v in range(instance.n_events):
        for u in range(instance.n_users):
            if instance.sim(v, u) <= 0 or (v, u) in arrangement:
                continue
            predicted = arrangement.can_add(v, u)
            arrangement.add(v, u)
            actually_feasible = is_feasible(arrangement)
            arrangement.remove(v, u)
            assert predicted == actually_feasible
