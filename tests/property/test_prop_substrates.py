"""Property-based tests of the substrates (indexes, flow, conflicts)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflicts import ConflictGraph
from repro.flow.dense_bipartite import DenseBipartiteMinCostFlow
from repro.flow.maxflow import max_flow
from repro.flow.network import FlowNetwork
from repro.flow.sspa import SuccessiveShortestPaths
from repro.index import INDEX_CLASSES, make_index
from tests.property.strategies import point_sets


@settings(max_examples=25, deadline=None)
@given(point_sets())
def test_every_index_streams_exact_ascending_order(data):
    """All four index kinds agree with brute force on every point set."""
    points, query = data
    expected = np.sort(np.linalg.norm(points - query, axis=1))
    for kind in INDEX_CLASSES:
        stream = list(make_index(kind, points).stream(query))
        assert len(stream) == len(points)
        got = np.array([d for _, d in stream])
        assert np.all(np.diff(got) >= -1e-9), f"{kind} not ascending"
        np.testing.assert_allclose(got, expected, atol=1e-9, err_msg=kind)
        # Indices must be a permutation and distances genuine.
        assert sorted(i for i, _ in stream) == list(range(len(points)))
        for idx, dist in stream:
            assert abs(dist - np.linalg.norm(points[idx] - query)) < 1e-9


@settings(max_examples=25, deadline=None)
@given(
    st.integers(1, 4),
    st.integers(1, 6),
    st.integers(0, 2**16),
)
def test_dense_flow_matches_generic_sspa(n_events, n_users, seed):
    rng = np.random.default_rng(seed)
    costs = np.round(rng.random((n_events, n_users)), 3)
    cv = rng.integers(1, 4, n_events)
    cu = rng.integers(1, 3, n_users)

    dense = DenseBipartiteMinCostFlow(costs, cv, cu)
    dense.run()

    network = FlowNetwork()
    source = network.add_node()
    events = network.add_nodes(n_events)
    users = network.add_nodes(n_users)
    sink = network.add_node()
    for v in range(n_events):
        network.add_arc(source, events[v], int(cv[v]))
        for u in range(n_users):
            network.add_arc(events[v], users[u], 1, float(costs[v, u]))
    for u in range(n_users):
        network.add_arc(users[u], sink, int(cu[u]))
    generic = SuccessiveShortestPaths(network, source, sink)
    generic_flow, generic_cost = generic.run()

    assert dense.total_flow == generic_flow
    assert abs(dense.total_cost - generic_cost) < 1e-7


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**16))
def test_sspa_total_cost_matches_network_accounting(seed):
    """The solver's running cost equals the network's summed arc costs."""
    rng = np.random.default_rng(seed)
    network = FlowNetwork()
    n = 6
    network.add_nodes(n)
    for _ in range(14):
        tail, head = (int(x) for x in rng.integers(0, n, size=2))
        if tail != head:
            network.add_arc(tail, head, int(rng.integers(1, 4)),
                            float(rng.integers(0, 8)))
    solver = SuccessiveShortestPaths(network, 0, n - 1)
    flow, cost = solver.run()
    assert abs(cost - network.total_cost()) < 1e-9
    # Flow conservation at internal nodes.
    for node in range(1, n - 1):
        balance = 0
        for i, arc in enumerate(network.arcs):
            if i % 2 != 0 or arc.flow <= 0:
                continue
            tail = network.arcs[i ^ 1].head
            if tail == node:
                balance -= arc.flow
            if arc.head == node:
                balance += arc.flow
        assert balance == 0


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**16))
def test_dinic_value_equals_sspa_max_flow(seed):
    rng = np.random.default_rng(seed)
    arcs = []
    n = 7
    for _ in range(16):
        tail, head = (int(x) for x in rng.integers(0, n, size=2))
        if tail != head:
            arcs.append((tail, head, int(rng.integers(1, 5))))

    dinic_net = FlowNetwork()
    dinic_net.add_nodes(n)
    sspa_net = FlowNetwork()
    sspa_net.add_nodes(n)
    for tail, head, cap in arcs:
        dinic_net.add_arc(tail, head, cap)
        sspa_net.add_arc(tail, head, cap, 0.0)
    dinic_value = max_flow(dinic_net, 0, n - 1)
    sspa_value, _ = SuccessiveShortestPaths(sspa_net, 0, n - 1).run()
    assert dinic_value == sspa_value


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 10)),
        min_size=1,
        max_size=10,
    )
)
def test_interval_conflicts_match_brute_force(raw):
    intervals = [(float(s), float(s + d)) for s, d in raw]
    graph = ConflictGraph.from_intervals(intervals)
    n = len(intervals)
    for i in range(n):
        for j in range(i + 1, n):
            s_i, e_i = intervals[i]
            s_j, e_j = intervals[j]
            overlap = s_i < e_j and s_j < e_i
            assert graph.are_conflicting(i, j) == overlap
