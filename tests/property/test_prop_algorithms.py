"""Property-based tests of the paper's theorems on random tiny instances.

Each property is a theorem or lemma from the paper:

* every solver returns a feasible arrangement (Definition 5);
* Prune-GEACC == exhaustive search (exactness of pruning, Lemma 6);
* Greedy >= OPT / (1 + max c_u) (Theorem 3);
* MinCostFlow >= OPT / max c_u (Theorem 2);
* MinCostFlow is exact when CF is empty (Lemma 1);
* Greedy leaves no addable pair (Lemma 5).
"""

from hypothesis import given, settings

from repro.core.algorithms import (
    ExhaustiveGEACC,
    GreedyGEACC,
    LocalSearchGEACC,
    MinCostFlowGEACC,
    PruneGEACC,
    RandomU,
    RandomV,
)
from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.core.validation import validate_arrangement
from tests.property.strategies import tiny_instances

SOLVER_FACTORIES = [
    GreedyGEACC,
    MinCostFlowGEACC,
    PruneGEACC,
    lambda: RandomV(seed=0),
    lambda: RandomU(seed=0),
    lambda: LocalSearchGEACC(base=RandomV(seed=0)),
]


@settings(max_examples=40, deadline=None)
@given(tiny_instances())
def test_all_solvers_feasible(instance):
    for factory in SOLVER_FACTORIES:
        arrangement = factory().solve(instance)
        validate_arrangement(arrangement)


@settings(max_examples=30, deadline=None)
@given(tiny_instances())
def test_prune_equals_exhaustive(instance):
    pruned = PruneGEACC().solve(instance).max_sum()
    exhaustive = ExhaustiveGEACC().solve(instance).max_sum()
    assert abs(pruned - exhaustive) < 1e-9


@settings(max_examples=40, deadline=None)
@given(tiny_instances())
def test_theorem3_greedy_ratio(instance):
    optimum = PruneGEACC().solve(instance).max_sum()
    greedy = GreedyGEACC().solve(instance).max_sum()
    alpha = instance.max_user_capacity
    assert greedy >= optimum / (1 + alpha) - 1e-9


@settings(max_examples=40, deadline=None)
@given(tiny_instances())
def test_theorem2_mincostflow_ratio(instance):
    optimum = PruneGEACC().solve(instance).max_sum()
    mcf = MinCostFlowGEACC().solve(instance).max_sum()
    alpha = instance.max_user_capacity
    assert mcf >= optimum / alpha - 1e-9


@settings(max_examples=30, deadline=None)
@given(tiny_instances())
def test_lemma1_mincostflow_exact_without_conflicts(instance):
    relaxed = Instance.from_matrix(
        instance.sims,
        instance.event_capacities,
        instance.user_capacities,
        ConflictGraph.empty(instance.n_events),
    )
    mcf = MinCostFlowGEACC().solve(relaxed).max_sum()
    optimum = PruneGEACC().solve(relaxed).max_sum()
    assert abs(mcf - optimum) < 1e-9


@settings(max_examples=40, deadline=None)
@given(tiny_instances())
def test_lemma5_greedy_maximal(instance):
    arrangement = GreedyGEACC().solve(instance)
    for v in range(instance.n_events):
        for u in range(instance.n_users):
            if instance.sim(v, u) > 0 and (v, u) not in arrangement:
                assert not arrangement.can_add(v, u)


@settings(max_examples=30, deadline=None)
@given(tiny_instances())
def test_optimum_dominates_every_solver(instance):
    optimum = PruneGEACC().solve(instance).max_sum()
    for factory in SOLVER_FACTORIES:
        assert factory().solve(instance).max_sum() <= optimum + 1e-9


@settings(max_examples=30, deadline=None)
@given(tiny_instances())
def test_local_search_monotone_improvement(instance):
    base = RandomV(seed=1)
    baseline = base.solve(instance).max_sum()
    improved = LocalSearchGEACC(base=base).solve(instance).max_sum()
    assert improved >= baseline - 1e-12


@settings(max_examples=25, deadline=None)
@given(tiny_instances())
def test_mincostflow_engines_find_equally_good_relaxations(instance):
    """Both engines solve the relaxation optimally (Lemma 1), so their
    relaxed MaxSums agree even when the matchings themselves differ."""
    dense_pairs = MinCostFlowGEACC(engine="dense").solve_relaxation(instance)
    generic_pairs = MinCostFlowGEACC(engine="generic").solve_relaxation(instance)
    dense_sum = sum(instance.sim(v, u) for v, u in dense_pairs)
    generic_sum = sum(instance.sim(v, u) for v, u in generic_pairs)
    assert abs(dense_sum - generic_sum) < 1e-9
