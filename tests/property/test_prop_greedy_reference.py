"""Greedy-GEACC vs a naive reference implementation.

Algorithm 2's lemmas establish that the heap-of-frontiers machinery pops
candidate pairs in globally non-increasing similarity order and adds each
one exactly when it is feasible at pop time. Because feasibility only
ever *decreases* (capacities shrink, conflict sets grow), that is
behaviourally identical to the obvious quadratic spec: sort all |V| x |U|
pairs by (-sim, event, user) and add each feasible pair in order.

This property pins the sophisticated implementation to the simple spec --
pair for pair, not just in MaxSum -- on arbitrary instances, including
similarity ties and zero similarities.
"""

import numpy as np
from hypothesis import given, settings

from repro.core.algorithms import GreedyGEACC
from repro.core.model import Arrangement, Instance
from tests.property.strategies import attribute_instances, tiny_instances


def naive_global_greedy(instance: Instance) -> Arrangement:
    """The quadratic reference: all pairs, globally sorted, one pass."""
    arrangement = Arrangement(instance)
    sims = instance.sims
    pairs = [
        (v, u)
        for v in range(instance.n_events)
        for u in range(instance.n_users)
        if sims[v, u] > 0
    ]
    pairs.sort(key=lambda pair: (-sims[pair[0], pair[1]], pair[0], pair[1]))
    for v, u in pairs:
        if arrangement.can_add(v, u):
            arrangement.add(v, u)
    return arrangement


@settings(max_examples=50, deadline=None)
@given(instance=tiny_instances())
def test_greedy_equals_reference_on_matrix_instances(instance):
    fast = GreedyGEACC().solve(instance)
    reference = naive_global_greedy(instance)
    assert fast.pairs() == reference.pairs()


@settings(max_examples=25, deadline=None)
@given(instance=attribute_instances())
def test_greedy_equals_reference_on_attribute_instances(instance):
    fast = GreedyGEACC().solve(instance)
    reference = naive_global_greedy(instance)
    assert fast.pairs() == reference.pairs()


@settings(max_examples=15, deadline=None)
@given(instance=attribute_instances())
def test_index_backed_greedy_matches_reference_value(instance):
    """Index streams may order exact ties differently, so pin MaxSum
    (tie permutations yield equal-value matchings) rather than pairs."""
    reference = naive_global_greedy(instance).max_sum()
    for kind in ("chunked", "kdtree"):
        fresh = Instance.from_attributes(
            instance.event_attributes,
            instance.user_attributes,
            instance.event_capacities,
            instance.user_capacities,
            instance.conflicts,
            t=instance.t,
        )
        result = GreedyGEACC(index_kind=kind).solve(fresh).max_sum()
        assert abs(result - reference) < 1e-9


def test_reference_matches_on_dense_ties():
    """All-equal similarities: pure tie-break territory."""
    sims = np.full((4, 5), 0.5)
    instance = Instance.from_matrix(
        sims, np.full(4, 2), np.full(5, 2)
    )
    fast = GreedyGEACC().solve(instance)
    reference = naive_global_greedy(instance)
    assert fast.pairs() == reference.pairs()