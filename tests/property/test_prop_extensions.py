"""Property-based tests for the extension modules.

Covers the MILP oracle, fairness-aware greedy, the online arranger, the
matching substrate, and the dynamic simulator -- each against a paper
invariant or an exact reference.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import (
    GreedyGEACC,
    ILPGEACC,
    OnlineGreedyGEACC,
    PruneGEACC,
)
from repro.core.algorithms.fair_greedy import FairGreedyGEACC
from repro.core.analysis import analyze
from repro.core.validation import validate_arrangement
from repro.matching import max_weight_matching
from repro.simulation import (
    GreedyArrivalPolicy,
    RebatchPolicy,
    Simulator,
    Timeline,
)
from tests.property.strategies import tiny_instances


@settings(max_examples=25, deadline=None)
@given(instance=tiny_instances())
def test_ilp_matches_prune(instance):
    ilp = ILPGEACC().solve(instance)
    validate_arrangement(ilp)
    prune = PruneGEACC().solve(instance).max_sum()
    assert abs(ilp.max_sum() - prune) < 1e-6


@settings(max_examples=25, deadline=None)
@given(instance=tiny_instances(), fairness=st.sampled_from([0.0, 0.5, 2.0, 10.0]))
def test_fair_greedy_feasible_and_bounded(instance, fairness):
    arrangement = FairGreedyGEACC(fairness=fairness).solve(instance)
    validate_arrangement(arrangement)
    optimum = PruneGEACC().solve(instance).max_sum()
    assert arrangement.max_sum() <= optimum + 1e-9


@settings(max_examples=20, deadline=None)
@given(instance=tiny_instances(), seed=st.integers(0, 1000))
def test_online_any_arrival_order_feasible(instance, seed):
    order = np.random.default_rng(seed).permutation(instance.n_users)
    arrangement = OnlineGreedyGEACC(arrival_order=order).solve(instance)
    validate_arrangement(arrangement)
    optimum = PruneGEACC().solve(instance).max_sum()
    assert arrangement.max_sum() <= optimum + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 5), st.integers(1, 6), st.integers(0, 2**16))
def test_matching_agrees_with_unit_capacity_geacc(n_left, n_right, seed):
    """Conflict-free unit-capacity GEACC == max-weight bipartite matching."""
    from repro.core.model import Instance

    rng = np.random.default_rng(seed)
    sims = np.round(rng.random((n_left, n_right)), 3)
    sims[rng.random(sims.shape) < 0.2] = 0.0
    instance = Instance.from_matrix(
        sims, np.ones(n_left, dtype=int), np.ones(n_right, dtype=int)
    )
    _, matching_total = max_weight_matching(sims)
    geacc_total = PruneGEACC().solve(instance).max_sum()
    assert abs(matching_total - geacc_total) < 1e-9


@settings(max_examples=20, deadline=None)
@given(instance=tiny_instances(), seed=st.integers(0, 2**16))
def test_simulation_policies_feasible_and_bounded(instance, seed):
    """Any timeline: results validate and never beat the clairvoyant optimum."""
    rng = np.random.default_rng(seed)
    timeline = Timeline(
        post_times=rng.uniform(0, 50, instance.n_events),
        start_times=rng.uniform(51, 100, instance.n_events),
        arrival_times=rng.uniform(0, 100, instance.n_users),
    )
    simulator = Simulator(instance, timeline)
    optimum = PruneGEACC().solve(instance).max_sum()
    for policy in (GreedyArrivalPolicy(), RebatchPolicy()):
        result = simulator.run(policy)
        validate_arrangement(result.arrangement)
        assert result.achieved_max_sum <= optimum + 1e-9


@settings(max_examples=20, deadline=None)
@given(instance=tiny_instances())
def test_everyone_arrives_before_everything_starts_matches_static(instance):
    """If all users arrive before any event starts, the rebatch policy's
    final arrangement equals a static greedy solve of the full instance
    in MaxSum (the last rebatch sees the complete problem).

    A caveat makes this an inequality: events that froze before the last
    rebatch lock their seats. With all posts at t=0 and all starts late,
    only the final freeze order matters; each rebatch before freeze k
    re-optimises everything still open, so the achieved value can exceed
    or fall below one-shot greedy only through those lock-ins. We assert
    the result stays within the greedy-vs-optimal sandwich.
    """
    n_events = instance.n_events
    timeline = Timeline(
        post_times=np.zeros(n_events),
        start_times=np.full(n_events, 100.0),
        arrival_times=np.full(instance.n_users, 1.0),
    )
    result = Simulator(instance, timeline).run(RebatchPolicy())
    validate_arrangement(result.arrangement)
    greedy = GreedyGEACC().solve(instance).max_sum()
    optimum = PruneGEACC().solve(instance).max_sum()
    assert result.achieved_max_sum <= optimum + 1e-9
    # The first freeze's rebatch sees the full static problem, so the
    # achieved value is at least the greedy value minus later lock-in
    # effects; empirically it equals greedy, asserted loosely here.
    assert result.achieved_max_sum >= greedy * 0.9 - 1e-9


@settings(max_examples=20, deadline=None)
@given(instance=tiny_instances())
def test_analysis_invariants(instance):
    arrangement = GreedyGEACC().solve(instance)
    stats = analyze(arrangement)
    assert stats.n_pairs == len(arrangement)
    assert abs(stats.max_sum - arrangement.max_sum()) < 1e-9
    assert 0.0 <= stats.satisfaction_gini <= 1.0
    assert stats.users_matched + stats.users_unmatched == instance.n_users
    assert 0.0 <= stats.event_fill_mean <= 1.0
