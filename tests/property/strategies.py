"""Hypothesis strategies for GEACC instances and substrates."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance


@st.composite
def tiny_instances(
    draw,
    max_events: int = 4,
    max_users: int = 6,
    max_cv: int = 3,
    max_cu: int = 3,
):
    """Small explicit-matrix instances where exact search is feasible.

    Similarities are drawn on a coarse grid (multiples of 0.05, with an
    explicit chance of exact 0) so the ``sim > 0`` constraint and tie
    handling both get exercised.
    """
    n_events = draw(st.integers(1, max_events))
    n_users = draw(st.integers(1, max_users))
    cells = n_events * n_users
    values = draw(
        st.lists(
            st.one_of(st.just(0), st.integers(1, 20)),
            min_size=cells,
            max_size=cells,
        )
    )
    sims = np.array(values, dtype=float).reshape(n_events, n_users) * 0.05
    cv = np.array(
        draw(st.lists(st.integers(1, max_cv), min_size=n_events, max_size=n_events))
    )
    cu = np.array(
        draw(st.lists(st.integers(1, max_cu), min_size=n_users, max_size=n_users))
    )
    all_pairs = [
        (i, j) for i in range(n_events) for j in range(i + 1, n_events)
    ]
    chosen = draw(
        st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs))
        if all_pairs
        else st.just([])
    )
    conflicts = ConflictGraph(n_events, chosen)
    return Instance.from_matrix(sims, cv, cu, conflicts)


@st.composite
def attribute_instances(draw, max_events: int = 5, max_users: int = 8, d: int = 3):
    """Attribute-backed instances (Eq. 1 similarity), small."""
    n_events = draw(st.integers(1, max_events))
    n_users = draw(st.integers(1, max_users))
    seed = draw(st.integers(0, 2**16))
    ratio = draw(st.sampled_from([0.0, 0.25, 0.5, 1.0]))
    rng = np.random.default_rng(seed)
    conflicts = ConflictGraph.random(n_events, ratio, rng)
    return Instance.from_attributes(
        rng.uniform(0, 10, (n_events, d)),
        rng.uniform(0, 10, (n_users, d)),
        rng.integers(1, 4, n_events),
        rng.integers(1, 3, n_users),
        conflicts,
        t=10.0,
    )


@st.composite
def point_sets(draw, max_points: int = 40, max_dim: int = 4):
    """Random point arrays for index tests, duplicates encouraged."""
    n = draw(st.integers(1, max_points))
    d = draw(st.integers(1, max_dim))
    seed = draw(st.integers(0, 2**16))
    duplicate_rate = draw(st.sampled_from([0.0, 0.5]))
    rng = np.random.default_rng(seed)
    points = rng.uniform(-5, 5, (n, d))
    if duplicate_rate and n > 1:
        dup_mask = rng.random(n) < duplicate_rate
        points[dup_mask] = points[0]
    query = rng.uniform(-5, 5, d)
    return points, query
