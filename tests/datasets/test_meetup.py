"""Tests for the simulated Meetup city datasets (Table II)."""

import numpy as np
import pytest

from repro.datasets.meetup import (
    CITIES,
    MERGED_TAGS,
    MeetupCityConfig,
    meetup_city,
)


def test_twenty_merged_tags():
    assert len(MERGED_TAGS) == 20
    assert len(set(MERGED_TAGS)) == 20


def test_table_ii_cardinalities():
    assert CITIES["vancouver"] == (225, 2012)
    assert CITIES["auckland"] == (37, 569)
    assert CITIES["singapore"] == (87, 1500)


@pytest.mark.parametrize("city", sorted(CITIES))
def test_city_instance_shape(city):
    instance = meetup_city(MeetupCityConfig(city=city), seed=0)
    n_events, n_users = CITIES[city]
    assert instance.n_events == n_events
    assert instance.n_users == n_users
    assert instance.event_attributes.shape == (n_events, 20)
    assert instance.t == 1.0


def test_attributes_are_normalised_tag_counts():
    instance = meetup_city(MeetupCityConfig(city="auckland"), seed=1)
    for attrs in (instance.event_attributes, instance.user_attributes):
        assert np.all(attrs >= 0)
        sums = attrs.sum(axis=1)
        # Every entity's attribute values are tag counts / total tags = 1.
        np.testing.assert_allclose(sums, 1.0, atol=1e-12)


def test_attribute_profiles_are_sparse_and_skewed():
    instance = meetup_city(MeetupCityConfig(city="singapore"), seed=2)
    nonzero_per_user = (instance.user_attributes > 0).sum(axis=1)
    assert nonzero_per_user.mean() < 12  # handful of tags each
    tag_mass = instance.user_attributes.sum(axis=0)
    assert tag_mass[0] > tag_mass[-1]  # popular tags dominate


def test_capacity_distributions():
    uniform = meetup_city(
        MeetupCityConfig(city="auckland", capacity_distribution="uniform"), 0
    )
    assert uniform.event_capacities.max() <= 50
    assert uniform.user_capacities.max() <= 4
    normal = meetup_city(
        MeetupCityConfig(city="auckland", capacity_distribution="normal"), 0
    )
    assert normal.event_capacities.min() >= 1
    assert normal.user_capacities.min() >= 1


def test_conflict_ratio():
    instance = meetup_city(
        MeetupCityConfig(city="auckland", conflict_ratio=0.5), seed=0
    )
    n = instance.n_events
    assert len(instance.conflicts) == round(0.5 * n * (n - 1) / 2)


def test_unknown_city():
    with pytest.raises(ValueError, match="unknown city"):
        meetup_city(MeetupCityConfig(city="atlantis"))


def test_unknown_capacity_distribution():
    with pytest.raises(ValueError, match="capacity distribution"):
        meetup_city(MeetupCityConfig(city="auckland", capacity_distribution="zipf"))


def test_deterministic_per_seed():
    a = meetup_city(MeetupCityConfig(city="auckland"), seed=5)
    b = meetup_city(MeetupCityConfig(city="auckland"), seed=5)
    np.testing.assert_array_equal(a.user_attributes, b.user_attributes)


def test_solvable_end_to_end():
    from repro.core.algorithms import GreedyGEACC
    from repro.core.validation import validate_arrangement

    instance = meetup_city(MeetupCityConfig(city="auckland"), seed=0)
    arrangement = GreedyGEACC().solve(instance)
    validate_arrangement(arrangement)
    assert arrangement.max_sum() > 0
