"""Tests for the structured scenario workloads."""

import numpy as np
import pytest

from repro.core.algorithms import GreedyGEACC, MinCostFlowGEACC, RandomV
from repro.core.validation import validate_arrangement
from repro.datasets.scenarios import (
    SCENARIOS,
    build_scenario,
    conference,
    course_allocation,
    festival,
    volunteer_shifts,
)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenarios_build_and_solve(name):
    scenario = build_scenario(name, seed=1)
    assert scenario.name == name
    arrangement = GreedyGEACC().solve(scenario.instance)
    validate_arrangement(arrangement)
    assert arrangement.max_sum() > 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenarios_deterministic(name):
    a = build_scenario(name, seed=3)
    b = build_scenario(name, seed=3)
    np.testing.assert_array_equal(
        a.instance.event_attributes, b.instance.event_attributes
    )
    assert a.instance.conflicts.pairs == b.instance.conflicts.pairs


def test_unknown_scenario():
    with pytest.raises(ValueError, match="unknown scenario"):
        build_scenario("circus")


class TestConferenceStructure:
    def test_same_slot_sessions_conflict(self):
        scenario = conference(n_slots=3, sessions_per_slot=2, seed=0)
        conflicts = scenario.instance.conflicts
        for slot in scenario.metadata["slots"]:
            for i, a in enumerate(slot):
                for b in slot[i + 1 :]:
                    assert conflicts.are_conflicting(a, b)

    def test_cross_slot_sessions_do_not_conflict(self):
        scenario = conference(n_slots=3, sessions_per_slot=2, seed=0)
        slots = scenario.metadata["slots"]
        assert not scenario.instance.conflicts.are_conflicting(
            slots[0][0], slots[1][0]
        )

    def test_arrangement_one_session_per_slot(self):
        scenario = conference(seed=2)
        arrangement = GreedyGEACC().solve(scenario.instance)
        for user in range(scenario.instance.n_users):
            attended_slots = [
                event // 3 for event in arrangement.events_of(user)
            ]
            assert len(attended_slots) == len(set(attended_slots))


class TestFestivalStructure:
    def test_same_timeslot_acts_conflict(self):
        scenario = festival(n_stages=3, n_timeslots=2, seed=0)
        conflicts = scenario.instance.conflicts
        # Acts 0, 1, 2 share timeslot 0.
        assert conflicts.are_conflicting(0, 1)
        assert conflicts.are_conflicting(1, 2)

    def test_adjacent_slot_far_stages_conflict(self):
        scenario = festival(n_stages=4, n_timeslots=2, seed=0)
        conflicts = scenario.instance.conflicts
        # Act 0 = (stage 0, slot 0); act 7 = (stage 3, slot 1): too far.
        assert conflicts.are_conflicting(0, 7)
        # Act 0 and act 5 = (stage 1, slot 1): reachable.
        assert not conflicts.are_conflicting(0, 5)


class TestCourseAllocationStructure:
    def test_shared_meeting_cells_conflict(self):
        scenario = course_allocation(n_courses=15, n_students=30, seed=4)
        meetings = scenario.metadata["meetings"]
        conflicts = scenario.instance.conflicts
        for a in range(15):
            for b in range(a + 1, 15):
                expected = bool(meetings[a] & meetings[b])
                assert conflicts.are_conflicting(a, b) == expected

    def test_no_student_gets_clashing_courses(self):
        scenario = course_allocation(seed=5)
        arrangement = GreedyGEACC().solve(scenario.instance)
        meetings = scenario.metadata["meetings"]
        for student in range(scenario.instance.n_users):
            courses = sorted(arrangement.events_of(student))
            for i, a in enumerate(courses):
                for b in courses[i + 1 :]:
                    assert not (meetings[a] & meetings[b])


class TestVolunteerShiftsStructure:
    def test_overlapping_shifts_conflict(self):
        scenario = volunteer_shifts(seed=6)
        intervals = scenario.metadata["intervals"]
        conflicts = scenario.instance.conflicts
        n = len(intervals)
        for a in range(n):
            for b in range(a + 1, n):
                s_a, e_a = intervals[a]
                s_b, e_b = intervals[b]
                assert conflicts.are_conflicting(a, b) == (
                    s_a < e_b and s_b < e_a
                )


def test_algorithm_ordering_holds_on_scenarios():
    """The paper's headline ordering transfers to structured conflicts."""
    for name in sorted(SCENARIOS):
        scenario = build_scenario(name, seed=0)
        greedy = GreedyGEACC().solve(scenario.instance).max_sum()
        mcf = MinCostFlowGEACC().solve(scenario.instance).max_sum()
        random_v = RandomV(seed=0).solve(scenario.instance).max_sum()
        assert greedy >= mcf - 1e-9, name
        assert greedy > random_v, name
