"""Tests for arrangement validation (Definition 5 constraints)."""

import numpy as np
import pytest

from repro.core.conflicts import ConflictGraph
from repro.core.model import Arrangement, Instance
from repro.core.validation import is_feasible, validate_arrangement
from repro.exceptions import InfeasibleArrangementError


@pytest.fixture
def instance():
    sims = np.array([[0.9, 0.0, 0.5], [0.4, 0.6, 0.7]])
    return Instance.from_matrix(
        sims, np.array([1, 2]), np.array([2, 1, 1]), ConflictGraph(2, [(0, 1)])
    )


def test_empty_arrangement_is_feasible(instance):
    validate_arrangement(Arrangement(instance))
    assert is_feasible(Arrangement(instance))


def test_valid_arrangement_passes(instance):
    arrangement = Arrangement(instance)
    arrangement.add(0, 0)
    arrangement.add(1, 1)
    validate_arrangement(arrangement)


def test_zero_similarity_pair_rejected(instance):
    arrangement = Arrangement(instance)
    arrangement.add(0, 1)  # sim == 0
    with pytest.raises(InfeasibleArrangementError, match="sim"):
        validate_arrangement(arrangement)
    assert not is_feasible(arrangement)


def test_event_capacity_violation_detected(instance):
    arrangement = Arrangement(instance)
    arrangement.add(0, 0)
    # Bypass bookkeeping guards by writing internals directly.
    arrangement._users_of_event[0].add(2)
    arrangement._events_of_user[2].add(0)
    with pytest.raises(InfeasibleArrangementError, match="event 0"):
        validate_arrangement(arrangement)


def test_user_capacity_violation_detected(instance):
    arrangement = Arrangement(instance)
    arrangement.add(0, 2)
    arrangement._users_of_event[1].add(2)
    arrangement._events_of_user[2].add(1)
    # User 2 has capacity 1 but two events (also conflicting pair).
    with pytest.raises(InfeasibleArrangementError):
        validate_arrangement(arrangement)


def test_conflict_violation_detected(instance):
    arrangement = Arrangement(instance)
    arrangement.add(0, 0)
    arrangement.add(1, 0)  # events 0 and 1 conflict; user 0 has capacity 2
    with pytest.raises(InfeasibleArrangementError, match="conflicting"):
        validate_arrangement(arrangement)


def test_validate_with_explicit_instance(instance):
    arrangement = Arrangement(instance)
    arrangement.add(0, 0)
    stricter = Instance.from_matrix(
        instance.sims, np.array([0, 2]), instance.user_capacities, instance.conflicts
    )
    with pytest.raises(InfeasibleArrangementError):
        validate_arrangement(arrangement, stricter)
