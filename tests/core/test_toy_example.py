"""Regression tests against the paper's worked example (Table I).

The paper reports three concrete MaxSum values on this instance:
4.39 optimal, 4.13 for MinCostFlow-GEACC (Example 2), 4.28 for
Greedy-GEACC (Example 3). All three are reproduced exactly.
"""

import pytest

from repro.core.algorithms import (
    ExhaustiveGEACC,
    GreedyGEACC,
    MinCostFlowGEACC,
    PruneGEACC,
)
from repro.core.toy import (
    GREEDY_MAXSUM,
    MINCOSTFLOW_MAXSUM,
    OPTIMAL_MAXSUM,
    toy_instance,
)
from repro.core.validation import validate_arrangement


@pytest.fixture
def toy():
    return toy_instance()


def test_toy_statistics(toy):
    assert toy.n_events == 3
    assert toy.n_users == 5
    assert len(toy.conflicts) == 1
    assert toy.conflicts.are_conflicting(0, 2)
    assert toy.max_user_capacity == 3
    assert toy.delta_max() == 10  # min(sum c_v = 10, sum c_u = 10)


def test_optimal_maxsum_is_439(toy):
    arrangement = PruneGEACC().solve(toy)
    validate_arrangement(arrangement)
    assert arrangement.max_sum() == pytest.approx(OPTIMAL_MAXSUM)


def test_exhaustive_matches_prune(toy):
    exact = ExhaustiveGEACC().solve(toy)
    assert exact.max_sum() == pytest.approx(OPTIMAL_MAXSUM)


def test_mincostflow_returns_413(toy):
    """Example 2: u1 keeps v1, drops v3; u5 keeps v3, drops v1."""
    arrangement = MinCostFlowGEACC().solve(toy)
    validate_arrangement(arrangement)
    assert arrangement.max_sum() == pytest.approx(MINCOSTFLOW_MAXSUM)
    # The worked example's final pairs: u1 attends v1 but not v3.
    assert (0, 0) in arrangement
    assert (2, 0) not in arrangement


def test_mincostflow_generic_engine_agrees(toy):
    dense = MinCostFlowGEACC(engine="dense").solve(toy)
    generic = MinCostFlowGEACC(engine="generic").solve(toy)
    assert dense.max_sum() == pytest.approx(generic.max_sum())


def test_mincostflow_full_sweep_agrees(toy):
    early = MinCostFlowGEACC().solve(toy)
    full = MinCostFlowGEACC(full_sweep=True).solve(toy)
    assert early.max_sum() == pytest.approx(full.max_sum())


def test_greedy_returns_428(toy):
    """Example 3's final arrangement has MaxSum 4.28."""
    arrangement = GreedyGEACC().solve(toy)
    validate_arrangement(arrangement)
    assert arrangement.max_sum() == pytest.approx(GREEDY_MAXSUM)


def test_greedy_first_iteration_pair(toy):
    """Example 3: {v1, u1} (sim 0.93) is matched; {v3, u1} is blocked."""
    arrangement = GreedyGEACC().solve(toy)
    assert (0, 0) in arrangement
    assert (2, 0) not in arrangement


def test_approximation_guarantees_hold_on_toy(toy):
    alpha = toy.max_user_capacity
    greedy = GreedyGEACC().solve(toy).max_sum()
    mcf = MinCostFlowGEACC().solve(toy).max_sum()
    assert greedy >= OPTIMAL_MAXSUM / (1 + alpha)
    assert mcf >= OPTIMAL_MAXSUM / alpha


def test_relaxation_matches_figure_1b(toy):
    """The min-cost-flow relaxation M_0 of Example 2 / Fig. 1b:
    u1 is temporarily assigned both conflicting events v1 and v3."""
    from repro.core.algorithms import MinCostFlowGEACC

    pairs = set(MinCostFlowGEACC().solve_relaxation(toy))
    assert (0, 0) in pairs and (2, 0) in pairs        # u1 holds v1 AND v3
    assert (0, 4) in pairs and (2, 4) in pairs        # u5 holds v1 AND v3
    relaxed_sum = sum(toy.sim(v, u) for v, u in pairs)
    assert relaxed_sum == pytest.approx(5.64)         # MaxSum(M_0)
    # Corollary 1: the relaxation dominates the true optimum.
    assert relaxed_sum >= OPTIMAL_MAXSUM
