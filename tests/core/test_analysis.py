"""Tests for arrangement analysis statistics."""

import numpy as np
import pytest

from repro.core.algorithms import GreedyGEACC, RandomV
from repro.core.analysis import analyze, compare, gini
from repro.core.model import Arrangement, Instance


class TestGini:
    def test_equal_values_zero(self):
        assert gini(np.ones(10)) == pytest.approx(0.0, abs=1e-12)

    def test_single_winner_near_one(self):
        values = np.zeros(100)
        values[0] = 5.0
        assert gini(values) > 0.95

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(5)) == 0.0

    def test_order_invariant(self):
        rng = np.random.default_rng(0)
        values = rng.random(50)
        assert gini(values) == pytest.approx(gini(values[::-1]))

    def test_in_unit_interval(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            g = gini(rng.random(20))
            assert 0.0 <= g <= 1.0


class TestAnalyze:
    def test_empty_arrangement(self):
        instance = Instance.from_matrix(
            np.array([[0.5]]), np.array([2]), np.array([1])
        )
        stats = analyze(Arrangement(instance))
        assert stats.max_sum == 0.0
        assert stats.n_pairs == 0
        assert stats.empty_events == 1
        assert stats.users_matched == 0
        assert stats.users_unmatched == 1

    def test_full_arrangement(self):
        instance = Instance.from_matrix(
            np.array([[0.5, 0.7]]), np.array([2]), np.array([1, 1])
        )
        arrangement = Arrangement(instance)
        arrangement.add(0, 0)
        arrangement.add(0, 1)
        stats = analyze(arrangement)
        assert stats.max_sum == pytest.approx(1.2)
        assert stats.event_fill_mean == pytest.approx(1.0)
        assert stats.empty_events == 0
        assert stats.users_matched == 2
        assert stats.mean_pair_similarity == pytest.approx(0.6)

    def test_on_real_solver_output(self, medium_instance):
        stats = analyze(GreedyGEACC().solve(medium_instance))
        assert stats.n_pairs > 0
        assert 0 < stats.event_fill_mean <= 1.0
        assert 0 <= stats.satisfaction_gini <= 1.0
        assert "MaxSum" in stats.render()

    def test_compare_table(self, small_instance):
        table = compare(
            {
                "greedy": GreedyGEACC().solve(small_instance),
                "random": RandomV(seed=0).solve(small_instance),
            }
        )
        assert "greedy" in table
        assert "random" in table
        assert "satisfaction Gini" in table
