"""Tests for the Instance / Arrangement model."""

import numpy as np
import pytest

from repro.core.conflicts import ConflictGraph
from repro.core.model import Arrangement, Instance
from repro.exceptions import InvalidInstanceError


def matrix_instance(sims=None, cv=None, cu=None, conflicts=None) -> Instance:
    sims = np.array([[0.5, 0.2], [0.9, 0.0]]) if sims is None else np.asarray(sims)
    cv = np.array([1, 2]) if cv is None else np.asarray(cv)
    cu = np.array([1, 1]) if cu is None else np.asarray(cu)
    return Instance.from_matrix(sims, cv, cu, conflicts)


class TestInstanceConstruction:
    def test_from_matrix_shapes(self):
        instance = matrix_instance()
        assert instance.n_events == 2
        assert instance.n_users == 2
        assert instance.sim(0, 1) == pytest.approx(0.2)

    def test_rejects_similarities_out_of_range(self):
        with pytest.raises(InvalidInstanceError):
            matrix_instance(sims=[[1.5, 0.0], [0.0, 0.0]])
        with pytest.raises(InvalidInstanceError):
            matrix_instance(sims=[[-0.1, 0.0], [0.0, 0.0]])

    def test_rejects_negative_capacity(self):
        with pytest.raises(InvalidInstanceError):
            matrix_instance(cv=[-1, 2])

    def test_rejects_misshaped_capacities(self):
        with pytest.raises(InvalidInstanceError):
            matrix_instance(cv=[1, 2, 3])
        with pytest.raises(InvalidInstanceError):
            matrix_instance(cu=[1])

    def test_rejects_mismatched_conflict_graph(self):
        with pytest.raises(InvalidInstanceError):
            matrix_instance(conflicts=ConflictGraph(5))

    def test_requires_sims_or_attributes(self):
        with pytest.raises(InvalidInstanceError):
            Instance(np.array([1]), np.array([1]))

    def test_rejects_mismatched_attribute_dims(self):
        with pytest.raises(InvalidInstanceError):
            Instance.from_attributes(
                np.zeros((2, 3)), np.zeros((4, 2)), np.ones(2), np.ones(4)
            )

    def test_from_attributes_computes_eq1(self):
        events = np.array([[0.0, 0.0]])
        users = np.array([[0.0, 0.0], [1.0, 1.0]])
        instance = Instance.from_attributes(
            events, users, np.array([1]), np.array([1, 1]), t=1.0
        )
        assert instance.sim(0, 0) == pytest.approx(1.0)
        # Distance sqrt(2) over max distance sqrt(2) -> similarity 0.
        assert instance.sim(0, 1) == pytest.approx(0.0)


class TestLazySimilarity:
    def test_matrix_not_materialised_until_accessed(self):
        instance = Instance.from_attributes(
            np.random.default_rng(0).uniform(0, 1, (3, 2)),
            np.random.default_rng(1).uniform(0, 1, (4, 2)),
            np.ones(3),
            np.ones(4),
            t=1.0,
        )
        assert not instance.has_matrix
        pointwise = instance.sim(1, 2)
        row = instance.sim_row(1).copy()
        col = instance.sim_col(2).copy()
        assert not instance.has_matrix
        full = instance.sims
        assert instance.has_matrix
        assert full[1, 2] == pytest.approx(pointwise)
        np.testing.assert_allclose(full[1], row)
        np.testing.assert_allclose(full[:, 2], col)

    def test_event_and_user_dataclasses(self):
        instance = Instance.from_attributes(
            np.array([[1.0, 2.0]]), np.array([[3.0, 4.0]]),
            np.array([5]), np.array([2]), t=10.0,
        )
        event = instance.event(0)
        user = instance.user(0)
        assert event.capacity == 5
        assert event.attributes == (1.0, 2.0)
        assert user.capacity == 2
        assert len(instance.events()) == 1
        assert len(instance.users()) == 1


class TestArrangement:
    def test_add_remove_roundtrip(self):
        instance = matrix_instance(cv=[2, 2], cu=[2, 2])
        arrangement = Arrangement(instance)
        arrangement.add(0, 1)
        assert (0, 1) in arrangement
        assert arrangement.event_remaining(0) == 1
        assert arrangement.user_remaining(1) == 1
        arrangement.remove(0, 1)
        assert (0, 1) not in arrangement
        assert arrangement.event_remaining(0) == 2
        assert len(arrangement) == 0

    def test_remove_unmatched_raises(self):
        arrangement = Arrangement(matrix_instance())
        with pytest.raises(KeyError):
            arrangement.remove(0, 0)

    def test_can_add_checks_capacity(self):
        instance = matrix_instance(cv=[1, 1], cu=[1, 1])
        arrangement = Arrangement(instance)
        arrangement.add(0, 0)
        assert not arrangement.can_add(0, 1)  # event 0 full
        assert not arrangement.can_add(1, 0)  # user 0 full
        assert arrangement.can_add(1, 1)

    def test_can_add_rejects_duplicate_pair(self):
        instance = matrix_instance(cv=[2, 2], cu=[2, 2])
        arrangement = Arrangement(instance)
        arrangement.add(0, 0)
        assert not arrangement.can_add(0, 0)

    def test_can_add_checks_conflicts(self):
        conflicts = ConflictGraph(2, [(0, 1)])
        instance = matrix_instance(cv=[2, 2], cu=[2, 2], conflicts=conflicts)
        arrangement = Arrangement(instance)
        arrangement.add(0, 0)
        assert not arrangement.can_add(1, 0)  # user 0 already attends 0
        assert arrangement.can_add(1, 1)

    def test_max_sum(self):
        instance = matrix_instance(cv=[2, 2], cu=[2, 2])
        arrangement = Arrangement(instance)
        arrangement.add(0, 0)
        arrangement.add(1, 0)
        assert arrangement.max_sum() == pytest.approx(0.5 + 0.9)

    def test_max_sum_lazy_instance(self):
        instance = Instance.from_attributes(
            np.array([[0.0], [1.0]]), np.array([[0.0], [0.5]]),
            np.array([2, 2]), np.array([2, 2]), t=1.0,
        )
        arrangement = Arrangement(instance)
        arrangement.add(0, 0)
        arrangement.add(1, 1)
        expected = instance.sim(0, 0) + instance.sim(1, 1)
        assert not instance.has_matrix
        assert arrangement.max_sum() == pytest.approx(expected)

    def test_copy_is_independent(self):
        instance = matrix_instance(cv=[2, 2], cu=[2, 2])
        arrangement = Arrangement(instance)
        arrangement.add(0, 0)
        clone = arrangement.copy()
        clone.add(1, 0)  # sim 0.9
        assert (1, 0) not in arrangement
        assert (0, 0) in clone
        assert clone.max_sum() > arrangement.max_sum()

    def test_pairs_sorted(self):
        instance = matrix_instance(cv=[2, 2], cu=[2, 2])
        arrangement = Arrangement(instance)
        arrangement.add(1, 1)
        arrangement.add(0, 0)
        assert arrangement.pairs() == [(0, 0), (1, 1)]

    def test_repr_mentions_maxsum(self):
        arrangement = Arrangement(matrix_instance())
        assert "MaxSum" in repr(arrangement)
