"""Tests for the conflict graph (Definition 3)."""

import numpy as np
import pytest

from repro.core.conflicts import ConflictGraph
from repro.exceptions import InvalidInstanceError


class TestBasics:
    def test_empty_graph(self):
        graph = ConflictGraph.empty(4)
        assert len(graph) == 0
        assert graph.density() == 0.0
        assert not graph.are_conflicting(0, 3)

    def test_add_pair_is_symmetric(self):
        graph = ConflictGraph(3)
        graph.add_pair(2, 0)
        assert graph.are_conflicting(0, 2)
        assert graph.are_conflicting(2, 0)
        assert graph.pairs == frozenset({(0, 2)})

    def test_self_conflict_rejected(self):
        graph = ConflictGraph(3)
        with pytest.raises(InvalidInstanceError):
            graph.add_pair(1, 1)

    def test_out_of_range_rejected(self):
        graph = ConflictGraph(3)
        with pytest.raises(InvalidInstanceError):
            graph.add_pair(0, 3)
        with pytest.raises(InvalidInstanceError):
            graph.are_conflicting(-1, 0)

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ConflictGraph(-1)

    def test_duplicate_pair_idempotent(self):
        graph = ConflictGraph(3, [(0, 1), (1, 0)])
        assert len(graph) == 1

    def test_conflicts_with(self):
        graph = ConflictGraph(4, [(0, 1), (0, 2)])
        assert graph.conflicts_with(0) == frozenset({1, 2})
        assert graph.conflicts_with(3) == frozenset()

    def test_conflicts_with_any(self):
        graph = ConflictGraph(4, [(0, 1)])
        assert graph.conflicts_with_any(0, [3, 1])
        assert not graph.conflicts_with_any(0, [2, 3])
        assert not graph.conflicts_with_any(0, [])

    def test_complete_graph_density(self):
        graph = ConflictGraph.complete(5)
        assert len(graph) == 10
        assert graph.density() == pytest.approx(1.0)

    def test_density_single_event(self):
        assert ConflictGraph.empty(1).density() == 0.0


class TestRandom:
    def test_ratio_respected(self):
        rng = np.random.default_rng(0)
        graph = ConflictGraph.random(10, 0.5, rng)
        assert len(graph) == round(0.5 * 45)

    def test_ratio_zero_and_one(self):
        rng = np.random.default_rng(0)
        assert len(ConflictGraph.random(6, 0.0, rng)) == 0
        assert len(ConflictGraph.random(6, 1.0, rng)) == 15

    def test_invalid_ratio(self):
        with pytest.raises(InvalidInstanceError):
            ConflictGraph.random(5, 1.5, np.random.default_rng(0))

    def test_deterministic_per_seed(self):
        a = ConflictGraph.random(8, 0.4, np.random.default_rng(42))
        b = ConflictGraph.random(8, 0.4, np.random.default_rng(42))
        assert a.pairs == b.pairs


class TestIntervals:
    def test_overlap_conflicts(self):
        # [0, 2) overlaps [1, 3); [4, 5) is disjoint from both.
        graph = ConflictGraph.from_intervals([(0, 2), (1, 3), (4, 5)])
        assert graph.are_conflicting(0, 1)
        assert not graph.are_conflicting(0, 2)
        assert not graph.are_conflicting(1, 2)

    def test_back_to_back_do_not_conflict(self):
        graph = ConflictGraph.from_intervals([(0, 2), (2, 4)])
        assert len(graph) == 0

    def test_nested_intervals_conflict(self):
        graph = ConflictGraph.from_intervals([(0, 10), (2, 3)])
        assert graph.are_conflicting(0, 1)

    def test_invalid_interval(self):
        with pytest.raises(InvalidInstanceError):
            ConflictGraph.from_intervals([(3, 3)])

    def test_paper_intro_scenario(self):
        """Hiking 8-12, badminton 9-11, basketball 11:30-13:30 (1h away)."""
        intervals = [(8.0, 12.0), (9.0, 11.0), (11.5, 13.5)]
        # Badminton venue 30 units from basketball court at speed 30/h = 1h.
        locations = [(0.0, 0.0), (0.0, 0.0), (30.0, 0.0)]
        graph = ConflictGraph.from_schedule(intervals, locations, travel_speed=30.0)
        assert graph.are_conflicting(0, 1)  # overlap
        assert graph.are_conflicting(0, 2)  # hiking overlaps basketball? no --
        # hiking ends 12:00, basketball starts 11:30 -> overlap. Yes.
        # badminton ends 11:00, basketball starts 11:30: gap 0.5h < 1h travel.
        assert graph.are_conflicting(1, 2)

    def test_schedule_travel_feasible(self):
        intervals = [(0.0, 1.0), (3.0, 4.0)]
        locations = [(0.0, 0.0), (10.0, 0.0)]
        graph = ConflictGraph.from_schedule(intervals, locations, travel_speed=10.0)
        assert not graph.are_conflicting(0, 1)  # 2h gap, 1h travel

    def test_schedule_validation(self):
        with pytest.raises(InvalidInstanceError):
            ConflictGraph.from_schedule([(0, 1)], [(0, 0)], travel_speed=0.0)
        with pytest.raises(InvalidInstanceError):
            ConflictGraph.from_schedule([(0, 1)], [], travel_speed=1.0)


class TestIndependenceBound:
    def test_empty_graph_bound_is_n(self):
        assert ConflictGraph.empty(6).independence_upper_bound() == 6

    def test_complete_graph_bound_is_one(self):
        assert ConflictGraph.complete(6).independence_upper_bound() == 1

    def test_bound_dominates_true_independence_number(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(2, 9))
            graph = ConflictGraph.random(n, float(rng.random()), rng)
            bound = graph.independence_upper_bound()
            # Brute-force the true independence number.
            best = 0
            for mask in range(1 << n):
                members = [i for i in range(n) if mask >> i & 1]
                if all(
                    not graph.are_conflicting(a, b)
                    for k, a in enumerate(members)
                    for b in members[k + 1:]
                ):
                    best = max(best, len(members))
            assert bound >= best

    def test_disjoint_cliques(self):
        # Two triangles: alpha = 2, greedy clique partition gives 2.
        pairs = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        graph = ConflictGraph(6, pairs)
        assert graph.independence_upper_bound() == 2

    def test_zero_events(self):
        assert ConflictGraph.empty(0).independence_upper_bound() == 0


class TestGreedyColoring:
    def test_empty_graph_one_color(self):
        colors = ConflictGraph.empty(5).greedy_coloring()
        assert colors == [0] * 5

    def test_complete_graph_all_distinct(self):
        colors = ConflictGraph.complete(4).greedy_coloring()
        assert sorted(colors) == [0, 1, 2, 3]

    def test_proper_coloring_on_random_graphs(self):
        rng = np.random.default_rng(9)
        for _ in range(10):
            n = int(rng.integers(2, 15))
            graph = ConflictGraph.random(n, float(rng.random()), rng)
            colors = graph.greedy_coloring()
            for i, j in graph.pairs:
                assert colors[i] != colors[j]

    def test_color_count_bounded_by_degree_plus_one(self):
        rng = np.random.default_rng(10)
        graph = ConflictGraph.random(12, 0.4, rng)
        colors = graph.greedy_coloring()
        max_degree = max(len(graph.conflicts_with(v)) for v in range(12))
        assert max(colors) + 1 <= max_degree + 1

    def test_zero_events(self):
        assert ConflictGraph.empty(0).greedy_coloring() == []
