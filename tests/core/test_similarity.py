"""Tests for the similarity functions (Eq. 1 and alternatives)."""

import numpy as np
import pytest

from repro.core.similarity import (
    cosine_similarity,
    euclidean_similarity,
    scaled_dot_similarity,
    similarity_matrix,
)


class TestEuclideanSimilarity:
    def test_identical_vectors_have_similarity_one(self):
        attrs = np.array([[1.0, 2.0, 3.0]])
        sims = euclidean_similarity(attrs, attrs, t=10.0)
        assert sims[0, 0] == pytest.approx(1.0)

    def test_extreme_corners_have_similarity_zero(self):
        """Opposite corners of [0, T]^d are at the maximum distance."""
        t = 5.0
        d = 4
        lo = np.zeros((1, d))
        hi = np.full((1, d), t)
        sims = euclidean_similarity(lo, hi, t=t)
        assert sims[0, 0] == pytest.approx(0.0)

    def test_matches_eq1_formula(self):
        rng = np.random.default_rng(0)
        t, d = 100.0, 6
        events = rng.uniform(0, t, (3, d))
        users = rng.uniform(0, t, (5, d))
        sims = euclidean_similarity(events, users, t=t)
        for i in range(3):
            for j in range(5):
                dist = np.linalg.norm(events[i] - users[j])
                expected = 1 - dist / np.sqrt(d * t * t)
                assert sims[i, j] == pytest.approx(expected)

    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(1)
        sims = euclidean_similarity(
            rng.uniform(0, 10, (20, 8)), rng.uniform(0, 10, (30, 8)), t=10.0
        )
        assert np.all(sims >= 0.0)
        assert np.all(sims <= 1.0)

    def test_rejects_nonpositive_t(self):
        with pytest.raises(ValueError):
            euclidean_similarity(np.zeros((1, 2)), np.zeros((1, 2)), t=0.0)

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0, 1, (4, 3))
        b = rng.uniform(0, 1, (6, 3))
        assert np.allclose(
            euclidean_similarity(a, b, 1.0), euclidean_similarity(b, a, 1.0).T
        )


class TestCosineSimilarity:
    def test_parallel_vectors(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([[2.0, 2.0]])
        assert cosine_similarity(a, b)[0, 0] == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert cosine_similarity(a, b)[0, 0] == pytest.approx(0.0)

    def test_zero_vector_gets_zero(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 1.0]])
        assert cosine_similarity(a, b)[0, 0] == 0.0


class TestScaledDot:
    def test_peak_is_one(self):
        rng = np.random.default_rng(3)
        sims = scaled_dot_similarity(rng.uniform(0, 1, (5, 4)), rng.uniform(0, 1, (7, 4)))
        assert sims.max() == pytest.approx(1.0)
        assert np.all(sims >= 0)

    def test_all_zero_inputs(self):
        sims = scaled_dot_similarity(np.zeros((2, 3)), np.zeros((4, 3)))
        assert np.all(sims == 0)


class TestDispatch:
    def test_named_metrics(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 1, (3, 2))
        b = rng.uniform(0, 1, (4, 2))
        for metric in ("euclidean", "cosine", "dot"):
            sims = similarity_matrix(a, b, t=1.0, metric=metric)
            assert sims.shape == (3, 4)

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown similarity metric"):
            similarity_matrix(np.zeros((1, 1)), np.zeros((1, 1)), 1.0, "manhattan")
