"""Tests for the online (incremental) arrangement extension."""

import numpy as np
import pytest

from repro.core.algorithms import GreedyGEACC, PruneGEACC
from repro.core.algorithms.incremental import OnlineArranger, OnlineGreedyGEACC
from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.core.validation import validate_arrangement
from tests.conftest import random_matrix_instance


def test_feasible(small_instance):
    arrangement = OnlineGreedyGEACC().solve(small_instance)
    validate_arrangement(arrangement)
    assert arrangement.max_sum() > 0


def test_streaming_api():
    sims = np.array([[0.9, 0.5], [0.7, 0.8]])
    instance = Instance.from_matrix(sims, np.array([1, 1]), np.array([1, 1]))
    arranger = OnlineArranger(instance)
    assert arranger.arrive(0) == [0]      # user 0 takes the 0.9 event
    assert arranger.arrive(1) == [1]      # event 0 is full; user 1 gets 1
    assert arranger.arrived_users == frozenset({0, 1})
    assert arranger.max_sum() == pytest.approx(0.9 + 0.8)


def test_double_arrival_rejected():
    instance = Instance.from_matrix(
        np.array([[0.5]]), np.array([1]), np.array([1])
    )
    arranger = OnlineArranger(instance)
    arranger.arrive(0)
    with pytest.raises(ValueError, match="already arrived"):
        arranger.arrive(0)


def test_respects_conflicts():
    sims = np.array([[0.9], [0.8], [0.7]])
    conflicts = ConflictGraph(3, [(0, 1)])
    instance = Instance.from_matrix(
        sims, np.array([1, 1, 1]), np.array([3]), conflicts
    )
    arranger = OnlineArranger(instance)
    assigned = arranger.arrive(0)
    # Best event first (0), then 1 is blocked by conflict, then 2.
    assert assigned == [0, 2]


def test_arrival_order_matters():
    """A bad arrival order can lose value vs a good one."""
    sims = np.array([[0.9, 0.89]])
    instance = Instance.from_matrix(sims, np.array([1]), np.array([1, 1]))
    forward = OnlineGreedyGEACC(arrival_order=[0, 1]).solve(instance)
    backward = OnlineGreedyGEACC(arrival_order=[1, 0]).solve(instance)
    assert forward.max_sum() == pytest.approx(0.9)
    assert backward.max_sum() == pytest.approx(0.89)


def test_never_beats_optimum():
    rng = np.random.default_rng(51)
    for _ in range(6):
        instance = random_matrix_instance(rng, 4, 6, max_cv=2, max_cu=2)
        online = OnlineGreedyGEACC().solve(instance)
        validate_arrangement(online)
        optimum = PruneGEACC().solve(instance).max_sum()
        assert online.max_sum() <= optimum + 1e-9


def test_typically_below_offline_greedy(medium_instance):
    online = OnlineGreedyGEACC().solve(medium_instance).max_sum()
    offline = GreedyGEACC().solve(medium_instance).max_sum()
    # Arrival order is adversarial to nobody; offline global greedy should
    # not lose to first-come-first-served on this seed.
    assert offline >= online * 0.95


def test_registered_in_solver_registry():
    from repro.core.algorithms import get_solver

    solver = get_solver("online-greedy")
    assert isinstance(solver, OnlineGreedyGEACC)
