"""Tests for the fairness-aware greedy extension."""

import numpy as np
import pytest

from repro.core.algorithms import GreedyGEACC
from repro.core.algorithms.fair_greedy import FairGreedyGEACC
from repro.core.analysis import analyze
from repro.core.model import Instance
from repro.core.validation import validate_arrangement
from tests.conftest import random_matrix_instance


def test_feasible(medium_instance):
    arrangement = FairGreedyGEACC(fairness=2.0).solve(medium_instance)
    validate_arrangement(arrangement)
    assert arrangement.max_sum() > 0


def test_negative_fairness_rejected():
    with pytest.raises(ValueError):
        FairGreedyGEACC(fairness=-1.0)


def test_zero_fairness_maximal():
    """fairness=0 keeps plain greedy's maximality property."""
    rng = np.random.default_rng(71)
    for _ in range(5):
        instance = random_matrix_instance(rng, 4, 8, max_cv=3, max_cu=2)
        arrangement = FairGreedyGEACC(fairness=0.0).solve(instance)
        validate_arrangement(arrangement)
        for v in range(instance.n_events):
            for u in range(instance.n_users):
                if instance.sim(v, u) > 0 and (v, u) not in arrangement:
                    assert not arrangement.can_add(v, u)


def test_zero_fairness_matches_greedy_value(medium_instance):
    """Same selection rule => same MaxSum as Greedy-GEACC (the matching
    itself may differ on similarity ties)."""
    fair = FairGreedyGEACC(fairness=0.0).solve(medium_instance)
    greedy = GreedyGEACC().solve(medium_instance)
    assert fair.max_sum() == pytest.approx(greedy.max_sum(), rel=1e-6)


def test_fairness_flattens_satisfaction(medium_instance):
    plain = analyze(FairGreedyGEACC(fairness=0.0).solve(medium_instance))
    fair = analyze(FairGreedyGEACC(fairness=5.0).solve(medium_instance))
    assert fair.satisfaction_gini <= plain.satisfaction_gini + 1e-9
    assert fair.users_matched >= plain.users_matched
    # The price of fairness: bounded MaxSum loss on this workload.
    assert fair.max_sum >= plain.max_sum * 0.8


def test_spreads_events_across_users():
    """One great user, two events; fairness shares them out."""
    sims = np.array([[0.9, 0.5], [0.8, 0.45]])
    instance = Instance.from_matrix(sims, np.array([1, 1]), np.array([2, 2]))
    greedy = FairGreedyGEACC(fairness=0.0).solve(instance)
    assert greedy.pairs() == [(0, 0), (1, 0)]  # user 0 takes both
    fair = FairGreedyGEACC(fairness=10.0).solve(instance)
    assert fair.pairs() == [(0, 0), (1, 1)]  # event 1 goes to user 1


def test_deterministic(medium_instance):
    a = FairGreedyGEACC(fairness=1.0).solve(medium_instance)
    b = FairGreedyGEACC(fairness=1.0).solve(medium_instance)
    assert a.pairs() == b.pairs()


def test_empty_instance():
    instance = Instance.from_matrix(np.zeros((0, 0)), np.zeros(0), np.zeros(0))
    assert len(FairGreedyGEACC().solve(instance)) == 0


def test_registered():
    from repro.core.algorithms import get_solver

    assert isinstance(get_solver("fair-greedy"), FairGreedyGEACC)
