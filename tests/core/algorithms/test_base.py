"""Tests for the solver registry."""

import pytest

from repro.core.algorithms import SOLVERS, Solver, get_solver, register_solver


def test_all_paper_solvers_registered():
    for name in ("greedy", "mincostflow", "prune", "exhaustive", "random-v",
                 "random-u", "local-search"):
        assert name in SOLVERS


def test_get_solver_instantiates():
    solver = get_solver("greedy")
    assert solver.name == "greedy"
    assert isinstance(solver, Solver)


def test_get_solver_forwards_kwargs():
    solver = get_solver("mincostflow", engine="generic")
    assert solver._engine == "generic"


def test_unknown_solver():
    with pytest.raises(ValueError, match="unknown solver"):
        get_solver("simulated-annealing")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):

        @register_solver("greedy")
        class Duplicate(Solver):  # pragma: no cover - never used
            def solve(self, instance):
                raise NotImplementedError


def test_repr():
    assert "GreedyGEACC" in repr(get_solver("greedy"))
