"""Tests for the local-search extension."""

import numpy as np
import pytest

from repro.core.algorithms import (
    GreedyGEACC,
    LocalSearchGEACC,
    PruneGEACC,
    RandomV,
)
from repro.core.conflicts import ConflictGraph
from repro.core.model import Arrangement, Instance
from repro.core.validation import validate_arrangement
from tests.conftest import random_matrix_instance


def test_never_decreases_maxsum(small_instance):
    base = RandomV(seed=2)
    improved = LocalSearchGEACC(base=base).solve(small_instance)
    baseline = base.solve(small_instance)
    validate_arrangement(improved)
    assert improved.max_sum() >= baseline.max_sum() - 1e-12


def test_improves_random_baseline(medium_instance):
    base = RandomV(seed=2)
    improved = LocalSearchGEACC(base=base).solve(medium_instance)
    assert improved.max_sum() > base.solve(medium_instance).max_sum()


def test_accepts_registry_name(small_instance):
    improved = LocalSearchGEACC(base="random-u").solve(small_instance)
    validate_arrangement(improved)


def test_greedy_output_has_no_add_moves(small_instance):
    """Lemma 5 again: adds find nothing on greedy output; swaps may."""
    greedy = GreedyGEACC().solve(small_instance)
    search = LocalSearchGEACC()
    improved = search.improve(greedy)
    validate_arrangement(improved)
    assert improved.max_sum() >= greedy.max_sum() - 1e-12


def test_never_exceeds_optimum():
    rng = np.random.default_rng(41)
    for _ in range(5):
        instance = random_matrix_instance(rng, 4, 6, max_cv=2, max_cu=2)
        improved = LocalSearchGEACC(base=RandomV(seed=1)).solve(instance)
        optimum = PruneGEACC().solve(instance).max_sum()
        validate_arrangement(improved)
        assert improved.max_sum() <= optimum + 1e-9


def test_swap_move_fires():
    """Start from an arrangement where a swap is strictly improving."""
    sims = np.array([[0.3], [0.9]])
    instance = Instance.from_matrix(sims, np.array([1, 1]), np.array([1]))
    start = Arrangement(instance)
    start.add(0, 0)  # suboptimal: event 1 is better for user 0
    improved = LocalSearchGEACC().improve(start)
    assert improved.pairs() == [(1, 0)]
    assert improved.max_sum() == pytest.approx(0.9)


def test_swap_respects_conflicts():
    sims = np.array([[0.5], [0.9], [0.6]])
    conflicts = ConflictGraph(3, [(1, 2)])
    instance = Instance.from_matrix(
        sims, np.array([1, 1, 1]), np.array([2]), conflicts
    )
    start = Arrangement(instance)
    start.add(0, 0)
    start.add(2, 0)  # user 0 at events {0, 2}; event 1 conflicts with 2
    improved = LocalSearchGEACC().improve(start)
    validate_arrangement(improved)
    # Swapping 0 -> 1 is blocked by the 1-2 conflict; best stays feasible.
    assert improved.max_sum() >= start.max_sum()


def test_does_not_mutate_input(small_instance):
    start = RandomV(seed=3).solve(small_instance)
    before = start.pairs()
    LocalSearchGEACC().improve(start)
    assert start.pairs() == before
