"""Tests for the MILP exact solver (optimum oracle)."""

import numpy as np
import pytest

from repro.core.algorithms import ExhaustiveGEACC, ILPGEACC, PruneGEACC
from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.core.toy import OPTIMAL_MAXSUM, toy_instance
from repro.core.validation import validate_arrangement
from tests.conftest import random_matrix_instance


def test_toy_optimum():
    arrangement = ILPGEACC().solve(toy_instance())
    validate_arrangement(arrangement)
    assert arrangement.max_sum() == pytest.approx(OPTIMAL_MAXSUM)


def test_matches_prune_on_random_instances():
    rng = np.random.default_rng(61)
    for _ in range(10):
        instance = random_matrix_instance(rng, 4, 6, max_cv=3, max_cu=2)
        ilp = ILPGEACC().solve(instance)
        validate_arrangement(ilp)
        prune = PruneGEACC().solve(instance).max_sum()
        assert ilp.max_sum() == pytest.approx(prune, abs=1e-6)


def test_matches_exhaustive():
    rng = np.random.default_rng(62)
    instance = random_matrix_instance(rng, 3, 5, max_cv=2, max_cu=2)
    ilp = ILPGEACC().solve(instance).max_sum()
    exhaustive = ExhaustiveGEACC().solve(instance).max_sum()
    assert ilp == pytest.approx(exhaustive, abs=1e-6)


def test_respects_conflicts():
    sims = np.array([[0.9], [0.8], [0.5]])
    conflicts = ConflictGraph(3, [(0, 1)])
    instance = Instance.from_matrix(
        sims, np.array([1, 1, 1]), np.array([2]), conflicts
    )
    arrangement = ILPGEACC().solve(instance)
    assert arrangement.pairs() == [(0, 0), (2, 0)]


def test_empty_and_zero_instances():
    empty = Instance.from_matrix(np.zeros((0, 0)), np.zeros(0), np.zeros(0))
    assert len(ILPGEACC().solve(empty)) == 0
    zeros = Instance.from_matrix(
        np.zeros((2, 3)), np.array([1, 1]), np.array([1, 1, 1])
    )
    assert len(ILPGEACC().solve(zeros)) == 0


def test_solves_paper_fig5_configuration_quickly():
    """The whole point of the oracle: reliable at |V|=5, |U|=15, c_u<=4."""
    import time

    from repro.datagen.synthetic import SyntheticConfig, generate_instance

    config = SyntheticConfig(n_events=5, n_users=15, cv_high=10, cu_high=4)
    start = time.perf_counter()
    for seed in range(3):
        for ratio in (0.0, 0.5, 1.0):
            instance = generate_instance(config.with_(conflict_ratio=ratio), seed)
            arrangement = ILPGEACC().solve(instance)
            validate_arrangement(arrangement)
    assert time.perf_counter() - start < 10.0


def test_registered():
    from repro.core.algorithms import get_solver

    assert isinstance(get_solver("ilp"), ILPGEACC)
