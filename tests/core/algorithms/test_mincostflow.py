"""Tests for MinCostFlow-GEACC (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.algorithms import MinCostFlowGEACC, PruneGEACC
from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.core.validation import validate_arrangement
from tests.conftest import random_matrix_instance


def brute_force_relaxation_optimum(instance) -> float:
    """Optimal conflict-free MaxSum by exhaustive search (tiny only)."""
    relaxed = Instance.from_matrix(
        instance.sims,
        instance.event_capacities,
        instance.user_capacities,
        ConflictGraph.empty(instance.n_events),
    )
    return PruneGEACC().solve(relaxed).max_sum()


def test_feasible_on_small_instance(small_instance):
    arrangement = MinCostFlowGEACC().solve(small_instance)
    validate_arrangement(arrangement)
    assert arrangement.max_sum() > 0


def test_relaxation_is_optimal_lemma1():
    """Lemma 1: M_0 is optimal for the conflict-free instance."""
    rng = np.random.default_rng(21)
    for _ in range(6):
        instance = random_matrix_instance(rng, 4, 6, max_cv=2, max_cu=2)
        pairs = MinCostFlowGEACC().solve_relaxation(instance)
        relaxed_maxsum = sum(instance.sim(v, u) for v, u in pairs)
        optimum = brute_force_relaxation_optimum(instance)
        assert relaxed_maxsum == pytest.approx(optimum, abs=1e-9)


def test_no_conflicts_gives_exact_optimum():
    """With CF empty, MinCostFlow-GEACC is exact (Fig. 5c at ratio 0)."""
    rng = np.random.default_rng(22)
    for _ in range(4):
        instance = random_matrix_instance(
            rng, 4, 6, max_cv=2, max_cu=2, conflict_ratio=0.0
        )
        result = MinCostFlowGEACC().solve(instance).max_sum()
        optimum = PruneGEACC().solve(instance).max_sum()
        assert result == pytest.approx(optimum, abs=1e-9)


def test_approximation_ratio_vs_exact():
    rng = np.random.default_rng(23)
    for _ in range(8):
        instance = random_matrix_instance(rng, 4, 7, max_cv=3, max_cu=3)
        result = MinCostFlowGEACC().solve(instance).max_sum()
        optimum = PruneGEACC().solve(instance).max_sum()
        alpha = instance.max_user_capacity
        assert result >= optimum / alpha - 1e-9


def test_engines_agree(small_instance):
    dense = MinCostFlowGEACC(engine="dense").solve(small_instance)
    generic = MinCostFlowGEACC(engine="generic").solve(small_instance)
    assert dense.max_sum() == pytest.approx(generic.max_sum())


def test_full_sweep_agrees(small_instance):
    early = MinCostFlowGEACC().solve(small_instance)
    full = MinCostFlowGEACC(full_sweep=True).solve(small_instance)
    assert early.max_sum() == pytest.approx(full.max_sum())


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        MinCostFlowGEACC(engine="quantum")


def test_relaxation_excludes_zero_sim_pairs():
    sims = np.array([[0.0, 0.9], [0.8, 0.0]])
    instance = Instance.from_matrix(sims, np.array([1, 1]), np.array([1, 1]))
    pairs = MinCostFlowGEACC().solve_relaxation(instance)
    assert set(pairs) == {(0, 1), (1, 0)}


def test_conflict_resolution_keeps_best_event():
    """A user assigned two conflicting events keeps the more similar one."""
    sims = np.array([[0.9], [0.7]])
    instance = Instance.from_matrix(
        sims, np.array([1, 1]), np.array([2]), ConflictGraph(2, [(0, 1)])
    )
    arrangement = MinCostFlowGEACC().solve(instance)
    assert arrangement.pairs() == [(0, 0)]


def test_conflict_resolution_greedy_mwis():
    """Per-user selection is greedy: best event first, then compatibles."""
    # Events: 0 (0.9) conflicts with 1 (0.8) and 2 (0.7); 1 and 2 do not
    # conflict. Greedy keeps 0 alone (0.9) even though {1, 2} sums to 1.5.
    sims = np.array([[0.9], [0.8], [0.7]])
    conflicts = ConflictGraph(3, [(0, 1), (0, 2)])
    instance = Instance.from_matrix(
        sims, np.array([1, 1, 1]), np.array([3]), conflicts
    )
    arrangement = MinCostFlowGEACC().solve(instance)
    assert arrangement.pairs() == [(0, 0)]


def test_empty_instance():
    instance = Instance.from_matrix(np.zeros((0, 0)), np.zeros(0), np.zeros(0))
    arrangement = MinCostFlowGEACC().solve(instance)
    assert len(arrangement) == 0


def test_all_zero_similarities():
    instance = Instance.from_matrix(
        np.zeros((2, 3)), np.array([1, 1]), np.array([1, 1, 1])
    )
    arrangement = MinCostFlowGEACC().solve(instance)
    assert len(arrangement) == 0
