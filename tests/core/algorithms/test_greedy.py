"""Tests for Greedy-GEACC (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.algorithms import GreedyGEACC, PruneGEACC
from repro.core.algorithms.neighbors import (
    IndexNeighborOrders,
    MatrixNeighborOrders,
)
from repro.core.conflicts import ConflictGraph
from repro.core.model import Arrangement, Instance
from repro.core.validation import validate_arrangement
from tests.conftest import random_matrix_instance


def test_feasible_on_small_instance(small_instance):
    arrangement = GreedyGEACC().solve(small_instance)
    validate_arrangement(arrangement)
    assert arrangement.max_sum() > 0


def test_deterministic(small_instance):
    a = GreedyGEACC().solve(small_instance)
    b = GreedyGEACC().solve(small_instance)
    assert a.pairs() == b.pairs()


def test_maximality_lemma5(small_instance):
    """Lemma 5: no unmatched positive-sim pair can still be added."""
    arrangement = GreedyGEACC().solve(small_instance)
    sims = small_instance.sims
    for v in range(small_instance.n_events):
        for u in range(small_instance.n_users):
            if (v, u) in arrangement or sims[v, u] <= 0:
                continue
            assert not arrangement.can_add(v, u), (
                f"pair ({v}, {u}) with sim {sims[v, u]} is still addable"
            )


def test_approximation_ratio_vs_exact():
    rng = np.random.default_rng(11)
    for _ in range(8):
        instance = random_matrix_instance(rng, 4, 7, max_cv=3, max_cu=3)
        greedy = GreedyGEACC().solve(instance).max_sum()
        optimum = PruneGEACC().solve(instance).max_sum()
        alpha = instance.max_user_capacity
        assert greedy >= optimum / (1 + alpha) - 1e-9


def test_no_conflicts_one_capacity_is_greedy_matching():
    """With c = 1 everywhere and no conflicts, GEACC is bipartite matching;
    greedy picks pairs in global similarity order."""
    sims = np.array([[0.9, 0.8], [0.85, 0.1]])
    instance = Instance.from_matrix(
        sims, np.array([1, 1]), np.array([1, 1])
    )
    arrangement = GreedyGEACC().solve(instance)
    # Greedy takes (0,0)=0.9 first, then (1,1)=0.1 (0.85 and 0.8 blocked).
    assert arrangement.pairs() == [(0, 0), (1, 1)]


def test_complete_conflicts_limits_users_to_one_event():
    rng = np.random.default_rng(3)
    sims = rng.random((4, 6))
    instance = Instance.from_matrix(
        sims,
        np.full(4, 3),
        np.full(6, 4),
        ConflictGraph.complete(4),
    )
    arrangement = GreedyGEACC().solve(instance)
    validate_arrangement(arrangement)
    for u in range(6):
        assert len(arrangement.events_of(u)) <= 1


def test_zero_similarity_pairs_never_matched():
    sims = np.array([[0.0, 0.0], [0.5, 0.0]])
    instance = Instance.from_matrix(sims, np.array([2, 2]), np.array([2, 2]))
    arrangement = GreedyGEACC().solve(instance)
    assert arrangement.pairs() == [(1, 0)]


def test_zero_capacity_nodes_ignored():
    sims = np.array([[0.9, 0.8], [0.7, 0.6]])
    instance = Instance.from_matrix(sims, np.array([0, 2]), np.array([1, 0]))
    arrangement = GreedyGEACC().solve(instance)
    validate_arrangement(arrangement)
    assert arrangement.pairs() == [(1, 0)]


def test_empty_instance():
    instance = Instance.from_matrix(np.zeros((0, 0)), np.zeros(0), np.zeros(0))
    arrangement = GreedyGEACC().solve(instance)
    assert len(arrangement) == 0


def test_index_backends_agree_with_matrix(medium_instance):
    reference = GreedyGEACC().solve(medium_instance).max_sum()
    for kind in ("linear", "chunked", "kdtree", "idistance"):
        config_instance = Instance.from_attributes(
            medium_instance.event_attributes,
            medium_instance.user_attributes,
            medium_instance.event_capacities,
            medium_instance.user_capacities,
            medium_instance.conflicts,
            t=medium_instance.t,
        )
        result = GreedyGEACC(index_kind=kind).solve(config_instance)
        validate_arrangement(result)
        assert result.max_sum() == pytest.approx(reference)


def test_index_orders_require_attributes(toy):
    with pytest.raises(ValueError, match="attribute-backed"):
        IndexNeighborOrders(toy)


def test_solve_with_explicit_orders(small_instance):
    orders = MatrixNeighborOrders(small_instance)
    arrangement = GreedyGEACC().solve_with_orders(small_instance, orders)
    reference = GreedyGEACC().solve(small_instance)
    assert arrangement.pairs() == reference.pairs()


def test_respects_user_capacity_exactly():
    """A user with capacity 2 in a sea of great events gets exactly 2."""
    sims = np.full((5, 1), 0.9)
    instance = Instance.from_matrix(sims, np.ones(5, dtype=int), np.array([2]))
    arrangement = GreedyGEACC().solve(instance)
    assert len(arrangement.events_of(0)) == 2


# ----------------------------------------------------------------------
# _Cursor chunked stream pulls
# ----------------------------------------------------------------------


class _CountingStream:
    """A neighbour stream that counts how many items were pulled."""

    def __init__(self, items):
        self._items = iter(items)
        self.pulled = 0

    def __iter__(self):
        return self

    def __next__(self):
        item = next(self._items)
        self.pulled += 1
        return item


def _cursor_on(items):
    from repro.core.algorithms.greedy import _Cursor

    stream = _CountingStream(items)
    return _Cursor(stream), stream


def test_cursor_preserves_stream_order_across_chunks():
    items = [(i, 100.0 - i) for i in range(200)]
    cursor, _ = _cursor_on(items)
    seen = []
    while (candidate := cursor.peek()) is not None:
        seen.append(candidate)
        cursor.skip()
    assert seen == items
    assert cursor.done


def test_cursor_first_pull_is_a_single_item():
    # IndexNeighborOrders serves its first neighbour from one cheap
    # argmax and only argsorts when a second item is demanded; a first
    # pull larger than 1 would force that argsort for every node at
    # initialisation time.
    cursor, stream = _cursor_on([(i, 50.0 - i) for i in range(50)])
    assert cursor.peek() == (0, 50.0)
    assert stream.pulled == 1


def test_cursor_chunks_grow_geometrically_and_cap():
    from repro.core.algorithms.greedy import _Cursor

    items = [(i, 1000.0 - i) for i in range(1000)]
    cursor, stream = _cursor_on(items)
    pulls = []
    consumed = 0
    previous = 0
    while cursor.peek() is not None and consumed < 400:
        cursor.skip()
        consumed += 1
        if stream.pulled != previous:
            pulls.append(stream.pulled - previous)
            previous = stream.pulled
    assert pulls[:4] == [1, 4, 16, 64]
    assert all(size == _Cursor.CHUNK_CAP for size in pulls[4:])


def test_cursor_peek_holds_and_finish_releases():
    cursor, stream = _cursor_on([(7, 3.0), (8, 2.0)])
    assert cursor.peek() == (7, 3.0)
    assert cursor.peek() == (7, 3.0)  # holding, not advancing
    assert stream.pulled == 1
    cursor.finish()
    assert cursor.done
    assert cursor.peek() is None
    assert stream.pulled == 1  # a finished cursor never touches the stream
