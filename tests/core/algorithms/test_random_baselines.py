"""Tests for the Random-V / Random-U baselines."""

import numpy as np
import pytest

from repro.core.algorithms import GreedyGEACC, RandomU, RandomV
from repro.core.model import Instance
from repro.core.validation import validate_arrangement


@pytest.mark.parametrize("cls", [RandomV, RandomU])
def test_feasible(cls, small_instance):
    arrangement = cls(seed=1).solve(small_instance)
    validate_arrangement(arrangement)


@pytest.mark.parametrize("cls", [RandomV, RandomU])
def test_deterministic_per_seed(cls, small_instance):
    a = cls(seed=5).solve(small_instance)
    b = cls(seed=5).solve(small_instance)
    assert a.pairs() == b.pairs()


@pytest.mark.parametrize("cls", [RandomV, RandomU])
def test_different_seeds_differ(cls, medium_instance):
    a = cls(seed=1).solve(medium_instance)
    b = cls(seed=2).solve(medium_instance)
    assert a.pairs() != b.pairs()


@pytest.mark.parametrize("cls", [RandomV, RandomU])
def test_never_matches_zero_similarity(cls):
    sims = np.array([[0.0, 0.9], [0.9, 0.0]])
    instance = Instance.from_matrix(sims, np.array([2, 2]), np.array([2, 2]))
    arrangement = cls(seed=0).solve(instance)
    for v, u in arrangement.pairs():
        assert sims[v, u] > 0


def test_greedy_beats_baselines_on_average(medium_instance):
    greedy = GreedyGEACC().solve(medium_instance).max_sum()
    random_v = np.mean(
        [RandomV(seed=s).solve(medium_instance).max_sum() for s in range(5)]
    )
    random_u = np.mean(
        [RandomU(seed=s).solve(medium_instance).max_sum() for s in range(5)]
    )
    assert greedy > random_v
    assert greedy > random_u


@pytest.mark.parametrize("cls", [RandomV, RandomU])
def test_empty_instance(cls):
    instance = Instance.from_matrix(np.zeros((0, 0)), np.zeros(0), np.zeros(0))
    assert len(cls().solve(instance)) == 0


def test_random_v_probability_scales_with_capacity():
    """An event with capacity |U| accepts every feasible user."""
    rng_sims = np.full((1, 20), 0.5)
    instance = Instance.from_matrix(
        rng_sims, np.array([20]), np.ones(20, dtype=int)
    )
    arrangement = RandomV(seed=0).solve(instance)
    assert len(arrangement) == 20
