"""Tests for the neighbour-order providers."""

import numpy as np
import pytest

from repro.core.algorithms.neighbors import (
    IndexNeighborOrders,
    MatrixNeighborOrders,
    _chunked_descending,
    neighbor_orders_for,
)
from repro.exceptions import BudgetExceededError
from repro.robustness.budget import Budget
from repro.core.model import Instance


@pytest.fixture
def attribute_instance():
    rng = np.random.default_rng(8)
    return Instance.from_attributes(
        rng.uniform(0, 10, (6, 3)),
        rng.uniform(0, 10, (9, 3)),
        np.full(6, 2),
        np.full(9, 2),
        t=10.0,
    )


def _is_non_increasing(values):
    return all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestMatrixOrders:
    def test_event_stream_order_and_coverage(self, attribute_instance):
        orders = MatrixNeighborOrders(attribute_instance)
        stream = list(orders.event_stream(2))
        assert len(stream) == attribute_instance.n_users
        assert {u for u, _ in stream} == set(range(attribute_instance.n_users))
        assert _is_non_increasing([s for _, s in stream])

    def test_user_stream_order(self, attribute_instance):
        orders = MatrixNeighborOrders(attribute_instance)
        stream = list(orders.user_stream(4))
        assert len(stream) == attribute_instance.n_events
        assert _is_non_increasing([s for _, s in stream])

    def test_sims_match_instance(self, attribute_instance):
        orders = MatrixNeighborOrders(attribute_instance)
        for u, sim in orders.event_stream(0):
            assert sim == pytest.approx(attribute_instance.sim(0, u))


class TestIndexOrders:
    @pytest.mark.parametrize("kind", ["linear", "chunked", "kdtree", "idistance"])
    def test_agrees_with_matrix(self, attribute_instance, kind):
        matrix = MatrixNeighborOrders(attribute_instance)
        index = IndexNeighborOrders(attribute_instance, kind)
        for v in range(attribute_instance.n_events):
            matrix_sims = sorted(s for _, s in matrix.event_stream(v))
            index_sims = sorted(round(s, 9) for _, s in index.event_stream(v))
            np.testing.assert_allclose(index_sims, matrix_sims, atol=1e-9)

    def test_user_stream_descending(self, attribute_instance):
        orders = IndexNeighborOrders(attribute_instance, "kdtree")
        stream = list(orders.user_stream(3))
        assert _is_non_increasing([s for _, s in stream])

    def test_requires_euclidean_metric(self):
        rng = np.random.default_rng(9)
        instance = Instance.from_attributes(
            rng.uniform(0, 1, (2, 2)),
            rng.uniform(0, 1, (3, 2)),
            np.ones(2),
            np.ones(3),
            t=1.0,
            metric="cosine",
        )
        with pytest.raises(ValueError, match="Euclidean"):
            IndexNeighborOrders(instance)


class TestAutoSelection:
    def test_small_instance_uses_matrix(self, attribute_instance):
        orders = neighbor_orders_for(attribute_instance)
        assert isinstance(orders, MatrixNeighborOrders)

    def test_forced_kind(self, attribute_instance):
        orders = neighbor_orders_for(attribute_instance, index_kind="kdtree")
        assert isinstance(orders, IndexNeighborOrders)

    def test_huge_lazy_instance_uses_index(self, monkeypatch):
        import repro.core.algorithms.neighbors as neighbors_module

        monkeypatch.setattr(neighbors_module, "_MATRIX_CELL_LIMIT", 10)
        rng = np.random.default_rng(10)
        instance = Instance.from_attributes(
            rng.uniform(0, 1, (4, 2)),
            rng.uniform(0, 1, (5, 2)),
            np.ones(4),
            np.ones(5),
            t=1.0,
        )
        orders = neighbor_orders_for(instance)
        assert isinstance(orders, IndexNeighborOrders)
        assert not instance.has_matrix


class TestChunkedStreams:
    """The chunked top-k generator behind the matrix provider."""

    def test_stream_is_exactly_stable_argsort_order(self):
        rng = np.random.default_rng(3)
        values = np.round(rng.random(200), 1)  # one-decimal grid: ties galore
        stream = list(_chunked_descending(values))
        expected = [
            (int(i), float(values[i]))
            for i in np.argsort(-values, kind="stable")
        ]
        assert stream == expected

    def test_zero_weight_probes_leave_node_accounting_alone(self):
        budget = Budget(node_limit=5)
        values = np.arange(300, dtype=np.float64)
        assert len(list(_chunked_descending(values, budget))) == 300
        # Many chunks were pulled, yet no nodes were charged: the probe
        # must not perturb node-limited runs (digest stability).
        assert budget.nodes == 0

    def test_expired_deadline_interrupts_deep_consumption(self):
        budget = Budget(deadline=0.0)
        stream = _chunked_descending(np.arange(10.0), budget)
        assert next(stream) == (9, 9.0)  # first chunk is served unprobed
        with pytest.raises(BudgetExceededError):
            list(stream)

    def test_greedy_returns_partial_arrangement_on_exhaustion(
        self, attribute_instance
    ):
        from repro.core.algorithms import GreedyGEACC

        arrangement = GreedyGEACC().solve(
            attribute_instance, budget=Budget(deadline=0.0)
        )
        # Anytime semantics: exhaustion mid-generation yields the pairs
        # matched so far (possibly none), never an exception.
        assert arrangement.pairs() == []
