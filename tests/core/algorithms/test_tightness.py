"""Worst-case constructions showing the approximation ratios are tight.

Theorem 3's 1/(1 + max c_u) bound for Greedy-GEACC and Theorem 2's
1/max c_u bound for MinCostFlow-GEACC are *worst-case* ratios. These
tests build adversarial instances where each algorithm actually lands
near its bound -- evidence the analysis is tight, and a regression guard
that the implementations really follow the paper's greedy choices
(a smarter tie-break would silently break these constructions).
"""

import numpy as np
import pytest

from repro.core.algorithms import GreedyGEACC, MinCostFlowGEACC, PruneGEACC
from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance


def greedy_adversarial_instance(alpha: int, epsilon: float = 1e-3) -> Instance:
    """Greedy's nemesis: one tempting pair blocks alpha + 1 good ones.

    Events: e0 (capacity 1) conflicting with e1..e_alpha (capacity 1).
    Users: u0 (capacity alpha) and u1 (capacity 1).
    sims: (e0, u0) = s; (e_i, u0) = s - eps; (e0, u1) = s - eps.

    Greedy matches (e0, u0) first, which conflicts away every (e_i, u0)
    and exhausts e0 against u1: MaxSum = s. The optimum instead takes
    (e0, u1) and all (e_i, u0): MaxSum = (alpha + 1)(s - eps).
    """
    n_events = alpha + 1
    s = 0.9
    sims = np.zeros((n_events, 2))
    sims[0, 0] = s
    sims[0, 1] = s - epsilon
    sims[1:, 0] = s - epsilon
    conflicts = ConflictGraph(n_events, [(0, i) for i in range(1, n_events)])
    return Instance.from_matrix(
        sims,
        np.ones(n_events, dtype=np.int64),
        np.array([alpha, 1], dtype=np.int64),
        conflicts,
    )


def mincostflow_adversarial_instance(alpha: int, epsilon: float = 1e-3) -> Instance:
    """MinCostFlow's nemesis: the relaxation hoards conflicting events.

    Events e1..e_alpha are pairwise conflicting, capacity 1. User u0 has
    capacity alpha and similarity s to all of them; users u1..u_alpha
    have capacity 1 and similarity s - eps to "their" event only.

    The conflict-free relaxation assigns every event to u0 (s beats
    s - eps); conflict resolution then keeps exactly one: MaxSum = s.
    The optimum gives u0 one event and each u_i their own:
    MaxSum = s + (alpha - 1)(s - eps).
    """
    s = 0.9
    sims = np.zeros((alpha, alpha + 1))
    sims[:, 0] = s
    for i in range(alpha):
        sims[i, i + 1] = s - epsilon
    conflicts = ConflictGraph.complete(alpha)
    return Instance.from_matrix(
        sims,
        np.ones(alpha, dtype=np.int64),
        np.array([alpha] + [1] * alpha, dtype=np.int64),
        conflicts,
    )


@pytest.mark.parametrize("alpha", [2, 3, 4])
def test_greedy_hits_its_worst_case(alpha):
    instance = greedy_adversarial_instance(alpha)
    greedy = GreedyGEACC().solve(instance).max_sum()
    optimum = PruneGEACC().solve(instance).max_sum()
    ratio = greedy / optimum
    bound = 1 / (1 + alpha)
    assert ratio >= bound - 1e-9          # Theorem 3 still holds
    assert ratio <= bound * 1.05          # ...and is nearly attained


@pytest.mark.parametrize("alpha", [2, 3, 4])
def test_mincostflow_hits_its_worst_case(alpha):
    instance = mincostflow_adversarial_instance(alpha)
    mcf = MinCostFlowGEACC().solve(instance).max_sum()
    optimum = PruneGEACC().solve(instance).max_sum()
    ratio = mcf / optimum
    bound = 1 / alpha
    assert ratio >= bound - 1e-9          # Theorem 2 still holds
    assert ratio <= bound * 1.05


@pytest.mark.parametrize("alpha", [2, 3])
def test_greedy_recovers_optimum_on_mcf_nemesis(alpha):
    """The MCF trap does not fool greedy: conflicts are checked upfront.

    Greedy matches (e_0, u0) first, the conflict checks then steer every
    other event to its dedicated user -- recovering the full optimum,
    while MinCostFlow's repair step collapses to a single event.
    """
    instance = mincostflow_adversarial_instance(alpha)
    greedy = GreedyGEACC().solve(instance).max_sum()
    mcf = MinCostFlowGEACC().solve(instance).max_sum()
    optimum = PruneGEACC().solve(instance).max_sum()
    assert greedy == pytest.approx(optimum)
    assert greedy > mcf
