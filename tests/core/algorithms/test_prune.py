"""Tests for Prune-GEACC / exhaustive search (Algorithms 3-4)."""

import numpy as np
import pytest

from repro.core.algorithms import ExhaustiveGEACC, GreedyGEACC, PruneGEACC
from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.core.validation import validate_arrangement
from repro.exceptions import ReproError
from tests.conftest import random_matrix_instance


def test_matches_exhaustive_on_random_instances():
    """Pruning must never change the optimum, only the work done."""
    rng = np.random.default_rng(31)
    for _ in range(6):
        instance = random_matrix_instance(rng, 3, 5, max_cv=2, max_cu=2)
        pruned = PruneGEACC().solve(instance)
        exhaustive = ExhaustiveGEACC().solve(instance)
        validate_arrangement(pruned)
        validate_arrangement(exhaustive)
        assert pruned.max_sum() == pytest.approx(exhaustive.max_sum())


def test_dominates_greedy():
    rng = np.random.default_rng(32)
    for _ in range(6):
        instance = random_matrix_instance(rng, 4, 6, max_cv=2, max_cu=2)
        optimum = PruneGEACC().solve(instance).max_sum()
        greedy = GreedyGEACC().solve(instance).max_sum()
        assert optimum >= greedy - 1e-9


def test_prune_does_less_work_than_exhaustive():
    rng = np.random.default_rng(33)
    instance = random_matrix_instance(rng, 3, 6, max_cv=3, max_cu=2)
    pruned = PruneGEACC()
    exhaustive = ExhaustiveGEACC()
    pruned.solve(instance)
    exhaustive.solve(instance)
    assert pruned.stats.invocations < exhaustive.stats.invocations
    assert pruned.stats.complete_searches <= exhaustive.stats.complete_searches
    assert exhaustive.stats.prune_count == 0
    assert pruned.stats.prune_count > 0


def test_stats_reset_between_solves():
    rng = np.random.default_rng(34)
    instance = random_matrix_instance(rng, 2, 3)
    solver = PruneGEACC()
    solver.solve(instance)
    first = solver.stats.invocations
    solver.solve(instance)
    assert solver.stats.invocations == first


def test_greedy_seed_ablation_same_optimum():
    rng = np.random.default_rng(35)
    instance = random_matrix_instance(rng, 3, 5, max_cv=2, max_cu=2)
    seeded = PruneGEACC(greedy_seed=True)
    unseeded = PruneGEACC(greedy_seed=False)
    a = seeded.solve(instance)
    b = unseeded.solve(instance)
    assert a.max_sum() == pytest.approx(b.max_sum())
    # The warm start can only help (fewer or equal invocations).
    assert seeded.stats.invocations <= unseeded.stats.invocations


def test_invocation_limit_raises():
    rng = np.random.default_rng(36)
    instance = random_matrix_instance(rng, 4, 8, max_cv=4, max_cu=3)
    with pytest.raises(ReproError, match="invocation limit"):
        ExhaustiveGEACC(invocation_limit=50).solve(instance)


def test_max_depth_bounded_by_pairs():
    rng = np.random.default_rng(37)
    instance = random_matrix_instance(rng, 3, 4, max_cv=2, max_cu=2)
    solver = PruneGEACC()
    solver.solve(instance)
    assert solver.stats.max_depth <= instance.n_events * instance.n_users


def test_average_prune_depth_empty_is_zero():
    from repro.core.algorithms.prune import SearchStats

    assert SearchStats().average_prune_depth == 0.0


def test_respects_conflicts_optimally():
    """Hand-checkable optimum with a binding conflict."""
    # One user, capacity 2; events 0/1 conflict; event 2 free.
    # Optimum: take 0 (0.9) and 2 (0.5) = 1.4, not 0+1 (infeasible) nor 1+2.
    sims = np.array([[0.9], [0.8], [0.5]])
    conflicts = ConflictGraph(3, [(0, 1)])
    instance = Instance.from_matrix(
        sims, np.array([1, 1, 1]), np.array([2]), conflicts
    )
    arrangement = PruneGEACC().solve(instance)
    assert arrangement.pairs() == [(0, 0), (2, 0)]
    assert arrangement.max_sum() == pytest.approx(1.4)


def test_greedy_suboptimal_instance_prune_finds_optimum():
    """An instance where greedy provably loses and exact recovers."""
    # Greedy takes (0, u0)=0.9 which blocks conflicting event 1 for u0;
    # optimum pairs event 0 with u1 and event 1 with u0.
    sims = np.array([[0.9, 0.85], [0.8, 0.0]])
    conflicts = ConflictGraph(2, [(0, 1)])
    instance = Instance.from_matrix(
        sims, np.array([1, 1]), np.array([1, 1]), conflicts
    )
    greedy = GreedyGEACC().solve(instance)
    exact = PruneGEACC().solve(instance)
    assert greedy.max_sum() == pytest.approx(0.9)
    assert exact.max_sum() == pytest.approx(0.85 + 0.8)


def test_empty_instance():
    instance = Instance.from_matrix(np.zeros((0, 0)), np.zeros(0), np.zeros(0))
    assert len(PruneGEACC().solve(instance)) == 0


def test_tight_bound_same_optimum():
    rng = np.random.default_rng(38)
    for _ in range(8):
        instance = random_matrix_instance(rng, 4, 6, max_cv=3, max_cu=2)
        paper = PruneGEACC(bound="paper").solve(instance).max_sum()
        tight = PruneGEACC(bound="tight").solve(instance).max_sum()
        assert paper == pytest.approx(tight)


def test_tight_bound_never_more_work():
    rng = np.random.default_rng(39)
    for _ in range(6):
        instance = random_matrix_instance(rng, 4, 7, max_cv=3, max_cu=2)
        paper = PruneGEACC(bound="paper")
        tight = PruneGEACC(bound="tight")
        paper.solve(instance)
        tight.solve(instance)
        assert tight.stats.invocations <= paper.stats.invocations


def test_unknown_bound_rejected():
    with pytest.raises(ValueError, match="unknown bound"):
        PruneGEACC(bound="loose")
