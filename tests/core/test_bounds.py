"""Tests for the optimum upper bounds."""

import numpy as np
import pytest

from repro.core.algorithms import PruneGEACC
from repro.core.bounds import lp_bound, nn_capacity_bound, relaxation_bound
from repro.core.toy import OPTIMAL_MAXSUM, toy_instance
from tests.conftest import random_matrix_instance


@pytest.fixture
def toy():
    return toy_instance()


def test_nn_capacity_bound_dominates_optimum(toy):
    assert nn_capacity_bound(toy) >= OPTIMAL_MAXSUM


def test_relaxation_bound_dominates_optimum(toy):
    bound = relaxation_bound(toy)
    assert bound >= OPTIMAL_MAXSUM - 1e-9
    # On the toy instance the conflict-free optimum is strictly better.
    assert bound > OPTIMAL_MAXSUM


def test_lp_bound_dominates_optimum(toy):
    assert lp_bound(toy) >= OPTIMAL_MAXSUM - 1e-6


def test_lp_tighter_or_equal_than_relaxation_on_random():
    rng = np.random.default_rng(5)
    for _ in range(5):
        instance = random_matrix_instance(rng, 4, 6, max_cv=3, max_cu=2)
        optimum = PruneGEACC().solve(instance).max_sum()
        lp = lp_bound(instance)
        relax = relaxation_bound(instance)
        nn = nn_capacity_bound(instance)
        assert lp >= optimum - 1e-6
        assert relax >= optimum - 1e-9
        assert nn >= optimum - 1e-9
        # The LP includes the conflict constraints, so it is at least as
        # tight as the unconflicted relaxation (it adds constraints but
        # also relaxes integrality; verify it never exceeds nn bound badly).
        assert lp <= relax + 1e-6


def test_bounds_on_empty_instance():
    from repro.core.model import Instance

    instance = Instance.from_matrix(
        np.zeros((0, 0)), np.zeros(0), np.zeros(0), None
    )
    assert nn_capacity_bound(instance) == 0.0


def test_lp_bound_all_zero_sims():
    from repro.core.model import Instance

    instance = Instance.from_matrix(
        np.zeros((2, 3)), np.array([1, 1]), np.array([1, 1, 1])
    )
    assert lp_bound(instance) == 0.0
