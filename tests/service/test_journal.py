"""Journal: write-ahead durability, torn tails, corruption, recovery."""

import json
from pathlib import Path

import pytest

from repro.exceptions import JournalError
from repro.service.journal import JOURNAL_FORMAT, Journal, iter_records, replay
from repro.service.store import ArrangementStore, StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)


def write_sample(path: Path) -> ArrangementStore:
    """A small journal plus the store its records produce."""
    journal = Journal.create(path, CONFIG)
    store = ArrangementStore(CONFIG)
    commands = [
        ("post_event", {"capacity": 2, "attributes": [1.0, 1.0], "conflicts": []}),
        ("register_user", {"capacity": 1, "attributes": [2.0, 2.0]}),
        ("request_assignment", {"user": 0}),
        ("commit_batch", {"assign": [[0, 0]], "unassign": [], "users": [0]}),
        ("freeze_event", {"event": 0}),
    ]
    with journal:
        for cmd, args in commands:
            store.apply(journal.append(cmd, args))
    return store


def test_create_refuses_existing_file(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    Journal.create(path, CONFIG).close()
    with pytest.raises(JournalError, match="already exists"):
        Journal.create(path, CONFIG)


def test_append_assigns_contiguous_seqs_and_replay_rebuilds(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    live = write_sample(path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["format"] == JOURNAL_FORMAT
    assert [json.loads(line)["seq"] for line in lines[1:]] == [1, 2, 3, 4, 5]
    recovered, durable = replay(path)
    assert durable == len(path.read_bytes())
    assert recovered == live
    assert recovered.seq == 5
    assert recovered.events_of(0) == {0}


def test_closed_journal_refuses_appends(tmp_path: Path) -> None:
    journal = Journal.create(tmp_path / "j.jsonl", CONFIG)
    journal.close()
    with pytest.raises(JournalError, match="closed"):
        journal.append("request_assignment", {"user": 0})


def test_torn_partial_write_is_truncated_silently(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    live = write_sample(path)
    intact = path.read_bytes()
    path.write_bytes(intact + b'{"seq": 6, "cmd": "freez')
    recovered, durable = replay(path)
    assert durable == len(intact)
    assert recovered == live


def test_torn_line_with_accidental_newline_is_tolerated(tmp_path: Path) -> None:
    # A partial write whose garbage happens to end in '\n' still only
    # ever occupies the final line; it must not count as corruption.
    path = tmp_path / "j.jsonl"
    live = write_sample(path)
    intact = path.read_bytes()
    path.write_bytes(intact + b'{"seq": 6, "cm\n')
    recovered, durable = replay(path)
    assert durable == len(intact)
    assert recovered == live


def test_mid_file_garbage_is_corruption(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    write_sample(path)
    lines = path.read_bytes().split(b"\n")
    lines[2] = b"!!not json!!"
    path.write_bytes(b"\n".join(lines))
    with pytest.raises(JournalError, match="corrupt record"):
        replay(path)


def test_sequence_gap_is_corruption(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    write_sample(path)
    blob = path.read_bytes()
    path.write_bytes(blob.replace(b'"seq":3', b'"seq":7'))
    with pytest.raises(JournalError, match="sequence gap"):
        replay(path)


def test_foreign_header_is_rejected(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    path.write_text(json.dumps({"format": "not-a-journal"}) + "\n")
    with pytest.raises(JournalError, match=JOURNAL_FORMAT):
        replay(path)


def test_empty_file_is_rejected(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    path.write_bytes(b"")
    with pytest.raises(JournalError, match="empty journal"):
        replay(path)


def test_missing_file_is_rejected(tmp_path: Path) -> None:
    with pytest.raises(JournalError, match="cannot read"):
        replay(tmp_path / "absent.jsonl")


def test_recover_truncates_and_continues_numbering(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    live = write_sample(path)
    intact = path.read_bytes()
    path.write_bytes(intact + b'{"seq": 6, "torn": ')
    journal, store = Journal.recover(path)
    with journal:
        assert store == live
        assert journal.seq == store.seq == 5
        assert path.read_bytes() == intact  # torn tail gone from disk
        record = journal.append("request_assignment", {"user": 0})
        assert record["seq"] == 6
        store.apply(record)
    recovered, _ = replay(path)
    assert recovered == store


def test_recover_zero_length_journal_returns_empty_store(tmp_path: Path) -> None:
    # Crash window of journal creation: the file exists but not one byte
    # of the header became durable. With a config, recovery starts clean.
    path = tmp_path / "j.jsonl"
    path.write_bytes(b"")
    journal, store = Journal.recover(path, config=CONFIG)
    with journal:
        assert store.seq == 0
        assert store.n_events == store.n_users == 0
        assert journal.last_recovery is not None
        assert journal.last_recovery.rung == "recreate"
        # The file was rewritten with a durable header; appends work.
        record = journal.append("register_user",
                                {"capacity": 1, "attributes": [1.0, 1.0]})
        assert record["seq"] == 1
        store.apply(record)
    recovered, _ = replay(path)
    assert recovered == store


def test_recover_header_only_journal_returns_empty_store(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    Journal.create(path, CONFIG).close()
    journal, store = Journal.recover(path)
    with journal:
        assert store.seq == 0
        assert store == ArrangementStore(CONFIG)
        assert journal.last_recovery is not None
        assert journal.last_recovery.rung == "full-replay"
        assert journal.append("freeze_event", {"event": 0})["seq"] == 1


def test_recover_partial_header_line_is_recreate_not_corruption(
    tmp_path: Path,
) -> None:
    # A torn *header* write (no trailing newline) is the same crash
    # window as a zero-length file: nothing durable yet.
    path = tmp_path / "j.jsonl"
    path.write_bytes(b'{"format": "geacc-serv')
    journal, store = Journal.recover(path, config=CONFIG)
    journal.close()
    assert store.seq == 0
    assert journal.last_recovery is not None
    assert journal.last_recovery.rung == "recreate"


def test_recover_headerless_journal_without_config_raises(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    path.write_bytes(b"")
    with pytest.raises(JournalError, match="no durable journal header"):
        Journal.recover(path)


def test_iter_records_reports_durable_offsets(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    write_sample(path)
    blob = path.read_bytes()
    offsets = [offset for _, offset in iter_records(path)]
    assert offsets[-1] == len(blob)
    assert offsets == sorted(offsets)
    # Each offset lands exactly one byte past a newline.
    assert all(blob[offset - 1:offset] == b"\n" for offset in offsets)
