"""End-to-end crash recovery, in-suite: the CI smoke scenario verbatim.

Spawns real ``geacc serve`` subprocesses, kills one with SIGKILL and
asserts the journal brings the successor back to the exact pre-crash
state (digest equality against an independent replay). Slow-ish (two
interpreter startups) but it is the acceptance criterion, so tier-1
runs it too, not just CI.
"""

from pathlib import Path

from repro.service.smoke import run_compaction_smoke, run_smoke


def test_kill9_recovery_preserves_state(tmp_path: Path) -> None:
    run_smoke(workdir=tmp_path)


def test_kill9_mid_compaction_recovers_from_snapshot(tmp_path: Path) -> None:
    run_compaction_smoke(workdir=tmp_path)
