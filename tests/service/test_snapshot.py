"""Snapshots + compaction + the recovery degradation ladder."""

import json
import zlib
from pathlib import Path

import pytest

from repro.exceptions import JournalError, ServiceError, SnapshotError
from repro.service.journal import Journal, replay
from repro.service.snapshot import (
    CompactionStats,
    compact,
    list_snapshots,
    load_snapshot,
    recover_state,
    snapshot_path,
    write_snapshot,
)
from repro.service.store import ArrangementStore, StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)

#: A command stream with every record shape: events (with a conflict),
#: users, a committed assignment, a freeze.
COMMANDS = [
    ("post_event", {"capacity": 2, "attributes": [1.0, 1.0], "conflicts": []}),
    ("post_event", {"capacity": 1, "attributes": [5.0, 5.0], "conflicts": [0]}),
    ("register_user", {"capacity": 1, "attributes": [2.0, 2.0]}),
    ("register_user", {"capacity": 2, "attributes": [6.0, 4.0]}),
    ("request_assignment", {"user": 0}),
    ("commit_batch", {"assign": [[0, 0]], "unassign": [], "users": [0]}),
    ("freeze_event", {"event": 0}),
    ("register_user", {"capacity": 1, "attributes": [3.0, 7.0]}),
]


def build(path: Path, upto: int | None = None) -> tuple[Journal, ArrangementStore]:
    """A live journal + store after applying ``COMMANDS[:upto]``."""
    journal = Journal.create(path, CONFIG)
    store = ArrangementStore(CONFIG)
    for cmd, args in COMMANDS[:upto]:
        store.apply(journal.append(cmd, args))
    return journal, store


# ----------------------------------------------------------------------
# Snapshot write/load
# ----------------------------------------------------------------------


def test_write_load_roundtrip(tmp_path: Path) -> None:
    journal, store = build(tmp_path / "j.jsonl")
    with journal:
        path = write_snapshot(store, tmp_path / "snaps")
    assert path == snapshot_path(tmp_path / "snaps", store.seq)
    restored = load_snapshot(path)
    assert restored == store
    assert restored.seq == store.seq
    assert restored.digest() == store.digest()
    restored.check_invariants()


def test_snapshot_is_two_complete_lines(tmp_path: Path) -> None:
    journal, store = build(tmp_path / "j.jsonl")
    with journal:
        path = write_snapshot(store, tmp_path / "snaps")
    blob = path.read_bytes()
    assert blob.endswith(b"\n")
    header = json.loads(blob.split(b"\n")[0])
    assert header["seq"] == store.seq
    assert header["digest"] == store.digest()
    assert header["crc32"] == zlib.crc32(blob.split(b"\n")[1])


def test_truncated_snapshot_is_rejected(tmp_path: Path) -> None:
    journal, store = build(tmp_path / "j.jsonl")
    with journal:
        path = write_snapshot(store, tmp_path / "snaps")
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(SnapshotError, match="torn"):
        load_snapshot(path)


def test_bit_flip_fails_the_crc(tmp_path: Path) -> None:
    journal, store = build(tmp_path / "j.jsonl")
    with journal:
        path = write_snapshot(store, tmp_path / "snaps")
    blob = bytearray(path.read_bytes())
    flip = blob.index(b"\n") + 10  # somewhere inside the payload line
    blob[flip] ^= 0x40
    path.write_bytes(bytes(blob))
    with pytest.raises(SnapshotError, match="CRC"):
        load_snapshot(path)


def test_tampered_payload_with_fixed_crc_fails_the_digest(tmp_path: Path) -> None:
    # An adversarial (or buggy) writer can recompute the CRC; the
    # canonical digest is the end-to-end check it cannot fake without
    # also producing a semantically different store.
    journal, store = build(tmp_path / "j.jsonl")
    with journal:
        path = write_snapshot(store, tmp_path / "snaps")
    header_line, payload, _ = path.read_bytes().split(b"\n")
    tampered = payload.replace(b"2.0", b"2.5")
    assert tampered != payload
    header = json.loads(header_line)
    header["crc32"] = zlib.crc32(tampered)
    path.write_bytes(
        json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        + b"\n" + tampered + b"\n"
    )
    with pytest.raises(SnapshotError, match="digest"):
        load_snapshot(path)


def test_foreign_format_is_rejected(tmp_path: Path) -> None:
    path = tmp_path / "snapshot-000000000001.json"
    path.write_bytes(b'{"format":"other"}\n{}\n')
    with pytest.raises(SnapshotError, match="geacc-snapshot-v1"):
        load_snapshot(path)


def test_list_snapshots_newest_first_and_ignores_leftovers(tmp_path: Path) -> None:
    snaps = tmp_path / "snaps"
    snaps.mkdir()
    for seq in (3, 12, 7):
        snapshot_path(snaps, seq).write_bytes(b"x")
    (snaps / "snapshot-000000000012.json.tmp").write_bytes(b"partial")
    (snaps / "notes.txt").write_bytes(b"hello")
    assert [seq for seq, _ in list_snapshots(snaps)] == [12, 7, 3]
    assert list_snapshots(tmp_path / "absent") == []


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------


def test_compact_trims_journal_to_tail(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    journal, store = build(path, upto=6)
    with journal:
        before = journal.size_bytes
        stats = compact(journal, store, tmp_path / "snaps")
        assert isinstance(stats, CompactionStats)
        assert stats.snapshot_seq == 6
        assert stats.base_seq == 6
        assert stats.retained == (6,)
        assert stats.pruned == ()
        assert stats.journal_bytes_before == before
        assert stats.journal_bytes_after < before
        assert journal.base_seq == 6
        # Appends continue seamlessly on the trimmed file.
        for cmd, args in COMMANDS[6:]:
            store.apply(journal.append(cmd, args))
    recovered, _, report = recover_state(path, tmp_path / "snaps")
    assert report.rung == "snapshot+tail"
    assert recovered == store


def test_retention_keeps_newest_and_prunes_the_rest(tmp_path: Path) -> None:
    path = tmp_path / "j.jsonl"
    journal = Journal.create(path, CONFIG)
    store = ArrangementStore(CONFIG)
    snaps = tmp_path / "snaps"
    seqs = []
    with journal:
        for round_no in range(4):
            store.apply(
                journal.append(
                    "register_user",
                    {"capacity": 1, "attributes": [1.0 * round_no, 2.0]},
                )
            )
            stats = compact(journal, store, snaps, retain=2)
            seqs.append(store.seq)
            assert list(stats.retained) == sorted(seqs[-2:], reverse=True)
            assert list(stats.pruned) == seqs[:-2][-1:]
            # Rebase only to the *oldest retained* snapshot: the older
            # one must still bridge to the live tail.
            assert stats.base_seq == min(seqs[-2:])
            assert journal.base_seq == stats.base_seq
    assert [seq for seq, _ in list_snapshots(snaps)] == sorted(
        seqs[-2:], reverse=True
    )


def test_compact_requires_store_journal_agreement(tmp_path: Path) -> None:
    journal, store = build(tmp_path / "j.jsonl", upto=4)
    with journal:
        store.apply(
            {"seq": 5, "cmd": "register_user", "capacity": 1,
             "attributes": [1.0, 1.0]}
        )  # geacc-lint: disable=R9 reason=test constructs a deliberate store/journal divergence
        with pytest.raises(ServiceError, match="store seq 5 != journal seq 4"):
            compact(journal, store, tmp_path / "snaps")


def test_compact_rejects_bad_retain(tmp_path: Path) -> None:
    journal, store = build(tmp_path / "j.jsonl", upto=2)
    with journal:
        with pytest.raises(ServiceError, match="retain"):
            compact(journal, store, tmp_path / "snaps", retain=0)


# ----------------------------------------------------------------------
# The recovery ladder
# ----------------------------------------------------------------------


def corrupt(path: Path) -> None:
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))


def compacted_world(tmp_path: Path) -> tuple[Path, Path, ArrangementStore]:
    """A journal compacted twice (two snapshots) plus a live tail."""
    path = tmp_path / "j.jsonl"
    snaps = tmp_path / "snaps"
    journal, store = build(path, upto=4)
    with journal:
        compact(journal, store, snaps, retain=2)
        for cmd, args in COMMANDS[4:6]:
            store.apply(journal.append(cmd, args))
        compact(journal, store, snaps, retain=2)
        for cmd, args in COMMANDS[6:]:
            store.apply(journal.append(cmd, args))
    return path, snaps, store


def test_ladder_rung1_newest_snapshot_plus_tail(tmp_path: Path) -> None:
    path, snaps, live = compacted_world(tmp_path)
    store, durable, report = recover_state(path, snaps)
    assert store == live
    assert durable == len(path.read_bytes())
    assert report.rung == "snapshot+tail"
    assert report.snapshot_seq == 6
    assert report.journal_base_seq == 4
    assert report.records_replayed == len(COMMANDS) - 6
    assert report.snapshots_rejected == ()


def test_ladder_rung2_corrupt_newest_falls_to_older(tmp_path: Path) -> None:
    path, snaps, live = compacted_world(tmp_path)
    corrupt(snapshot_path(snaps, 6))
    store, _, report = recover_state(path, snaps)
    assert store == live
    assert report.rung == "snapshot+tail"
    assert report.snapshot_seq == 4
    assert report.records_replayed == len(COMMANDS) - 4
    assert len(report.snapshots_rejected) == 1


def test_ladder_rung3_all_snapshots_corrupt_full_replay(tmp_path: Path) -> None:
    # Snapshots exist but the journal was never trimmed (base_seq 0):
    # with every snapshot corrupt, full replay still recovers everything.
    path = tmp_path / "j.jsonl"
    snaps = tmp_path / "snaps"
    journal, store = build(path)
    with journal:
        write_snapshot(store, snaps)
    corrupt(snapshot_path(snaps, store.seq))
    recovered, _, report = recover_state(path, snaps)
    assert recovered == store
    assert report.rung == "full-replay"
    assert report.records_replayed == len(COMMANDS)
    assert len(report.snapshots_rejected) == 1


def test_ladder_rung4_nothing_durable_recreates_under_config(tmp_path: Path) -> None:
    store, durable, report = recover_state(
        tmp_path / "absent.jsonl", tmp_path / "snaps", config=CONFIG
    )
    assert store.seq == 0
    assert durable == -1
    assert report.rung == "recreate"


def test_ladder_exhausted_compacted_journal_all_snapshots_corrupt(
    tmp_path: Path,
) -> None:
    # A trimmed journal cannot full-replay; with every snapshot corrupt
    # there is genuinely nothing durable left and recovery must say so.
    path, snaps, _ = compacted_world(tmp_path)
    for _, snap_file in list_snapshots(snaps):
        corrupt(snap_file)
    with pytest.raises(JournalError, match="nothing durable"):
        recover_state(path, snaps, config=CONFIG)


def test_ladder_exhausted_without_config(tmp_path: Path) -> None:
    with pytest.raises(JournalError, match="nothing durable"):
        recover_state(tmp_path / "absent.jsonl", tmp_path / "snaps")


def test_snapshot_only_rung_when_journal_header_lost(tmp_path: Path) -> None:
    path, snaps, live = compacted_world(tmp_path)
    # Keep only the seq-6 snapshot's state: records 7.. are lost with
    # the journal, so the durable state is the snapshot alone.
    reference = load_snapshot(snapshot_path(snaps, 6))
    path.write_bytes(b"")
    store, durable, report = recover_state(path, snaps)
    assert durable == -1
    assert report.rung == "snapshot-only"
    assert report.snapshot_seq == 6
    assert store == reference


def test_snapshot_older_than_journal_base_is_rejected(tmp_path: Path) -> None:
    # A snapshot too old to bridge to the trimmed tail must be skipped
    # with a recorded reason, not replayed into a gap.
    path, snaps, live = compacted_world(tmp_path)
    corrupt(snapshot_path(snaps, 6))
    # Forge the journal base past the older snapshot too.
    journal, store = Journal.recover(path, snapshot_dir=snaps)
    with journal:
        journal.rewrite_tail(6)
    with pytest.raises(JournalError, match="nothing durable"):
        recover_state(path, snaps)


# ----------------------------------------------------------------------
# Journal.recover integration
# ----------------------------------------------------------------------


def test_journal_recover_walks_the_ladder_and_continues(tmp_path: Path) -> None:
    path, snaps, live = compacted_world(tmp_path)
    corrupt(snapshot_path(snaps, 6))
    journal, store = Journal.recover(path, snapshot_dir=snaps)
    with journal:
        assert store == live
        assert journal.last_recovery is not None
        assert journal.last_recovery.rung == "snapshot+tail"
        assert journal.last_recovery.snapshot_seq == 4
        record = journal.append("register_user",
                                {"capacity": 1, "attributes": [4.0, 4.0]})
        assert record["seq"] == live.seq + 1
        store.apply(record)
    again, recovered = Journal.recover(path, snapshot_dir=snaps)
    again.close()
    assert recovered == store


def test_compacted_journal_refuses_recovery_without_snapshot_dir(
    tmp_path: Path,
) -> None:
    path, _, _ = compacted_world(tmp_path)
    with pytest.raises(JournalError, match="snapshot directory"):
        Journal.recover(path)


def test_snapshot_only_recovery_rewrites_the_journal(tmp_path: Path) -> None:
    path, snaps, _ = compacted_world(tmp_path)
    reference = load_snapshot(snapshot_path(snaps, 6))
    path.write_bytes(b"")  # the journal's header never became durable
    journal, store = Journal.recover(path, snapshot_dir=snaps)
    with journal:
        assert store == reference
        assert journal.base_seq == 6
        assert journal.seq == 6
        record = journal.append("register_user",
                                {"capacity": 1, "attributes": [4.0, 4.0]})
        store.apply(record)
    # The rewritten journal + snapshot now carry the full state.
    recovered, _, report = recover_state(path, snaps)
    assert report.rung == "snapshot+tail"
    assert recovered == store
