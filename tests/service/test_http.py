"""HTTP front-end: JSON API, status codes, overload shedding."""

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service.frontend import ArrangementService
from repro.service.http import make_server
from repro.service.store import StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)


@pytest.fixture()
def served(tmp_path: Path):
    service = ArrangementService.create(
        tmp_path / "j.jsonl", CONFIG, batch_ms=1.0
    )
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


def call(base: str, method: str, path: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def test_full_api_surface(served) -> None:
    base, _service = served
    assert call(base, "GET", "/healthz") == {"ok": True}
    event = call(
        base, "POST", "/events",
        {"capacity": 2, "attributes": [1.0, 1.0]},
    )["event"]
    rival = call(
        base, "POST", "/events",
        {"capacity": 1, "attributes": [9.0, 9.0], "conflicts": [event]},
    )["event"]
    user = call(
        base, "POST", "/users", {"capacity": 1, "attributes": [1.5, 1.5]}
    )["user"]
    assigned = call(base, "POST", "/assignments", {"user": user})
    assert assigned == {"user": user, "events": [event]}
    assert call(base, "GET", f"/assignments/{user}") == assigned
    state = call(base, "GET", "/state")
    assert state["n_events"] == 2
    assert state["n_assignments"] == 1
    assert len(state["digest"]) == 64
    call(base, "POST", f"/events/{event}/freeze")
    call(base, "POST", f"/events/{rival}/cancel")
    state = call(base, "GET", "/state")
    assert state["open_events"] == 0


def expect_http_error(base: str, method: str, path: str, payload=None) -> urllib.error.HTTPError:
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        call(base, method, path, payload)
    return excinfo.value


def test_client_errors_are_400_with_reason(served) -> None:
    base, _service = served
    error = expect_http_error(
        base, "POST", "/events", {"capacity": -3, "attributes": [1.0, 1.0]}
    )
    assert error.code == 400
    assert "non-negative" in json.loads(error.read())["error"]
    assert expect_http_error(base, "POST", "/assignments", {"user": 99}).code == 400
    assert expect_http_error(base, "POST", "/events/99/freeze").code == 400


def test_malformed_body_is_400(served) -> None:
    base, _service = served
    request = urllib.request.Request(
        base + "/events", data=b"[1, 2, 3]", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400


def test_unknown_routes_are_404(served) -> None:
    base, _service = served
    assert expect_http_error(base, "GET", "/nope").code == 404
    assert expect_http_error(base, "POST", "/events/0/explode").code == 404
    assert expect_http_error(base, "GET", "/assignments/not-an-int").code == 404


def test_overload_is_503_with_retry_after(tmp_path: Path) -> None:
    # One queue slot and a long coalescing window: the second request
    # arrives while the first still occupies the slot.
    service = ArrangementService.create(
        tmp_path / "j.jsonl", CONFIG, batch_ms=1500.0, max_pending=1
    )
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.port}"
    try:
        call(base, "POST", "/events", {"capacity": 2, "attributes": [1.0, 1.0]})
        first = call(base, "POST", "/users", {"capacity": 1, "attributes": [1.0, 1.0]})
        second = call(base, "POST", "/users", {"capacity": 1, "attributes": [2.0, 2.0]})
        results: list[dict] = []
        blocker = threading.Thread(
            target=lambda: results.append(
                call(base, "POST", "/assignments", {"user": first["user"]})
            )
        )
        blocker.start()
        deadline = threading.Event()
        # Wait until the first request owns the queue slot.
        for _ in range(200):
            if service.engine.pending:
                break
            deadline.wait(0.01)
        error = expect_http_error(
            base, "POST", "/assignments", {"user": second["user"]}
        )
        assert error.code == 503
        assert error.headers.get("Retry-After") == "1"
        blocker.join(timeout=30)
        assert results and results[0]["events"] == [0]
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)
