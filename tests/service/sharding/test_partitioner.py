"""ConflictPartitioner: incremental components, merge detection, stability."""

import pytest

from repro.exceptions import ServiceError
from repro.service.sharding import ConflictPartitioner


def test_events_start_as_singleton_components() -> None:
    part = ConflictPartitioner()
    for event in range(4):
        part.add_event(event)
    assert len(part) == 4
    assert all(part.component_of(e) == e for e in range(4))
    assert part.component_sizes() == {0: 1, 1: 1, 2: 1, 3: 1}
    assert part.merges == 0


def test_component_id_is_the_smallest_member() -> None:
    part = ConflictPartitioner()
    for event in range(5):
        part.add_event(event)
    part.add_edges(3, [1])
    part.add_edges(4, [3])
    assert part.component_of(4) == 1
    assert part.components()[1] == [1, 3, 4]
    # Joining in the opposite order lands on the same id.
    other = ConflictPartitioner()
    for event in range(5):
        other.add_event(event)
    other.add_edges(4, [3])
    other.add_edges(3, [1])
    assert other.components() == part.components()


def test_merge_targets_detects_cross_component_conflicts() -> None:
    part = ConflictPartitioner()
    for event in range(6):
        part.add_event(event)
    part.add_edges(1, [0])
    part.add_edges(3, [2])
    # A conflict set inside one component: single target, no merge needed.
    assert part.merge_targets([0, 1]) == [0]
    # Spanning two components: both ids, ascending.
    assert part.merge_targets([1, 3]) == [0, 2]
    assert part.merge_targets([]) == []


def test_add_edges_counts_distinct_merges() -> None:
    part = ConflictPartitioner()
    for event in range(5):
        part.add_event(event)
    part.add_edges(1, [0])
    assert part.merges == 1
    # 4 joins both {0,1} and {2}: two components merged away.
    assert part.add_edges(4, [1, 2]) == 2
    assert part.merges == 3
    # Re-adding an intra-component edge merges nothing.
    assert part.add_edges(4, [0]) == 0
    assert part.merges == 3


def test_unknown_events_are_rejected() -> None:
    part = ConflictPartitioner()
    part.add_event(0)
    with pytest.raises(ServiceError):
        part.add_event(0)
    with pytest.raises(ServiceError):
        part.component_of(1)
    with pytest.raises(ServiceError):
        part.add_edges(0, [7])
    assert 0 in part
    assert 1 not in part
