"""Component-merge rebalancing, and kill -9 at every op inside it.

The rebalance is the sharded service's one cross-shard mutation, so it
gets the same treatment bounded-time recovery got: an explicit
behavioural test of the merge protocol (drain, manifest entry, migrate,
tombstone) and a FaultFS crash-point sweep that kills the fleet before
*every* durability-relevant operation of a rebalancing workload,
materialises both post-crash worlds, and requires coordinator recovery
to reproduce a consistent, invariant-clean fleet that kept every
acknowledged assignment.
"""

from pathlib import Path

import pytest

from repro.exceptions import JournalError
from repro.robustness.faultfs import FaultFS, SimulatedCrash
from repro.service.sharding import ShardCoordinator
from repro.service.store import StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)

#: The virtual root every FaultFS run mounts; nothing real lives here.
ROOT = Path("/faultfs-virtual/fleet")


# ----------------------------------------------------------------------
# The explicit merge-rebalance protocol
# ----------------------------------------------------------------------


def build_split_fleet(root: Path) -> tuple[ShardCoordinator, list[int], list[int]]:
    """Two shards, one seated component each, ready to be merged."""
    coordinator = ShardCoordinator.create(root, CONFIG, 2, threaded=False)
    events = [
        coordinator.post_event(capacity=2, attributes=[1.0, 1.0]),
        coordinator.post_event(capacity=2, attributes=[9.0, 9.0]),
    ]
    users = []
    for corner in ([1.1, 0.9], [8.9, 9.1]):
        user = coordinator.register_user(capacity=1, attributes=corner)
        users.append(user)
        coordinator.request_assignment(user)
    return coordinator, events, users


def test_component_merge_triggers_a_rebalance(tmp_path: Path) -> None:
    coordinator, events, users = build_split_fleet(tmp_path / "fleet")
    with coordinator:
        pairs_before = coordinator.arrangement_state()["assignments"]
        assert len(pairs_before) == 2
        topology = coordinator.state_summary()["sharding"]
        assert topology["rebalances"] == 0
        assert [s["n_events"] for s in topology["per_shard"]] == [1, 1]

        bridge = coordinator.post_event(
            capacity=1, attributes=[5.0, 5.0], conflicts=events
        )
        topology = coordinator.state_summary()["sharding"]
        assert topology["rebalances"] == 1
        assert topology["merges"] == 2
        assert topology["components"] == 1
        last = topology["last_rebalance"]
        assert last is not None
        assert last["moved_events"] == 1
        assert last["target"] in (0, 1)
        assert last["from_shards"] == [1 - last["target"]]
        # All three events now live on the target; the source holds
        # only tombstoned husks (still counted in its store, retired
        # from the fleet's point of view).
        live = [
            s["n_events"] - s["retired_events"] for s in topology["per_shard"]
        ]
        assert sorted(live) == [0, 3]
        assert live[last["target"]] == 3
        source = topology["per_shard"][last["from_shards"][0]]
        assert source["retired_events"] == 1
        assert source["retired_users"] == 1
        coordinator.check_invariants()
        # Migration preserved every existing assignment verbatim.
        state = coordinator.arrangement_state()
        assert state["assignments"] == pairs_before
        assert state["events"][bridge]["conflicts"] == sorted(events)


def test_rebalance_preserves_frozen_flags_and_keeps_serving(
    tmp_path: Path,
) -> None:
    coordinator, events, users = build_split_fleet(tmp_path / "fleet")
    with coordinator:
        coordinator.freeze_event(events[1])
        coordinator.post_event(
            capacity=1, attributes=[5.0, 5.0], conflicts=events
        )
        state = coordinator.arrangement_state()
        assert state["events"][events[1]]["frozen"] is True
        assert state["events"][events[0]]["frozen"] is False
        # The merged component still accepts and seats new users.
        late = coordinator.register_user(capacity=1, attributes=[0.9, 1.1])
        assert coordinator.request_assignment(late)
        coordinator.check_invariants()


def test_recovery_after_rebalance_is_digest_exact(tmp_path: Path) -> None:
    root = tmp_path / "fleet"
    coordinator, events, _users = build_split_fleet(root)
    with coordinator:
        coordinator.post_event(
            capacity=1, attributes=[5.0, 5.0], conflicts=events
        )
        coordinator.run_pending_batch()
        live_digest = coordinator.arrangement_digest()
        rebalances = coordinator.rebalances

    with ShardCoordinator.recover(root, threaded=False) as recovered:
        assert recovered.arrangement_digest() == live_digest
        assert recovered.rebalances == rebalances
        recovered.check_invariants()


# ----------------------------------------------------------------------
# Kill -9 at every operation inside the rebalance
# ----------------------------------------------------------------------


def drive(fs: FaultFS, acked: list[tuple[int, tuple[int, ...]]]) -> None:
    """The rebalancing workload under fault injection.

    ``acked`` collects ``(user, events)`` the moment a blocking
    assignment request returns -- the durably journaled seats a crash at
    any later op must never lose (migration included).
    """
    coordinator = ShardCoordinator.create(ROOT, CONFIG, 2, fs=fs, threaded=False)
    events = [
        coordinator.post_event(capacity=2, attributes=[1.0, 1.0]),
        coordinator.post_event(capacity=2, attributes=[9.0, 9.0]),
    ]
    for corner in ([1.1, 0.9], [8.9, 9.1]):
        user = coordinator.register_user(capacity=1, attributes=corner)
        seats = coordinator.request_assignment(user)
        acked.append((user, seats))
    # The merge: drains both shards, appends the manifest redo entry,
    # migrates one component across shards.
    coordinator.post_event(capacity=1, attributes=[5.0, 5.0], conflicts=events)
    # And the fleet keeps working after the rebalance.
    late = coordinator.register_user(capacity=1, attributes=[0.9, 1.1])
    seats = coordinator.request_assignment(late)
    acked.append((late, seats))
    coordinator.close()


def test_reference_run_rebalances_and_covers_the_op_kinds() -> None:
    fs = FaultFS(ROOT)
    drive(fs, [])
    assert {"create", "write", "flush", "fsync"} <= set(fs.ops), set(fs.ops)
    assert fs.op_count > 0


def setup_op_count() -> int:
    """Ops consumed by fleet creation alone (manifest + shard journals).

    A crash inside this prefix can leave a fleet whose manifest or shard
    journals never became durably findable; recovery is then allowed to
    refuse (the operator re-creates an empty fleet). From the first
    command onwards every file exists durably, so recovery must succeed
    at every later crash point.
    """
    fs = FaultFS(ROOT)
    ShardCoordinator.create(ROOT, CONFIG, 2, fs=fs, threaded=False).close()
    return fs.op_count


def test_crash_sweep_during_rebalance_recovers_consistently(
    tmp_path: Path,
) -> None:
    reference = FaultFS(ROOT)
    reference_acked: list[tuple[int, tuple[int, ...]]] = []
    drive(reference, reference_acked)
    assert len(reference_acked) == 3
    creation_ops = setup_op_count()
    assert creation_ops < reference.op_count

    checked = 0
    for crash_at in range(1, reference.op_count + 1):
        variants = [False]
        if reference.ops[crash_at - 1] == "write":
            variants.append(True)  # the torn-write case
        for torn in variants:
            fs = FaultFS(ROOT, crash_at=crash_at, torn=torn)
            acked: list[tuple[int, tuple[int, ...]]] = []
            with pytest.raises(SimulatedCrash):
                drive(fs, acked)
            for world in ("durable", "cached"):
                label = f"k{crash_at}-{'torn' if torn else 'clean'}-{world}"
                target = tmp_path / label
                fs.materialise(target, world)
                try:
                    recovered = ShardCoordinator.recover(target, threaded=False)
                except JournalError:
                    # Tolerable only while the fleet was still being
                    # created -- nothing was acknowledged, and files may
                    # not have durable names yet.
                    assert crash_at <= creation_ops, label
                    assert not acked, label
                    continue
                try:
                    recovered.check_invariants()
                    # Nothing acknowledged may be lost -- including the
                    # seats a mid-crash migration was moving.
                    for user, seats in acked:
                        assert recovered.assignments_of(user) == seats, label
                    # Recovery is idempotent: a second pass over the
                    # (possibly rewritten) manifest lands bit-identically.
                    digest = recovered.arrangement_digest()
                finally:
                    recovered.close()
                second = ShardCoordinator.recover(target, threaded=False)
                try:
                    assert second.arrangement_digest() == digest, label
                finally:
                    second.close()
                checked += 1
    assert checked >= 2 * reference.op_count
