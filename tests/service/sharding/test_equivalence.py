"""Property: sharded and unsharded runs agree on partition-respecting load.

The sharding equivalence contract: for any clustered workload whose
users seat strictly inside their own cluster (what
:func:`~repro.service.sharding.workload.shardable_instance` constructs),
driving the identical command sequence through a shard fleet at *any*
shard count must end in the exact arrangement a single unsharded
service produces -- same global digest, not merely the same objective.
The fleet's synchronous request protocol (resolve every dirty shard,
then the target) mirrors the unsharded engine re-solving the whole open
remainder per batch, so per-batch solve order differences can never
leak into the final state.
"""

from __future__ import annotations

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.frontend import ArrangementService
from repro.service.sharding import (
    ShardCoordinator,
    shardable_instance,
    shardable_timeline,
)
from repro.service.store import StoreConfig


def moments_of(instance, timeline):
    """The replay's command stream: (time, kind, entity), time-ordered."""
    moments = []
    for event, t in enumerate(timeline.post_times):
        moments.append((float(t), 0, event))
    for user, t in enumerate(timeline.arrival_times):
        moments.append((float(t), 1, user))
    for event, t in enumerate(timeline.start_times):
        moments.append((float(t), 2, event))
    moments.sort()
    return moments


def drive_unsharded(path: Path, instance, moments) -> str:
    config = StoreConfig(
        dimension=instance.event_attributes.shape[1],
        t=instance.t,
        metric=instance.metric,
    )
    event_ids: dict[int, int] = {}
    with ArrangementService.create(path, config, threaded=False) as service:
        for _, kind, entity in moments:
            if kind == 0:
                conflicts = [
                    event_ids[w]
                    for w in sorted(instance.conflicts.conflicts_with(entity))
                    if w in event_ids
                ]
                event_ids[entity] = service.post_event(
                    capacity=int(instance.event_capacities[entity]),
                    attributes=[
                        float(x) for x in instance.event_attributes[entity]
                    ],
                    conflicts=conflicts,
                )
            elif kind == 1:
                user = service.register_user(
                    capacity=int(instance.user_capacities[entity]),
                    attributes=[
                        float(x) for x in instance.user_attributes[entity]
                    ],
                )
                service.request_assignment(user)
            else:
                service.freeze_event(event_ids[entity])
        service.run_pending_batch()
        return service.store.arrangement_digest()


def drive_sharded(root: Path, instance, moments, shards: int) -> str:
    config = StoreConfig(
        dimension=instance.event_attributes.shape[1],
        t=instance.t,
        metric=instance.metric,
    )
    event_ids: dict[int, int] = {}
    with ShardCoordinator.create(
        root, config, shards, threaded=False
    ) as coordinator:
        for _, kind, entity in moments:
            if kind == 0:
                conflicts = [
                    event_ids[w]
                    for w in sorted(instance.conflicts.conflicts_with(entity))
                    if w in event_ids
                ]
                event_ids[entity] = coordinator.post_event(
                    capacity=int(instance.event_capacities[entity]),
                    attributes=[
                        float(x) for x in instance.event_attributes[entity]
                    ],
                    conflicts=conflicts,
                )
            elif kind == 1:
                user = coordinator.register_user(
                    capacity=int(instance.user_capacities[entity]),
                    attributes=[
                        float(x) for x in instance.user_attributes[entity]
                    ],
                )
                coordinator.request_assignment(user)
            else:
                coordinator.freeze_event(event_ids[entity])
        coordinator.run_pending_batch()
        coordinator.check_invariants()
        return coordinator.arrangement_digest()


@settings(max_examples=15, deadline=None)
@given(
    n_components=st.integers(2, 5),
    events_per=st.integers(1, 3),
    users_per=st.integers(1, 5),
    dimension=st.integers(2, 4),
    seed=st.integers(0, 1_000),
    shards=st.integers(2, 4),
)
def test_sharded_digest_equals_unsharded_digest(
    n_components,
    events_per,
    users_per,
    dimension,
    seed,
    shards,
    tmp_path_factory,
) -> None:
    instance = shardable_instance(
        n_components, events_per, users_per, dimension=dimension, seed=seed
    )
    timeline = shardable_timeline(instance)
    moments = moments_of(instance, timeline)
    base = tmp_path_factory.mktemp("equiv")
    solo = drive_unsharded(base / "solo.jsonl", instance, moments)
    fleet = drive_sharded(base / "fleet", instance, moments, shards)
    assert fleet == solo


def test_single_shard_fleet_equals_unsharded(tmp_path: Path) -> None:
    # The degenerate fleet: one shard, every component colocated -- the
    # fair --shards 1 baseline used by the scaling comparisons.
    instance = shardable_instance(3, 2, 4, dimension=2, seed=7)
    timeline = shardable_timeline(instance)
    moments = moments_of(instance, timeline)
    solo = drive_unsharded(tmp_path / "solo.jsonl", instance, moments)
    fleet = drive_sharded(tmp_path / "fleet", instance, moments, 1)
    assert fleet == solo
