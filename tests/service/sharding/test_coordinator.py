"""ShardCoordinator: routing, placement, recovery, manifest reconciliation."""

import json
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import JournalError, ServiceError
from repro.service.http import make_server
from repro.service.sharding import MANIFEST_NAME, ShardCoordinator
from repro.service.store import StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)

#: Four well-separated corners; best-similarity routing is unambiguous.
CORNERS = [[1.0, 1.0], [9.0, 1.0], [1.0, 9.0], [9.0, 9.0]]


def make_fleet(root: Path, shards: int = 4) -> ShardCoordinator:
    return ShardCoordinator.create(root, CONFIG, shards, threaded=False)


def populate(coordinator: ShardCoordinator) -> tuple[list[int], list[int]]:
    """One event per corner, one capacity-1 user per corner, all seated."""
    events = [
        coordinator.post_event(capacity=2, attributes=corner)
        for corner in CORNERS
    ]
    users = []
    for corner in CORNERS:
        user = coordinator.register_user(
            capacity=1, attributes=[corner[0] + 0.1, corner[1] - 0.1]
        )
        users.append(user)
        coordinator.request_assignment(user)
    return events, users


def test_conflict_free_events_spread_least_loaded(tmp_path: Path) -> None:
    with make_fleet(tmp_path / "fleet") as coordinator:
        events, _users = populate(coordinator)
        summary = coordinator.state_summary()
        topology = summary["sharding"]
        assert topology["shards"] == 4
        assert topology["components"] == 4
        # One singleton component per shard: perfectly balanced.
        assert [s["n_events"] for s in topology["per_shard"]] == [1, 1, 1, 1]
        assert [s["n_users"] for s in topology["per_shard"]] == [1, 1, 1, 1]
        assert summary["n_assignments"] == 4
        coordinator.check_invariants()


def test_each_user_is_seated_on_its_corner_event(tmp_path: Path) -> None:
    with make_fleet(tmp_path / "fleet") as coordinator:
        events, users = populate(coordinator)
        for event, user in zip(events, users):
            assert coordinator.assignments_of(user) == (event,)


def test_conflicting_event_lands_on_its_components_shard(tmp_path: Path) -> None:
    with make_fleet(tmp_path / "fleet") as coordinator:
        events, _users = populate(coordinator)
        rival = coordinator.post_event(
            capacity=1, attributes=[1.2, 1.2], conflicts=[events[0]]
        )
        topology = coordinator.state_summary()["sharding"]
        assert topology["components"] == 4
        assert sorted(topology["component_sizes"], reverse=True) == [2, 1, 1, 1]
        # Both component members live on one shard.
        sizes = sorted(s["n_events"] for s in topology["per_shard"])
        assert sizes == [1, 1, 1, 2]
        coordinator.check_invariants()
        # Freezes and cancels route through the coordinator to the
        # owning shard (a frozen event cannot be cancelled, so each
        # action gets its own target).
        coordinator.freeze_event(rival)
        coordinator.cancel_event(events[1])


def test_recovery_round_trip_is_digest_exact(tmp_path: Path) -> None:
    root = tmp_path / "fleet"
    with make_fleet(root) as coordinator:
        events, users = populate(coordinator)
        coordinator.post_event(
            capacity=1, attributes=[1.2, 1.2], conflicts=[events[0]]
        )
        coordinator.run_pending_batch()
        live_digest = coordinator.arrangement_digest()
        live_state = coordinator.arrangement_state()
        live_seq = coordinator.seq

    with ShardCoordinator.recover(root, threaded=False) as recovered:
        assert recovered.arrangement_digest() == live_digest
        assert recovered.arrangement_state() == live_state
        assert recovered.seq == live_seq
        recovered.check_invariants()
        # The fleet keeps serving: routing state survived too.
        late = recovered.register_user(capacity=1, attributes=[8.9, 8.9])
        assert recovered.request_assignment(late)


def test_open_creates_then_recovers(tmp_path: Path) -> None:
    root = tmp_path / "fleet"
    with ShardCoordinator.open(root, CONFIG, 2, threaded=False) as coordinator:
        populate(coordinator)
        digest = coordinator.arrangement_digest()
    # Second open: manifest exists, config/shards not needed.
    with ShardCoordinator.open(root, threaded=False) as coordinator:
        assert coordinator.arrangement_digest() == digest
    with pytest.raises(ServiceError):
        ShardCoordinator.open(tmp_path / "nowhere", threaded=False)


def test_trailing_unacked_manifest_entry_is_dropped(tmp_path: Path) -> None:
    root = tmp_path / "fleet"
    with make_fleet(root) as coordinator:
        populate(coordinator)
        digest = coordinator.arrangement_digest()
        entries_before = coordinator.manifest.n
        # Crash window: the manifest entry for the next event (gid 4)
        # was fsync'd but the process died before the shard journaled
        # the command.
        coordinator.manifest.append(
            "event", {"gid": 4, "shard": 0}
        )

    with ShardCoordinator.recover(root, threaded=False) as recovered:
        assert recovered.arrangement_digest() == digest
        assert recovered.manifest.n == entries_before
        recovered.check_invariants()
        # The next placement reuses the dropped slot cleanly.
        gid = recovered.post_event(capacity=1, attributes=[5.0, 5.0])
        assert recovered.manifest.n == entries_before + 1
        assert gid == 4


def test_non_trailing_manifest_hole_is_an_error(tmp_path: Path) -> None:
    root = tmp_path / "fleet"
    with make_fleet(root) as coordinator:
        populate(coordinator)
        # Two phantom entries: the first is a non-trailing hole (the
        # second refers to a later n), which no crash of the serialised
        # coordinator can produce -- recovery must refuse to guess.
        coordinator.manifest.append("event", {"gid": 4, "shard": 0})
        coordinator.manifest.append("user", {"gid": 4, "shard": 1})

    with pytest.raises(JournalError):
        ShardCoordinator.recover(root, threaded=False)


def test_corrupt_manifest_tail_line_is_truncated(tmp_path: Path) -> None:
    root = tmp_path / "fleet"
    with make_fleet(root) as coordinator:
        populate(coordinator)
        digest = coordinator.arrangement_digest()
    manifest_path = root / MANIFEST_NAME
    with open(manifest_path, "ab") as handle:
        handle.write(b'{"n": 999, "kind": "eve')  # torn final record
    with ShardCoordinator.recover(root, threaded=False) as recovered:
        assert recovered.arrangement_digest() == digest


def test_http_state_exposes_shard_topology(tmp_path: Path) -> None:
    coordinator = make_fleet(tmp_path / "fleet")
    server = make_server(coordinator)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        base = f"http://127.0.0.1:{server.port}"

        def call(method: str, path: str, payload: dict | None = None) -> dict:
            data = json.dumps(payload).encode() if payload is not None else None
            request = urllib.request.Request(
                base + path,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                return json.loads(response.read())

        event = call("POST", "/events", {"capacity": 1, "attributes": [1.0, 1.0]})[
            "event"
        ]
        user = call("POST", "/users", {"capacity": 1, "attributes": [1.1, 0.9]})[
            "user"
        ]
        assigned = call("POST", "/assignments", {"user": user})
        assert event in assigned["events"]
        state = call("GET", "/state")
        topology = state["sharding"]
        assert topology["shards"] == 4
        assert topology["components"] == 1
        assert len(topology["per_shard"]) == 4
        assert state["n_assignments"] == 1
    finally:
        server.shutdown()
        server.server_close()
        coordinator.close()
        thread.join(timeout=10)


def test_compaction_reports_per_shard_stats(tmp_path: Path) -> None:
    with make_fleet(tmp_path / "fleet") as coordinator:
        populate(coordinator)
        stats = coordinator.compact()
        payload = stats.to_json()
        assert len(payload["shards"]) == 4
        coordinator.check_invariants()
