"""MicroBatchEngine: batching, admission control, quality guarantees."""

from pathlib import Path

import pytest

from repro.exceptions import ServiceError, ServiceOverloadedError
from repro.service.engine import MicroBatchEngine, PendingRequest
from repro.service.frontend import ArrangementService
from repro.service.journal import replay
from repro.service.store import StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)


def sync_service(tmp_path: Path, **kwargs) -> ArrangementService:
    return ArrangementService.create(
        tmp_path / "j.jsonl", CONFIG, threaded=False, **kwargs
    )


def test_blocking_request_is_assigned(tmp_path: Path) -> None:
    with sync_service(tmp_path) as service:
        event = service.post_event(2, [1.0, 1.0])
        user = service.register_user(1, [1.5, 1.5])
        assert service.request_assignment(user) == (event,)
        assert service.assignments_of(user) == (event,)
        assert service.engine.batches_solved == 1


def test_burst_coalesces_into_one_batch_and_one_commit(tmp_path: Path) -> None:
    with sync_service(tmp_path) as service:
        service.post_event(4, [5.0, 5.0])
        requests = []
        for k in range(4):
            user = service.register_user(1, [4.0 + 0.5 * k, 5.0])
            request = service.request_assignment(user, wait=False)
            assert isinstance(request, PendingRequest)
            requests.append(request)
        seq_before = service.store.seq
        assert service.run_pending_batch() == 4
        assert service.engine.batches_solved == 1
        # One commit_batch record covers the whole burst.
        assert service.store.seq == seq_before + 1
        assert service.store.batches_committed == 1
        for request in requests:
            assert request.wait(1.0) == (0,)
            assert request.latency_s is not None and request.latency_s >= 0


def test_admission_control_rejects_before_journaling(tmp_path: Path) -> None:
    with sync_service(tmp_path, max_pending=1) as service:
        service.post_event(1, [1.0, 1.0])
        user = service.register_user(1, [1.0, 1.0])
        service.request_assignment(user, wait=False)
        seq_before = service.store.seq
        with pytest.raises(ServiceOverloadedError, match="queue full"):
            service.request_assignment(user, wait=False)
        assert service.store.seq == seq_before  # rejected pre-journal
        service.run_pending_batch()


def test_unassignable_request_commits_nothing(tmp_path: Path) -> None:
    with sync_service(tmp_path) as service:
        service.post_event(1, [0.0, 0.0])
        # Maximum distance in [0,10]^2 => sim exactly 0 => no pair.
        user = service.register_user(1, [10.0, 10.0])
        assert service.request_assignment(user) == ()
        assert service.store.batches_committed == 0
        assert service.engine.batches_solved == 1


def test_rebatching_may_reshuffle_open_seats_only(tmp_path: Path) -> None:
    with sync_service(tmp_path) as service:
        scarce = service.post_event(1, [5.0, 5.0])
        far = service.register_user(1, [8.0, 8.0])
        assert service.request_assignment(far) == (scarce,)
        # A better-matched user shows up: the engine may move the seat.
        near = service.register_user(1, [5.5, 5.5])
        assert service.request_assignment(near) == (scarce,)
        assert service.assignments_of(far) == ()
        service.check_invariants()


def test_frozen_events_are_untouchable(tmp_path: Path) -> None:
    with sync_service(tmp_path) as service:
        frozen = service.post_event(1, [5.0, 5.0])
        keeper = service.register_user(1, [8.0, 8.0])
        assert service.request_assignment(keeper) == (frozen,)
        service.freeze_event(frozen)
        # The perfectly-matched latecomer cannot displace the frozen seat.
        near = service.register_user(1, [5.0, 5.0])
        assert service.request_assignment(near) == ()
        assert service.assignments_of(keeper) == (frozen,)


def test_frozen_commitments_block_conflicting_open_events(tmp_path: Path) -> None:
    with sync_service(tmp_path) as service:
        first = service.post_event(1, [5.0, 5.0])
        user = service.register_user(2, [5.0, 5.0])
        assert service.request_assignment(user) == (first,)
        service.freeze_event(first)
        # An open event conflicting with the user's frozen commitment
        # must never be handed to them, however good the similarity.
        rival = service.post_event(1, [5.0, 5.0], conflicts=[first])
        assert service.request_assignment(user) == (first,)
        assert service.assignments_of(user) == (first,)
        service.check_invariants()


def test_quality_never_regresses_across_batches(tmp_path: Path) -> None:
    with sync_service(tmp_path) as service:
        service.post_event(2, [3.0, 3.0])
        service.post_event(2, [7.0, 7.0])
        best_so_far = 0.0
        for k in range(6):
            user = service.register_user(1, [2.0 + k, 8.0 - k])
            service.request_assignment(user)
            now = service.store.max_sum()
            assert now >= best_so_far - 1e-12
            best_so_far = now
        service.check_invariants()


def test_every_commit_is_replayable(tmp_path: Path) -> None:
    with sync_service(tmp_path) as service:
        service.post_event(2, [2.0, 2.0])
        service.post_event(1, [8.0, 8.0])
        for k in range(5):
            user = service.register_user(1, [1.0 + 2 * k, 9.0 - 2 * k])
            service.request_assignment(user)
        service.cancel_event(1)
        live = service.store.digest()
    recovered, _ = replay(tmp_path / "j.jsonl")
    assert recovered.digest() == live


def test_threaded_engine_serves_and_drains_on_close(tmp_path: Path) -> None:
    service = ArrangementService.create(
        tmp_path / "j.jsonl", CONFIG, threaded=True, batch_ms=1.0
    )
    with service:
        event = service.post_event(2, [1.0, 1.0])
        user = service.register_user(1, [1.0, 1.0])
        assert service.request_assignment(user, timeout=30.0) == (event,)
        straggler = service.register_user(1, [1.2, 1.2])
        request = service.request_assignment(straggler, wait=False)
    # close() stops the engine after one final batch: no lost requests.
    assert request.done
    with pytest.raises(ServiceError, match="closed"):
        service.post_event(1, [1.0, 1.0])


def test_engine_parameter_validation(tmp_path: Path) -> None:
    with sync_service(tmp_path) as service:
        with pytest.raises(ServiceError, match="batch_ms"):
            MicroBatchEngine(service, batch_ms=-1.0)
        with pytest.raises(ServiceError, match="solve_timeout"):
            MicroBatchEngine(service, solve_timeout=0.0)
        with pytest.raises(ServiceError, match="max_pending"):
            MicroBatchEngine(service, max_pending=0)


def test_store_journal_seq_mismatch_is_refused(tmp_path: Path) -> None:
    from repro.service.journal import Journal
    from repro.service.store import ArrangementStore

    journal = Journal.create(tmp_path / "j.jsonl", CONFIG)
    store = ArrangementStore(CONFIG)
    store.apply({"seq": 1, "cmd": "register_user", "capacity": 1,
                 "attributes": [1.0, 1.0]})
    with pytest.raises(ServiceError, match="does not match"):
        ArrangementService(store, journal, threaded=False)
    journal.close()
