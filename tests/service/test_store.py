"""ArrangementStore: commands, deltas, invariants, canonical state."""

import numpy as np
import pytest

from repro.exceptions import JournalError, ServiceError
from repro.service.store import ArrangementStore, Delta, StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)


def fresh_store() -> ArrangementStore:
    return ArrangementStore(CONFIG)


def apply_next(store: ArrangementStore, cmd: str, **args) -> None:
    store.apply({"seq": store.seq + 1, "cmd": cmd, **args})


def populated_store() -> ArrangementStore:
    store = fresh_store()
    apply_next(store, "post_event", capacity=2, attributes=[1.0, 1.0])
    apply_next(store, "post_event", capacity=1, attributes=[9.0, 9.0], conflicts=[0])
    apply_next(store, "register_user", capacity=2, attributes=[1.5, 1.5])
    apply_next(store, "register_user", capacity=1, attributes=[8.5, 8.5])
    return store


def test_entities_accumulate_with_stable_ids() -> None:
    store = populated_store()
    assert store.n_events == 2
    assert store.n_users == 2
    assert store.seq == 4
    assert store.event_capacity(0) == 2
    assert store.user_capacity(1) == 1
    assert store.conflicts_between(0, 1) and store.conflicts_between(1, 0)
    assert store.open_events() == [0, 1]


def test_apply_rejects_out_of_order_seq() -> None:
    store = populated_store()
    with pytest.raises(JournalError, match="does not follow"):
        store.apply({"seq": store.seq + 2, "cmd": "request_assignment", "user": 0})
    with pytest.raises(JournalError, match="does not follow"):
        store.apply({"seq": store.seq, "cmd": "request_assignment", "user": 0})


def test_apply_rejects_unknown_command() -> None:
    store = populated_store()
    with pytest.raises(JournalError, match="unknown journal command"):
        store.apply({"seq": store.seq + 1, "cmd": "drop_table"})


def test_request_assignment_only_counts() -> None:
    store = populated_store()
    before = store.canonical_state()
    apply_next(store, "request_assignment", user=0)
    after = store.canonical_state()
    assert after["requests_seen"] == before["requests_seen"] + 1
    before["requests_seen"] = after["requests_seen"]
    before["seq"] = after["seq"]
    assert before == after  # nothing else moved


@pytest.mark.parametrize(
    "cmd,args,match",
    [
        ("post_event", {"capacity": -1, "attributes": [1.0, 1.0]}, "non-negative"),
        ("post_event", {"capacity": 1, "attributes": [1.0]}, "length-2"),
        ("post_event", {"capacity": 1, "attributes": [1.0, 99.0]}, "outside"),
        (
            "post_event",
            {"capacity": 1, "attributes": [1.0, float("nan")]},
            "finite",
        ),
        (
            "post_event",
            {"capacity": 1, "attributes": [1.0, 1.0], "conflicts": [7]},
            "unknown event",
        ),
        ("register_user", {"capacity": "2", "attributes": [1.0, 1.0]}, "capacity"),
        ("request_assignment", {"user": 99}, "unknown user"),
        ("request_assignment", {"user": "0"}, "unknown user"),
        ("freeze_event", {"event": 99}, "unknown event"),
        ("definitely_not_a_command", {}, "unknown command"),
    ],
)
def test_validate_command_rejects_bad_input(cmd: str, args: dict, match: str) -> None:
    store = populated_store()
    with pytest.raises(ServiceError, match=match):
        store.validate_command(cmd, args)


def test_lifecycle_transitions_are_guarded() -> None:
    store = populated_store()
    apply_next(store, "cancel_event", event=1)
    with pytest.raises(ServiceError, match="cancelled"):
        store.validate_command("freeze_event", {"event": 1})
    with pytest.raises(ServiceError, match="already cancelled"):
        store.validate_command("cancel_event", {"event": 1})
    apply_next(store, "freeze_event", event=0)
    with pytest.raises(ServiceError, match="frozen"):
        store.validate_command("cancel_event", {"event": 0})


def test_delta_apply_revert_roundtrip() -> None:
    store = populated_store()
    before = store.digest()
    delta = Delta(assigns=((0, 0), (1, 1)))
    store.apply_delta(delta)
    assert store.events_of(0) == {0}
    assert store.event_remaining(0) == 1
    assert store.user_remaining(1) == 0
    assert store.n_assignments == 2
    store.revert_delta(delta)
    assert store.digest() == before


def test_infeasible_delta_rolls_back_cleanly() -> None:
    store = populated_store()
    store.apply_delta(Delta(assigns=((0, 0),)))
    before = store.digest()
    # Second assign conflicts with user 0's standing event 0.
    with pytest.raises(ServiceError, match="infeasible"):
        store.apply_delta(Delta(assigns=((1, 1), (1, 0))))
    assert store.digest() == before
    store.check_invariants()


def test_delta_unassign_of_unmatched_pair_is_rejected() -> None:
    store = populated_store()
    with pytest.raises(ServiceError, match="unmatched"):
        store.apply_delta(Delta(unassigns=((0, 0),)))


def test_cancel_releases_every_seat() -> None:
    store = populated_store()
    store.apply_delta(Delta(assigns=((0, 0),)))
    apply_next(store, "cancel_event", event=0)
    assert store.is_cancelled(0)
    assert store.events_of(0) == frozenset()
    assert store.user_remaining(0) == 2
    assert store.n_assignments == 0
    store.check_invariants()


def test_can_assign_enforces_every_guard() -> None:
    store = populated_store()
    assert store.can_assign(0, 0)
    assert not store.can_assign(5, 0)  # unknown event
    store.apply_delta(Delta(assigns=((0, 0),)))
    assert not store.can_assign(0, 0)  # already matched
    assert not store.can_assign(1, 0)  # conflicts with standing event 0
    apply_next(store, "freeze_event", event=1)
    assert not store.can_assign(1, 1)  # frozen


def test_sim_matches_eq1_formula() -> None:
    store = populated_store()
    # Eq. (1): 1 - ||lv - lu|| / sqrt(d * T^2), d=2, T=10.
    expected = 1.0 - np.hypot(0.5, 0.5) / np.sqrt(2 * 10.0**2)
    assert store.sim(0, 0) == pytest.approx(expected)
    row = store.sim_row(0)
    assert row[0] == pytest.approx(expected)


def test_snapshot_zeroes_cancelled_capacity() -> None:
    store = populated_store()
    apply_next(store, "cancel_event", event=1)
    instance = store.snapshot_instance()
    assert instance.n_events == 2  # slot kept, id space stable
    assert instance.event_capacities[1] == 0
    assert instance.conflicts.pairs == frozenset({(0, 1)})


def test_invariant_checker_catches_counter_drift() -> None:
    store = populated_store()
    store.apply_delta(Delta(assigns=((0, 0),)))
    store.check_invariants()
    store._event_remaining[0] += 1
    with pytest.raises(ServiceError, match="drift"):
        store.check_invariants()


def test_same_records_mean_equal_stores() -> None:
    a, b = populated_store(), populated_store()
    assert a == b
    assert a.digest() == b.digest()
    apply_next(a, "request_assignment", user=0)
    assert a != b
    assert a.digest() != b.digest()


def test_stores_are_unhashable() -> None:
    with pytest.raises(TypeError):
        hash(populated_store())


def test_config_round_trip_and_validation() -> None:
    assert StoreConfig.from_json(CONFIG.to_json()) == CONFIG
    with pytest.raises(JournalError, match="malformed"):
        StoreConfig.from_json({"dimension": "wide"})
    with pytest.raises(ServiceError, match="dimension"):
        StoreConfig(dimension=0)
    with pytest.raises(ServiceError, match="bound t"):
        StoreConfig(dimension=2, t=0.0)


def test_delta_json_round_trip() -> None:
    delta = Delta(assigns=((0, 1), (2, 3)), unassigns=((4, 5),))
    assert Delta.from_json(delta.to_json()) == delta
    assert not Delta()
    assert delta.reverse().reverse() == delta
    with pytest.raises(JournalError, match="malformed delta"):
        Delta.from_json({"assign": [["x", "y"]]})
