"""``geacc replay``: timeline load generation, scoring, CLI wiring."""

from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core.bounds import relaxation_bound
from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.datagen.synthetic import generate_instance
from repro.exceptions import ServiceError
from repro.experiments.config import get_scale
from repro.service.loadgen import replay_timeline
from repro.simulation.workload import random_timeline


def small_workload(seed: int = 0):
    instance = generate_instance(get_scale("smoke").default, seed)
    rng = np.random.default_rng(seed)
    timeline = random_timeline(instance, rng, horizon=50.0)
    return instance, timeline


def test_replay_reports_latency_and_quality(tmp_path: Path) -> None:
    instance, timeline = small_workload()
    report = replay_timeline(
        instance, timeline, tmp_path / "replay.jsonl", batch_ms=1.0
    )
    assert report.n_requests == instance.n_users - report.overloaded
    assert report.n_batches >= 1
    assert report.replay_verified
    assert 0 < report.p50_ms <= report.p99_ms <= report.max_ms
    assert 0 < report.achieved_max_sum <= report.bound + 1e-9
    assert 0 < report.ratio <= 1.0 + 1e-9
    assert report.bound == pytest.approx(float(relaxation_bound(instance)))
    rendered = report.render()
    assert "ratio" in rendered and "p99" in rendered
    payload = report.to_json()
    assert payload["ratio"] == report.ratio
    assert payload["latency_ms"]["p50"] == report.p50_ms


def test_micro_batching_beats_greedy_arrival_baseline(tmp_path: Path) -> None:
    # The acceptance bar: on the default random_timeline workload the
    # re-solving engine must be at least as good as first-come
    # first-served greedy on the same timeline and seed.
    instance, timeline = small_workload(seed=0)
    report = replay_timeline(
        instance, timeline, tmp_path / "replay.jsonl", batch_ms=1.0
    )
    assert report.ratio >= report.baseline_ratio - 1e-12


def test_matrix_only_instances_are_rejected(tmp_path: Path) -> None:
    instance = Instance.from_matrix(
        np.array([[0.5]]),
        np.array([1]),
        np.array([1]),
        ConflictGraph(1, []),
    )
    timeline = random_timeline(instance, np.random.default_rng(0), horizon=50.0)
    with pytest.raises(ServiceError, match="attribute-backed"):
        replay_timeline(instance, timeline, tmp_path / "replay.jsonl")


def test_unknown_bound_is_rejected(tmp_path: Path) -> None:
    instance, timeline = small_workload()
    with pytest.raises(ServiceError, match="unknown bound"):
        replay_timeline(
            instance, timeline, tmp_path / "replay.jsonl", bound="psychic"
        )


def test_cli_replay_runs_and_gates_on_baseline(tmp_path: Path, capsys) -> None:
    journal = tmp_path / "replay.jsonl"
    code = main(
        [
            "replay",
            "--events", "8",
            "--users", "40",
            "--seed", "0",
            "--horizon", "50",
            "--batch-ms", "1",
            "--journal", str(journal),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "replay verified" in out
    assert "engine >= baseline" in out
    assert journal.exists()
