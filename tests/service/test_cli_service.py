"""CLI surfaces of the durability layer: diagnostics and ``geacc compact``.

Satellite guarantees: ``geacc serve`` / ``geacc replay`` exit nonzero
with a one-line diagnostic on a :class:`JournalError` (no traceback for
an operational error), and ``geacc compact`` snapshots + trims a
journal offline.
"""

import json
from pathlib import Path

from repro.cli import main
from repro.service.journal import Journal
from repro.service.snapshot import list_snapshots
from repro.service.store import ArrangementStore, StoreConfig

CONFIG = StoreConfig(dimension=2, t=10.0)


def write_journal(path: Path, users: int = 3) -> ArrangementStore:
    journal = Journal.create(path, CONFIG)
    store = ArrangementStore(CONFIG)
    with journal:
        for index in range(users):
            store.apply(
                journal.append(
                    "register_user",
                    {"capacity": 1, "attributes": [float(index), 1.0]},
                )
            )
    return store


def corrupt_journal(path: Path) -> None:
    path.write_text(json.dumps({"format": "not-a-journal"}) + "\n")


def test_serve_exits_2_with_one_line_diagnostic(tmp_path: Path, capsys) -> None:
    journal = tmp_path / "j.jsonl"
    corrupt_journal(journal)
    code = main(["serve", "--journal", str(journal), "--port", "0"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("geacc serve: cannot recover:")
    assert len(captured.err.strip().splitlines()) == 1
    assert "Traceback" not in captured.err
    assert "listening" not in captured.out  # it never bound a socket


def test_replay_exits_2_with_one_line_diagnostic(tmp_path: Path, capsys) -> None:
    journal = tmp_path / "replay.jsonl"
    journal.write_bytes(b"occupied")  # journal creation will refuse this
    code = main(
        [
            "replay",
            "--events", "4",
            "--users", "8",
            "--seed", "0",
            "--horizon", "50",
            "--journal", str(journal),
        ]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("geacc replay: journal error:")
    assert len(captured.err.strip().splitlines()) == 1
    assert "Traceback" not in captured.err


def test_compact_trims_and_reports(tmp_path: Path, capsys) -> None:
    journal = tmp_path / "j.jsonl"
    live = write_journal(journal, users=5)
    bytes_before = len(journal.read_bytes())
    code = main(["compact", "--journal", str(journal)])
    out = capsys.readouterr().out
    assert code == 0
    assert "geacc compact: snapshot seq=5" in out
    snaps = list_snapshots(f"{journal}.snapshots")
    assert [seq for seq, _ in snaps] == [5]
    assert len(journal.read_bytes()) < bytes_before
    # The compacted journal + snapshot still recover the exact state.
    recovered_journal, store = Journal.recover(
        journal, snapshot_dir=f"{journal}.snapshots"
    )
    recovered_journal.close()
    assert store == live


def test_compact_twice_honours_retention(tmp_path: Path, capsys) -> None:
    journal = tmp_path / "j.jsonl"
    write_journal(journal, users=2)
    assert main(["compact", "--journal", str(journal)]) == 0
    # Grow the journal so the second snapshot lands on a later seq.
    recovered, store = Journal.recover(
        journal, snapshot_dir=f"{journal}.snapshots"
    )
    with recovered:
        store.apply(
            recovered.append(
                "register_user", {"capacity": 1, "attributes": [9.0, 9.0]}
            )
        )
    assert main(["compact", "--journal", str(journal), "--retain", "1"]) == 0
    capsys.readouterr()
    assert [seq for seq, _ in list_snapshots(f"{journal}.snapshots")] == [3]


def test_compact_exits_2_on_journal_error(tmp_path: Path, capsys) -> None:
    journal = tmp_path / "j.jsonl"
    corrupt_journal(journal)
    code = main(["compact", "--journal", str(journal)])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("geacc compact: cannot recover:")
    assert "Traceback" not in captured.err
