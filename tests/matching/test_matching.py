"""Tests for the classical bipartite-matching substrate.

Cross-checked against networkx and against the GEACC solvers on the
conflict-free unit-capacity special case (the paper's Section I claim
that GEACC then reduces to weighted bipartite matching).
"""

import networkx as nx
import numpy as np
import pytest

from repro.core.algorithms import ILPGEACC, MinCostFlowGEACC
from repro.core.model import Instance
from repro.matching import max_weight_matching, maximum_matching


class TestMaxWeightMatching:
    def test_hand_example(self):
        weights = np.array([[3.0, 1.0], [2.0, 4.0]])
        pairs, total = max_weight_matching(weights)
        assert pairs == [(0, 0), (1, 1)]
        assert total == pytest.approx(7.0)

    def test_prefers_leaving_unmatched_over_negative(self):
        weights = np.array([[-1.0, 2.0], [3.0, -5.0]])
        pairs, total = max_weight_matching(weights)
        assert pairs == [(0, 1), (1, 0)]
        assert total == pytest.approx(5.0)

    def test_all_nonpositive_yields_empty(self):
        pairs, total = max_weight_matching(np.array([[-1.0, 0.0]]))
        assert pairs == []
        assert total == 0.0

    def test_rectangular_matrices(self):
        weights = np.array([[5.0, 1.0, 2.0]])
        pairs, total = max_weight_matching(weights)
        assert pairs == [(0, 0)]
        assert total == pytest.approx(5.0)

    def test_empty(self):
        assert max_weight_matching(np.zeros((0, 3))) == ([], 0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            max_weight_matching(np.zeros(3))

    def test_is_a_matching(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            weights = rng.uniform(-1, 1, (6, 8))
            pairs, _ = max_weight_matching(weights)
            lefts = [i for i, _ in pairs]
            rights = [j for _, j in pairs]
            assert len(lefts) == len(set(lefts))
            assert len(rights) == len(set(rights))

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        weights = np.round(rng.uniform(0, 1, (5, 7)), 3)
        _, total = max_weight_matching(weights)
        graph = nx.Graph()
        for i in range(5):
            for j in range(7):
                if weights[i, j] > 0:
                    graph.add_edge(("l", i), ("r", j), weight=weights[i, j])
        nx_pairs = nx.max_weight_matching(graph)
        nx_total = sum(graph[a][b]["weight"] for a, b in nx_pairs)
        assert total == pytest.approx(nx_total, abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_geacc_special_case(self, seed):
        """Conflict-free, unit-capacity GEACC == max-weight matching."""
        rng = np.random.default_rng(seed + 50)
        sims = rng.uniform(0, 1, (5, 6))
        instance = Instance.from_matrix(
            sims, np.ones(5, dtype=int), np.ones(6, dtype=int)
        )
        _, matching_total = max_weight_matching(sims)
        mcf = MinCostFlowGEACC().solve(instance).max_sum()
        ilp = ILPGEACC().solve(instance).max_sum()
        assert mcf == pytest.approx(matching_total, abs=1e-9)
        assert ilp == pytest.approx(matching_total, abs=1e-6)


class TestHopcroftKarp:
    def test_perfect_matching(self):
        edges = [(0, 1), (1, 0), (2, 2)]
        assert maximum_matching(3, 3, edges) == [(0, 1), (1, 0), (2, 2)]

    def test_requires_augmenting_path(self):
        # Greedy left-to-right would match (0,0) and block vertex 1.
        edges = [(0, 0), (0, 1), (1, 0)]
        matching = maximum_matching(2, 2, edges)
        assert len(matching) == 2

    def test_empty_graph(self):
        assert maximum_matching(3, 3, []) == []

    def test_out_of_range_edge(self):
        with pytest.raises(ValueError):
            maximum_matching(2, 2, [(0, 5)])

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_cardinality(self, seed):
        rng = np.random.default_rng(seed + 200)
        n_left, n_right = 8, 9
        edges = [
            (int(i), int(j))
            for i in range(n_left)
            for j in range(n_right)
            if rng.random() < 0.3
        ]
        ours = len(maximum_matching(n_left, n_right, edges))
        graph = nx.Graph()
        graph.add_nodes_from(("l", i) for i in range(n_left))
        graph.add_edges_from((("l", i), ("r", j)) for i, j in edges)
        expected = len(
            nx.bipartite.maximum_matching(
                graph, top_nodes=[("l", i) for i in range(n_left)]
            )
        ) // 2
        assert ours == expected

    def test_duplicate_edges_harmless(self):
        matching = maximum_matching(1, 1, [(0, 0), (0, 0)])
        assert matching == [(0, 0)]
