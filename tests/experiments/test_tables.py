"""Tests for the Table II / Table III regenerators."""

from repro.experiments.tables import (
    capacity_statistics,
    table2_real_datasets,
    table3_synthetic_config,
)


def test_table2_contains_all_cities_and_cardinalities():
    text = table2_real_datasets(seed=0)
    for token in ("vancouver", "auckland", "singapore",
                  "225", "2012", "37", "569", "87", "1500"):
        assert token in text


def test_table3_marks_defaults():
    text = table3_synthetic_config()
    assert "*100*" in text      # default |V|
    assert "*1000*" in text     # default |U|
    assert "*20*" in text       # default d
    assert "*0.25*" in text     # default conflict ratio
    assert "*50*" in text       # default max c_v
    assert "*4*" in text        # default max c_u
    assert "100000" in text.replace(",", "").replace("_", "")


def test_capacity_statistics_close_to_spec():
    text = capacity_statistics(seed=1)
    lines = [line for line in text.splitlines() if "Uniform[1,50]" in line]
    assert lines
    # Generated mean for U[1,50] should be near 25.5.
    cells = lines[0].split()
    generated = float(cells[-2])
    assert abs(generated - 25.5) < 1.0
