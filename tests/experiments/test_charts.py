"""Tests for the plain-text chart renderer."""

import pytest

from repro.experiments.charts import render_bars, render_sweep_charts
from repro.experiments.runner import Record, Sweep


@pytest.fixture
def sweep():
    sweep = Sweep("demo sweep", "|V|")
    sweep.records.extend(
        [
            Record(10, "greedy", 100.0, 0.01, 1.0, 50.0),
            Record(10, "random-v", 50.0, 0.001, 0.5, 40.0),
            Record(20, "greedy", 200.0, 0.02, 2.0, 90.0),
            Record(20, "random-v", 80.0, 0.002, 0.6, 70.0),
        ]
    )
    return sweep


def test_bars_scale_to_peak(sweep):
    chart = render_bars(sweep, "max_sum", width=10)
    lines = chart.splitlines()
    # The peak value (200) gets a full-width bar.
    peak_line = next(line for line in lines if "200" in line)
    assert "#" * 10 in peak_line
    # Half the peak gets half the bar.
    half_line = next(line for line in lines if "100" in line)
    assert "#" * 5 in half_line
    assert "#" * 6 not in half_line


def test_all_cells_rendered(sweep):
    chart = render_bars(sweep, "seconds")
    assert chart.count("greedy") == 2
    assert chart.count("random-v") == 2
    assert "10" in chart and "20" in chart


def test_zero_values_render_empty_bar():
    sweep = Sweep("zeros", "x")
    sweep.records.append(Record("a", "greedy", 0.0, 0.0, 0.0, 0.0))
    chart = render_bars(sweep, "max_sum", width=8)
    assert "#" not in chart


def test_invalid_width(sweep):
    with pytest.raises(ValueError):
        render_bars(sweep, "max_sum", width=0)


def test_render_sweep_charts_panels(sweep):
    text = render_sweep_charts(sweep)
    assert "max_sum" in text
    assert "seconds" in text
    assert "peak_mb" in text


def test_render_sweep_charts_skips_absent_memory():
    sweep = Sweep("no-mem", "x")
    sweep.records.append(Record("a", "greedy", 1.0, 0.1, 0.0, 1.0))
    text = render_sweep_charts(sweep)
    assert "peak_mb" not in text


def test_cli_chart_flag(capsys):
    from repro.cli import main

    assert main(["experiment", "fig3-conflicts", "--scale", "smoke", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "|" in out and "#" in out
