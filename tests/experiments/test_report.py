"""Tests for the one-shot reproduction report."""

from repro.experiments.report import ReproductionReport, ReportSection, run_full_report


def test_subset_report_structure():
    report = run_full_report("smoke", figures=["fig3-dimension"])
    titles = [section.title for section in report.sections]
    assert titles[:3] == [
        "Table I (worked example)",
        "Table II (real datasets)",
        "Table III (synthetic configuration)",
    ]
    assert titles[3] == "fig3-dimension"
    assert len(titles) == 4
    assert report.total_seconds > 0


def test_table1_section_reports_ok():
    report = run_full_report("smoke", figures=[])
    table1 = report.sections[0]
    assert table1.body.count("OK") == 3
    assert "MISMATCH" not in table1.body


def test_markdown_rendering():
    report = ReproductionReport(scale_name="smoke")
    report.sections.append(ReportSection("demo", "body text", 1.5))
    report.total_seconds = 2.0
    text = report.to_markdown()
    assert "# GEACC reproduction report" in text
    assert "## demo" in text
    assert "body text" in text
    assert "`smoke`" in text
