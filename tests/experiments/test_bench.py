"""``geacc bench``: report round-trips, regression gating, CLI wiring."""

import json
from pathlib import Path

import pytest

from repro.exceptions import ReproError
from repro.experiments.bench import (
    BenchReport,
    compare_reports,
    load_report,
    run_bench,
    write_report,
)

BENCH_SOLVERS = ("greedy", "random-u")


@pytest.fixture(scope="module")
def quick_report() -> BenchReport:
    return run_bench(solvers=BENCH_SOLVERS, quick=True, scale="smoke")


def test_quick_run_times_every_solver(quick_report: BenchReport) -> None:
    assert tuple(r.solver for r in quick_report.results) == BENCH_SOLVERS
    for result in quick_report.results:
        assert result.repeats == 1
        assert result.seconds_min > 0
        assert result.seconds_min <= result.seconds_mean
        assert result.outcome == "optimal"


def test_report_round_trips_through_json(
    quick_report: BenchReport, tmp_path: Path
) -> None:
    path = tmp_path / "bench.json"
    write_report(quick_report, path)
    loaded = load_report(path)
    assert loaded.scale == quick_report.scale
    assert loaded.seed == quick_report.seed
    assert {r.solver for r in loaded.results} == set(BENCH_SOLVERS)
    for result in loaded.results:
        original = quick_report.result_for(result.solver)
        assert original is not None
        assert result.max_sum == original.max_sum
        assert result.seconds_min == original.seconds_min


def test_render_mentions_workload_and_solvers(quick_report: BenchReport) -> None:
    table = quick_report.render()
    assert "scale=smoke" in table
    for name in BENCH_SOLVERS:
        assert name in table


def test_identical_reports_pass_the_gate(quick_report: BenchReport) -> None:
    assert compare_reports(quick_report, quick_report) == []


def test_slowdown_beyond_factor_is_a_regression(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    for entry in data["solvers"].values():
        entry["seconds_min"] /= 10.0
    baseline = BenchReport.from_json(data)
    messages = compare_reports(quick_report, baseline, max_regression=2.0)
    assert len(messages) == len(BENCH_SOLVERS)
    assert all("x > 2x" in m for m in messages)


def test_workload_mismatch_is_never_ratioed(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    data["seed"] = quick_report.seed + 1
    baseline = BenchReport.from_json(data)
    messages = compare_reports(quick_report, baseline)
    assert len(messages) == 1
    assert "regenerate the baseline" in messages[0]


def test_new_and_retired_solvers_are_ignored(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    del data["solvers"]["random-u"]
    baseline = BenchReport.from_json(data)
    assert compare_reports(quick_report, baseline) == []


def test_foreign_json_is_rejected(tmp_path: Path) -> None:
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
    with pytest.raises(ReproError, match="geacc-bench-v1"):
        load_report(path)


def test_missing_file_is_a_repro_error(tmp_path: Path) -> None:
    with pytest.raises(ReproError, match="cannot read"):
        load_report(tmp_path / "absent.json")


def test_bad_repeats_rejected() -> None:
    with pytest.raises(ValueError, match="repeats"):
        run_bench(solvers=BENCH_SOLVERS, repeats=0, scale="smoke")


def test_committed_baseline_is_loadable_and_current_format() -> None:
    baseline = Path(__file__).resolve().parents[2] / "BENCH_solvers.json"
    report = load_report(baseline)
    assert report.results, "committed baseline must carry solver timings"
    assert report.service is not None, (
        "committed baseline must carry the serving-path scenario"
    )


def test_service_scenario_is_recorded_and_round_trips(
    quick_report: BenchReport, tmp_path: Path
) -> None:
    assert quick_report.service is not None
    assert quick_report.service.append_seconds > 0
    assert 0 < quick_report.service.request_p50 <= quick_report.service.request_p99
    path = tmp_path / "bench.json"
    write_report(quick_report, path)
    loaded = load_report(path)
    assert loaded.service == quick_report.service
    assert "journal-append" in quick_report.render()


def test_service_slowdown_is_a_regression(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    data["service"]["append_seconds"] /= 10.0
    data["service"]["request_p50"] /= 10.0
    baseline = BenchReport.from_json(data)
    messages = compare_reports(quick_report, baseline, max_regression=2.0)
    assert any("service.journal-append" in m for m in messages)
    assert any("service.request-p50" in m for m in messages)


def test_pre_service_baselines_still_compare(quick_report: BenchReport) -> None:
    # Reports written before the service scenario existed lack the key:
    # loading and gating against them must both keep working.
    data = quick_report.to_json()
    del data["service"]
    baseline = BenchReport.from_json(data)
    assert baseline.service is None
    assert compare_reports(quick_report, baseline) == []


def test_bench_can_skip_the_service_scenario() -> None:
    report = run_bench(
        solvers=("random-v",), quick=True, scale="smoke", with_service=False
    )
    assert report.service is None
    assert "service" not in report.to_json()
