"""``geacc bench``: tiered reports, regression gating, CLI wiring."""

import json
from pathlib import Path

import pytest

from repro.exceptions import ReproError
from repro.experiments.bench import (
    BenchReport,
    TierReport,
    XL_FLOW_CONFIG,
    XL_STREAM_CONFIG,
    _tier_workloads,
    compare_reports,
    load_report,
    merge_reports,
    run_bench,
    speedup_summary,
    write_report,
)

BENCH_SOLVERS = ("greedy", "random-u")


@pytest.fixture(scope="module")
def quick_report() -> BenchReport:
    return run_bench(solvers=BENCH_SOLVERS, quick=True, scale="smoke")


def _only_tier(report: BenchReport) -> TierReport:
    assert len(report.tiers) == 1
    return report.tiers[0]


def test_quick_run_times_every_solver(quick_report: BenchReport) -> None:
    tier = _only_tier(quick_report)
    assert tier.tier == "smoke"
    assert tuple(r.solver for r in tier.results) == BENCH_SOLVERS
    for result in tier.results:
        assert result.repeats == 1
        assert result.seconds_min > 0
        assert result.seconds_min <= result.seconds_mean
        assert result.outcome == "optimal"
        assert result.n_events > 0 and result.n_users > 0


def test_report_round_trips_through_json(
    quick_report: BenchReport, tmp_path: Path
) -> None:
    path = tmp_path / "bench.json"
    write_report(quick_report, path)
    loaded = load_report(path)
    tier = _only_tier(loaded)
    original_tier = _only_tier(quick_report)
    assert tier.tier == original_tier.tier
    assert tier.seed == original_tier.seed
    assert {r.solver for r in tier.results} == set(BENCH_SOLVERS)
    for result in tier.results:
        original = original_tier.result_for(result.solver)
        assert original is not None
        assert result == original


def test_render_mentions_workload_and_solvers(quick_report: BenchReport) -> None:
    table = quick_report.render()
    assert "tier=smoke" in table
    for name in BENCH_SOLVERS:
        assert name in table


def test_identical_reports_pass_the_gate(quick_report: BenchReport) -> None:
    assert compare_reports(quick_report, quick_report) == []


def test_slowdown_beyond_factor_is_a_regression(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    for entry in data["tiers"]["smoke"]["solvers"].values():
        entry["seconds_min"] /= 10.0
    baseline = BenchReport.from_json(data)
    messages = compare_reports(quick_report, baseline, max_regression=2.0)
    assert len(messages) == len(BENCH_SOLVERS)
    assert all("x > 2x" in m for m in messages)
    assert all(m.startswith("smoke/") for m in messages)


def test_seed_mismatch_is_never_ratioed(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    data["tiers"]["smoke"]["seed"] = _only_tier(quick_report).seed + 1
    baseline = BenchReport.from_json(data)
    messages = compare_reports(quick_report, baseline)
    assert len(messages) == 1
    assert "regenerate the baseline" in messages[0]


def test_shape_mismatch_is_never_ratioed(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    entry = data["tiers"]["smoke"]["solvers"]["greedy"]
    entry["n_users"] += 1
    entry["seconds_min"] /= 100.0  # would be a huge "regression" if ratioed
    baseline = BenchReport.from_json(data)
    messages = compare_reports(quick_report, baseline)
    assert len(messages) == 1
    assert "workload mismatch" in messages[0]
    assert "regenerate the baseline" in messages[0]


def test_new_and_retired_solvers_are_ignored(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    del data["tiers"]["smoke"]["solvers"]["random-u"]
    baseline = BenchReport.from_json(data)
    assert compare_reports(quick_report, baseline) == []


def test_tiers_gate_independently(quick_report: BenchReport) -> None:
    # A regressed seed-scale tier must be reported even when the current
    # report also carries a brand-new tier absent from the baseline: the
    # per-tier diff means added tiers can never mask a regression.
    smoke = _only_tier(quick_report)
    extra = TierReport(tier="xl", seed=smoke.seed, repeats=1, results=smoke.results)
    current = BenchReport(python=quick_report.python, tiers=(smoke, extra))
    data = quick_report.to_json()
    for entry in data["tiers"]["smoke"]["solvers"].values():
        entry["seconds_min"] /= 10.0
    baseline = BenchReport.from_json(data)
    messages = compare_reports(current, baseline, max_regression=2.0)
    assert len(messages) == len(BENCH_SOLVERS)
    assert all(m.startswith("smoke/") for m in messages)


def test_single_tier_write_preserves_other_tiers(
    quick_report: BenchReport, tmp_path: Path
) -> None:
    smoke = _only_tier(quick_report)
    other = TierReport(tier="xl", seed=smoke.seed, repeats=1, results=smoke.results)
    path = tmp_path / "bench.json"
    write_report(BenchReport(python="3.0.0", tiers=(other,)), path)
    write_report(quick_report, path)
    merged = load_report(path)
    assert [tier.tier for tier in merged.tiers] == ["smoke", "xl"]
    assert merged.tier_for("smoke") == smoke
    assert merged.tier_for("xl") == other
    assert merged.python == quick_report.python


def test_merge_replaces_same_named_tier(quick_report: BenchReport) -> None:
    smoke = _only_tier(quick_report)
    stale = TierReport(tier="smoke", seed=smoke.seed + 7, repeats=3, results=())
    merged = merge_reports(
        BenchReport(python="3.0.0", tiers=(stale,)), quick_report
    )
    assert merged.tier_for("smoke") == smoke


def test_v1_reports_are_lifted_to_one_tier(
    quick_report: BenchReport, tmp_path: Path
) -> None:
    tier = _only_tier(quick_report)
    solver = tier.results[0]
    v1 = {
        "format": "geacc-bench-v1",
        "scale": "scaled",
        "seed": tier.seed,
        "n_events": solver.n_events,
        "n_users": solver.n_users,
        "repeats": 1,
        "python": "3.11.0",
        "solvers": {
            solver.solver: {
                "repeats": 1,
                "seconds_min": solver.seconds_min,
                "seconds_mean": solver.seconds_mean,
                "nodes": solver.nodes,
                "max_sum": solver.max_sum,
                "n_pairs": solver.n_pairs,
                "outcome": solver.outcome,
            }
        },
    }
    path = tmp_path / "v1.json"
    path.write_text(json.dumps(v1), encoding="utf-8")
    lifted = load_report(path)
    lifted_tier = lifted.tier_for("scaled")
    assert lifted_tier is not None
    lifted_solver = lifted_tier.result_for(solver.solver)
    assert lifted_solver is not None
    assert lifted_solver.n_events == solver.n_events
    assert lifted_solver.n_users == solver.n_users
    assert lifted_solver.seconds_min == solver.seconds_min


def test_speedup_summary_reads_both_directions(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    solvers = data["tiers"]["smoke"]["solvers"]
    solvers["greedy"]["seconds_min"] = (
        _only_tier(quick_report).result_for("greedy").seconds_min * 4.0
    )
    baseline = BenchReport.from_json(data)
    lines = speedup_summary(quick_report, baseline)
    assert len(lines) == len(BENCH_SOLVERS)
    greedy_line = next(line for line in lines if "greedy" in line)
    assert "4.00x faster" in greedy_line
    random_line = next(line for line in lines if "random-u" in line)
    assert "1.00x faster" in random_line


def test_speedup_summary_skips_mismatched_shapes(
    quick_report: BenchReport,
) -> None:
    data = quick_report.to_json()
    data["tiers"]["smoke"]["solvers"]["greedy"]["n_users"] += 1
    baseline = BenchReport.from_json(data)
    lines = speedup_summary(quick_report, baseline)
    assert not any("greedy" in line for line in lines)


def test_xl_tier_spec_stays_matrix_free() -> None:
    workloads = _tier_workloads("xl")
    by_solver = {s: w for w in workloads for s in w.solvers}
    stream = by_solver["greedy"]
    assert stream.config == XL_STREAM_CONFIG
    assert not stream.materialise_sims, (
        "the xl streaming workload must never materialise its 10^8-cell matrix"
    )
    assert set(stream.solvers) == {"greedy", "random-v", "random-u"}
    flow = by_solver["mincostflow"]
    assert flow.config == XL_FLOW_CONFIG
    assert flow.materialise_sims


def test_foreign_json_is_rejected(tmp_path: Path) -> None:
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
    with pytest.raises(ReproError, match="geacc-bench-v2"):
        load_report(path)


def test_missing_file_is_a_repro_error(tmp_path: Path) -> None:
    with pytest.raises(ReproError, match="cannot read"):
        load_report(tmp_path / "absent.json")


def test_bad_repeats_rejected() -> None:
    with pytest.raises(ValueError, match="repeats"):
        run_bench(solvers=BENCH_SOLVERS, repeats=0, scale="smoke")


def test_committed_baseline_is_loadable_and_current_format() -> None:
    baseline = Path(__file__).resolve().parents[2] / "BENCH_solvers.json"
    report = load_report(baseline)
    scaled = report.tier_for("scaled")
    assert scaled is not None and scaled.results, (
        "committed baseline must carry seed-scale solver timings"
    )
    assert scaled.service is not None, (
        "committed baseline must carry the serving-path scenario"
    )
    xl = report.tier_for("xl")
    assert xl is not None and xl.result_for("greedy") is not None, (
        "committed baseline must carry the xl stress tier"
    )


def test_service_scenario_is_recorded_and_round_trips(
    quick_report: BenchReport, tmp_path: Path
) -> None:
    service = _only_tier(quick_report).service
    assert service is not None
    assert service.append_seconds > 0
    assert 0 < service.request_p50 <= service.request_p99
    path = tmp_path / "bench.json"
    write_report(quick_report, path)
    loaded = load_report(path)
    assert _only_tier(loaded).service == service
    assert "journal-append" in quick_report.render()


def test_service_slowdown_is_a_regression(quick_report: BenchReport) -> None:
    data = quick_report.to_json()
    data["tiers"]["smoke"]["service"]["append_seconds"] /= 10.0
    data["tiers"]["smoke"]["service"]["request_p50"] /= 10.0
    baseline = BenchReport.from_json(data)
    messages = compare_reports(quick_report, baseline, max_regression=2.0)
    assert any("service.journal-append" in m for m in messages)
    assert any("service.request-p50" in m for m in messages)


def test_pre_service_baselines_still_compare(quick_report: BenchReport) -> None:
    # Reports written before the service scenario existed lack the key:
    # loading and gating against them must both keep working.
    data = quick_report.to_json()
    del data["tiers"]["smoke"]["service"]
    baseline = BenchReport.from_json(data)
    assert _only_tier(baseline).service is None
    assert compare_reports(quick_report, baseline) == []


def test_bench_can_skip_the_service_scenario() -> None:
    report = run_bench(
        solvers=("random-v",), quick=True, scale="smoke", with_service=False
    )
    assert _only_tier(report).service is None
    assert "service" not in report.to_json()["tiers"]["smoke"]
