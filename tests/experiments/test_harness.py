"""Tests for the experiment harness (config, metrics, runner, reporting)."""

import pytest

from repro.experiments.config import SCALES, get_scale
from repro.experiments.metrics import measure
from repro.experiments.reporting import format_table
from repro.experiments.runner import Record, Sweep, run_solver_on, sweep_parameter
from repro.datagen.synthetic import SyntheticConfig, generate_instance


class TestConfig:
    def test_scales_exist(self):
        for name in ("paper", "scaled", "smoke"):
            assert name in SCALES
            assert SCALES[name].name == name

    def test_paper_grids_match_table_iii(self):
        paper = SCALES["paper"]
        assert paper.v_grid == (20, 50, 100, 200, 500)
        assert paper.u_grid == (100, 200, 500, 1000, 2000, 5000)
        assert paper.d_grid == (2, 5, 10, 15, 20)
        assert paper.cf_grid == (0.0, 0.25, 0.5, 0.75, 1.0)
        assert paper.cv_max_grid == (10, 20, 50, 100, 200)
        assert paper.cu_max_grid == (2, 4, 6, 8, 10)
        assert paper.scalability_u_grid[-1] == 100_000

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale("smoke").name == "smoke"

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_scale("galactic")


class TestMetrics:
    def test_measure_returns_result(self):
        run = measure(lambda: 41 + 1, memory=False)
        assert run.result == 42
        assert run.seconds >= 0
        assert run.peak_mb is None

    def test_measure_memory(self):
        run = measure(lambda: [0] * 100_000, memory=True)
        assert run.peak_mb is not None
        assert run.peak_mb > 0.1


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.34567], [None, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.346" in text
        assert lines[3].startswith("-")  # None rendered as dash

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestRunner:
    def test_run_solver_on_validates(self):
        instance = generate_instance(
            SyntheticConfig(n_events=5, n_users=15, cv_high=4), 0
        )
        record = run_solver_on(instance, "greedy", memory=False)
        assert record.solver == "greedy"
        assert record.max_sum > 0
        assert record.n_pairs >= 1

    def test_sweep_parameter_shapes(self):
        sweep = sweep_parameter(
            "test sweep",
            "|V|",
            [3, 5],
            lambda x, seed: generate_instance(
                SyntheticConfig(n_events=x, n_users=10, cv_high=3), seed
            ),
            solvers=("greedy", "random-v"),
            repeats=2,
            memory=False,
        )
        assert len(sweep.records) == 4  # 2 grid points x 2 solvers
        assert sweep.solvers() == ["greedy", "random-v"]
        greedy_series = sweep.series("greedy", "max_sum")
        assert [x for x, _ in greedy_series] == [3, 5]

    def test_sweep_render_contains_panels(self):
        sweep = Sweep("demo", "x")
        sweep.records.append(Record("a", "greedy", 1.0, 0.1, 2.0, 3.0))
        text = sweep.render()
        assert "MaxSum" in text
        assert "running time" in text
        assert "peak memory" in text
        assert "greedy" in text
