"""Smoke-scale runs of every figure driver.

These validate that each figure regenerates end-to-end (instances build,
solvers run, arrangements validate, series render) and that the *shape*
results the paper reports hold qualitatively even at smoke scale where
cheap to check.
"""

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module")
def fig3_conflicts():
    return figures.fig3_vary_conflicts("smoke", memory=False)


def test_fig3_vary_events_runs():
    sweep = figures.fig3_vary_events("smoke", memory=False)
    assert len(sweep.records) == 3 * 4  # 3 grid points x 4 solvers
    # MaxSum grows with |V| for greedy (more options for users).
    series = dict(sweep.series("greedy", "max_sum"))
    xs = sorted(series)
    assert series[xs[-1]] > series[xs[0]]


def test_fig3_vary_users_runs():
    sweep = figures.fig3_vary_users("smoke", memory=False)
    series = dict(sweep.series("greedy", "max_sum"))
    xs = sorted(series)
    assert series[xs[-1]] > series[xs[0]]


def test_fig3_dimension_decreases_maxsum():
    """Paper: MaxSum decreases as d increases (space gets sparser)."""
    sweep = figures.fig3_vary_dimension("smoke", memory=False)
    series = dict(sweep.series("greedy", "max_sum"))
    assert series[2] > series[20]


def test_fig3_conflicts_greedy_wins_and_maxsum_drops(fig3_conflicts):
    sweep = fig3_conflicts
    greedy = dict(sweep.series("greedy", "max_sum"))
    mcf = dict(sweep.series("mincostflow", "max_sum"))
    rand_v = dict(sweep.series("random-v", "max_sum"))
    # MaxSum decreases in conflict density (fewer feasible pairs).
    assert greedy[0.0] >= greedy[1.0]
    # At cf = 0 MinCostFlow is optimal, so >= greedy there.
    assert mcf[0.0] >= greedy[0.0] - 1e-9
    # Both principled algorithms beat the random baseline everywhere.
    for ratio in greedy:
        assert greedy[ratio] > rand_v[ratio]


def test_fig4_event_capacity_increases_maxsum():
    sweep = figures.fig4_vary_event_capacity("smoke", memory=False)
    series = dict(sweep.series("greedy", "max_sum"))
    xs = sorted(series)
    assert series[xs[-1]] > series[xs[0]]


def test_fig4_user_capacity_runs():
    sweep = figures.fig4_vary_user_capacity("smoke", memory=False)
    assert len(sweep.solvers()) == 4


def test_fig4_distributions_all_combos():
    sweep = figures.fig4_distributions("smoke", memory=False)
    xs = {x for x, _ in sweep.series("greedy", "max_sum")}
    assert xs == set(figures.DISTRIBUTION_GRID)


def test_fig4_real_runs_on_auckland():
    sweep = figures.fig4_real(
        "smoke", city="auckland", solvers=("greedy", "random-v"), memory=False
    )
    greedy = dict(sweep.series("greedy", "max_sum"))
    rand = dict(sweep.series("random-v", "max_sum"))
    for ratio in greedy:
        assert greedy[ratio] > rand[ratio]


def test_fig5_scalability_greedy_only():
    sweep = figures.fig5_scalability("smoke", memory=False)
    assert sweep.solvers() == ["greedy"]
    assert len(sweep.records) == 4  # 2 x 2 grid


def test_fig5_effectiveness_exact_dominates():
    sweep = figures.fig5_effectiveness("smoke")
    exact = dict(sweep.series("ilp", "max_sum"))
    greedy = dict(sweep.series("greedy", "max_sum"))
    mcf = dict(sweep.series("mincostflow", "max_sum"))
    for ratio, optimum in exact.items():
        assert optimum >= greedy[ratio] - 1e-6
        assert optimum >= mcf[ratio] - 1e-6
    # Paper: at cf = 0, MinCostFlow-GEACC returns the optimum.
    assert mcf[0.0] == pytest.approx(exact[0.0], abs=1e-6)


def test_fig6_prune_beats_exhaustive():
    result = figures.fig6_pruning("smoke")
    by_key = {}
    for record in result.records:
        by_key[(record.cf_ratio, record.n_users, record.algorithm)] = record
    exhaustive_points = [k for k in by_key if k[2] == "exhaustive"]
    assert exhaustive_points
    for cf_ratio, n_users, _ in exhaustive_points:
        prune = by_key[(cf_ratio, n_users, "prune")]
        exhaustive = by_key[(cf_ratio, n_users, "exhaustive")]
        assert prune.invocations < exhaustive.invocations
        assert prune.complete_searches <= exhaustive.complete_searches
        # Identical optima despite pruning.
        assert prune.max_sum == pytest.approx(exhaustive.max_sum)
    assert "Fig. 6" in result.render()


def test_all_figures_registry():
    assert set(figures.ALL_FIGURES) == {
        "fig3-events", "fig3-users", "fig3-dimension", "fig3-conflicts",
        "fig4-event-capacity", "fig4-user-capacity", "fig4-distributions",
        "fig4-real", "fig5-scalability", "fig5-effectiveness", "fig6-pruning",
    }
