"""Scalability demo: matrix-free Greedy-GEACC at large |U| (Fig. 5a-b).

At scalability scales the |V| x |U| similarity matrix stops fitting in
memory comfortably, so Greedy-GEACC switches to index-backed neighbour
streams over the raw attribute vectors (the paper's sigma(S) k-NN oracle,
here a chunked argpartition scan). This demo solves a growing sequence of
instances without ever materialising the matrix, and reports the
near-linear time/memory growth the paper shows in Fig. 5.

Run:  python examples/scalability_demo.py  [--big]
"""

from __future__ import annotations

import sys
import time
import tracemalloc

from repro import GreedyGEACC, SyntheticConfig, generate_instance

SIZES = [(50, 2_000), (50, 5_000), (100, 5_000), (100, 10_000)]
BIG_SIZES = SIZES + [(200, 20_000), (200, 50_000)]


def main() -> None:
    sizes = BIG_SIZES if "--big" in sys.argv else SIZES
    print(f"{'|V|':>5s} {'|U|':>7s} {'MaxSum':>12s} {'|M|':>7s} "
          f"{'time':>8s} {'peak MB':>8s} {'matrix?':>8s}")
    for n_events, n_users in sizes:
        config = SyntheticConfig(
            n_events=n_events, n_users=n_users, cv_high=200
        )
        instance = generate_instance(config, seed=0)
        solver = GreedyGEACC(index_kind="chunked")  # force matrix-free path
        tracemalloc.start()
        start = time.perf_counter()
        arrangement = solver.solve(instance)
        seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        print(
            f"{n_events:5d} {n_users:7d} {arrangement.max_sum():12.1f} "
            f"{len(arrangement):7d} {seconds:7.2f}s {peak / 2**20:8.1f} "
            f"{str(instance.has_matrix):>8s}"
        )
    print("\nThe similarity matrix was never materialised; time and memory")
    print("grow near-linearly with |U| (compare rows at fixed |V|).")


if __name__ == "__main__":
    main()
