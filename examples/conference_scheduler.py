"""Conference session seating with the exact solver and quality bounds.

A small single-track-conflict scenario where exact optimisation is
feasible: parallel conference sessions (events) with room capacities,
attendees (users) who can attend a limited number of sessions, and
conflicts between sessions sharing a time slot. Sessions in the same slot
always conflict -- a structured conflict graph rather than the random one
of the synthetic benchmarks.

Compares Random / Greedy / MinCostFlow against the exact Prune-GEACC
optimum and the LP upper bound, demonstrating the approximation-ratio
guarantees of Theorems 2 and 3 concretely.

Run:  python examples/conference_scheduler.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    ConflictGraph,
    GreedyGEACC,
    Instance,
    MinCostFlowGEACC,
    PruneGEACC,
    RandomV,
    validate_arrangement,
)
from repro.core.bounds import lp_bound, nn_capacity_bound

N_SLOTS = 3
SESSIONS_PER_SLOT = 2
N_ATTENDEES = 8  # exact search is exponential; 8 keeps it under a second
TOPIC_DIM = 6


def build_conference(seed: int = 11) -> tuple[Instance, list[list[int]]]:
    """Six sessions in three time slots; slot-mates conflict."""
    rng = np.random.default_rng(seed)
    n_sessions = N_SLOTS * SESSIONS_PER_SLOT
    slots = [
        list(range(s * SESSIONS_PER_SLOT, (s + 1) * SESSIONS_PER_SLOT))
        for s in range(N_SLOTS)
    ]
    conflicts = ConflictGraph(n_sessions)
    for slot in slots:
        for i, a in enumerate(slot):
            for b in slot[i + 1 :]:
                conflicts.add_pair(a, b)

    # Topic-interest vectors in [0, 1]^d; sessions are focused (sparse).
    session_topics = rng.dirichlet(np.full(TOPIC_DIM, 0.4), size=n_sessions)
    attendee_topics = rng.dirichlet(np.full(TOPIC_DIM, 0.8), size=N_ATTENDEES)
    room_capacity = rng.integers(3, 6, size=n_sessions)
    # Each attendee can attend at most one session per slot anyway; cap 3.
    attendee_capacity = np.full(N_ATTENDEES, N_SLOTS)

    instance = Instance.from_attributes(
        session_topics,
        attendee_topics,
        room_capacity,
        attendee_capacity,
        conflicts,
        t=1.0,
    )
    return instance, slots


def main() -> None:
    instance, slots = build_conference()
    print(f"conference: {instance}")
    print(f"time slots: {slots}")

    exact = PruneGEACC()
    solvers = [
        ("Random-V", RandomV(seed=3)),
        ("Greedy-GEACC", GreedyGEACC()),
        ("MinCostFlow-GEACC", MinCostFlowGEACC()),
        ("Prune-GEACC (exact)", exact),
    ]
    results = {}
    print(f"\n{'algorithm':22s} {'MaxSum':>8s} {'|M|':>5s} {'time':>9s}")
    for name, solver in solvers:
        start = time.perf_counter()
        arrangement = solver.solve(instance)
        seconds = time.perf_counter() - start
        validate_arrangement(arrangement)
        results[name] = arrangement
        print(
            f"{name:22s} {arrangement.max_sum():8.3f} "
            f"{len(arrangement):5d} {seconds:8.4f}s"
        )

    optimum = results["Prune-GEACC (exact)"].max_sum()
    alpha = instance.max_user_capacity
    print(f"\nsearch stats: {exact.stats.invocations} invocations, "
          f"{exact.stats.prune_count} prunes "
          f"(avg depth {exact.stats.average_prune_depth:.1f})")
    print(f"upper bounds: NN-capacity {nn_capacity_bound(instance):.3f}, "
          f"LP {lp_bound(instance):.3f} (optimum {optimum:.3f})")
    print(f"\napproximation ratios vs optimum (alpha = max c_u = {alpha}):")
    greedy_ratio = results["Greedy-GEACC"].max_sum() / optimum
    mcf_ratio = results["MinCostFlow-GEACC"].max_sum() / optimum
    print(f"  Greedy      {greedy_ratio:.3f}  (guarantee {1 / (1 + alpha):.3f})")
    print(f"  MinCostFlow {mcf_ratio:.3f}  (guarantee {1 / alpha:.3f})")
    assert greedy_ratio >= 1 / (1 + alpha) - 1e-9
    assert mcf_ratio >= 1 / alpha - 1e-9

    print("\nper-slot seating (exact arrangement):")
    arrangement = results["Prune-GEACC (exact)"]
    for s, slot in enumerate(slots):
        print(f"  slot {s}:")
        for session in slot:
            attendees = sorted(arrangement.users_of(session))
            print(
                f"    session {session} "
                f"(room {instance.event_capacities[session]}): {attendees}"
            )


if __name__ == "__main__":
    main()
