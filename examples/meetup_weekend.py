"""Weekend arrangement for a simulated Meetup city (the paper's intro).

The paper opens with Bob, a sports enthusiast facing three mutually
conflicting Sunday activities. This example plays out that scenario at
city scale: Auckland's events and users (Table II statistics), a one-day
schedule with venues, conflicts derived from overlapping time slots or
infeasible travel (not a random ratio), and a global arrangement computed
with Greedy-GEACC.

It then inspects one heavily-contended user -- the modern Bob -- showing
which of their top-interest events conflict and which one the global
arrangement picked.

Run:  python examples/meetup_weekend.py
"""

from __future__ import annotations

import numpy as np

from repro import GreedyGEACC, Instance, validate_arrangement
from repro.datagen.conflictgen import random_schedule_conflicts
from repro.datasets.meetup import CITIES, MERGED_TAGS, MeetupCityConfig, meetup_city


def build_city_with_schedule(seed: int = 42) -> tuple[Instance, list, list]:
    """Auckland instance, but with schedule-derived conflicts."""
    base = meetup_city(MeetupCityConfig(city="auckland", conflict_ratio=0.0), seed)
    rng = np.random.default_rng(seed + 1)
    conflicts, intervals, locations = random_schedule_conflicts(
        base.n_events, rng, day_hours=14.0, city_extent=40.0, travel_speed=25.0
    )
    instance = Instance.from_attributes(
        base.event_attributes,
        base.user_attributes,
        base.event_capacities,
        base.user_capacities,
        conflicts,
        t=1.0,
    )
    return instance, intervals, locations


def main() -> None:
    instance, intervals, _ = build_city_with_schedule()
    n_events, n_users = CITIES["auckland"]
    print(
        f"Auckland: {n_events} events, {n_users} users, "
        f"{len(instance.conflicts)} schedule conflicts "
        f"(density {instance.conflicts.density():.2f})"
    )

    arrangement = GreedyGEACC().solve(instance)
    validate_arrangement(arrangement)
    print(
        f"global arrangement: MaxSum={arrangement.max_sum():.2f}, "
        f"{len(arrangement)} (event, user) pairs"
    )
    attendance = [len(arrangement.users_of(v)) for v in range(instance.n_events)]
    print(
        f"event fill: mean {np.mean(attendance):.1f} attendees, "
        f"max {max(attendance)}, {sum(1 for a in attendance if a == 0)} empty"
    )

    # Find the most contended user: highest interest mass in conflicting events.
    sims = instance.sims
    bob = int(np.argmax(sims.sum(axis=0)))
    top_events = np.argsort(-sims[:, bob])[:3]
    print(f"\n'Bob' is user #{bob} (capacity {instance.user_capacities[bob]}).")
    print("Top 3 interesting events:")
    for v in top_events:
        start, end = intervals[v]
        conflicting = [
            int(w) for w in top_events if w != v
            and instance.conflicts.are_conflicting(int(v), int(w))
        ]
        tags = np.argsort(-np.asarray(instance.event_attributes[v]))[:2]
        print(
            f"  event #{v}: sim={sims[v, bob]:.3f}, "
            f"{start:4.1f}h-{end:4.1f}h, tags={[MERGED_TAGS[t] for t in tags]}, "
            f"conflicts with {conflicting or 'none of the others'}"
        )
    assigned = sorted(arrangement.events_of(bob))
    print(f"arranged for Bob: events {assigned}")
    for a in assigned:
        for b in assigned:
            assert a == b or not instance.conflicts.are_conflicting(a, b)
    print("(no two assigned events conflict -- Bob's dilemma is resolved)")


if __name__ == "__main__":
    main()
