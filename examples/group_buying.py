"""Group-buying arrangement (the paper's Groupon motivation).

Groupon-style deals are events with inventory (capacity); shoppers are
users with a budget for a few deals (capacity). Deals conflict when they
are mutually exclusive -- e.g. two discounts for the same restaurant
cannot be redeemed together, or two limited-time offers overlap. The
platform wants a *global* deal-shopper arrangement maximising predicted
purchase interest, not per-deal recommendation lists (which oversell
conflicting deals to the same shoppers).

This example builds a deal catalogue with category structure, derives
conflicts from mutual exclusivity within merchants, compares Greedy with
per-deal recommendation (Random-V is the paper's stand-in for
non-global assignment), and prints operator-facing statistics.

Run:  python examples/group_buying.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConflictGraph,
    GreedyGEACC,
    Instance,
    LocalSearchGEACC,
    RandomV,
    validate_arrangement,
)
from repro.core.analysis import compare

N_MERCHANTS = 12
DEALS_PER_MERCHANT = 3
N_SHOPPERS = 600
N_CATEGORIES = 8


def build_catalogue(seed: int = 23) -> Instance:
    """Deals clustered by merchant category; same-merchant deals conflict."""
    rng = np.random.default_rng(seed)
    n_deals = N_MERCHANTS * DEALS_PER_MERCHANT

    # Each merchant has a category profile; its deals are perturbations.
    merchant_profiles = rng.dirichlet(np.full(N_CATEGORIES, 0.5), N_MERCHANTS)
    deal_attrs = np.repeat(merchant_profiles, DEALS_PER_MERCHANT, axis=0)
    deal_attrs += rng.normal(0, 0.05, deal_attrs.shape)
    deal_attrs = np.clip(deal_attrs, 0, 1)

    shopper_attrs = rng.dirichlet(np.full(N_CATEGORIES, 0.7), N_SHOPPERS)

    inventory = rng.integers(10, 60, size=n_deals)        # deal stock
    budget = rng.integers(1, 5, size=N_SHOPPERS)          # deals per shopper

    # Deals of the same merchant are mutually exclusive.
    conflicts = ConflictGraph(n_deals)
    for merchant in range(N_MERCHANTS):
        deals = range(
            merchant * DEALS_PER_MERCHANT, (merchant + 1) * DEALS_PER_MERCHANT
        )
        for i in deals:
            for j in deals:
                if i < j:
                    conflicts.add_pair(i, j)

    return Instance.from_attributes(
        deal_attrs, shopper_attrs, inventory, budget, conflicts, t=1.0
    )


def main() -> None:
    instance = build_catalogue()
    print(f"catalogue: {instance}")
    print(
        f"{N_MERCHANTS} merchants x {DEALS_PER_MERCHANT} mutually exclusive "
        f"deals, {N_SHOPPERS} shoppers"
    )

    per_deal = RandomV(seed=1).solve(instance)        # non-global assignment
    global_greedy = GreedyGEACC().solve(instance)
    polished = LocalSearchGEACC().improve(global_greedy)
    for arrangement in (per_deal, global_greedy, polished):
        validate_arrangement(arrangement)

    print("\n" + compare({
        "per-deal (random)": per_deal,
        "global greedy": global_greedy,
        "greedy + local search": polished,
    }))

    # No shopper holds two deals of the same merchant.
    for shopper in range(instance.n_users):
        merchants = [
            deal // DEALS_PER_MERCHANT
            for deal in global_greedy.events_of(shopper)
        ]
        assert len(merchants) == len(set(merchants))
    print("\nverified: no shopper was sold two deals of the same merchant")

    lift = (global_greedy.max_sum() / per_deal.max_sum() - 1) * 100
    print(f"global arrangement lifts predicted interest by {lift:.0f}% "
          f"over per-deal assignment")


if __name__ == "__main__":
    main()
