"""Quickstart: solve one GEACC instance with every algorithm tier.

Generates the paper's default synthetic workload (at a laptop-friendly
size), arranges it with the random baselines, Greedy-GEACC and
MinCostFlow-GEACC, and reports MaxSum / matched pairs / running time plus
an upper bound on the optimum.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import (
    GreedyGEACC,
    MinCostFlowGEACC,
    RandomU,
    RandomV,
    SyntheticConfig,
    generate_instance,
    validate_arrangement,
)
from repro.core.bounds import nn_capacity_bound, relaxation_bound


def main() -> None:
    config = SyntheticConfig(n_events=50, n_users=400, cv_high=20)
    instance = generate_instance(config, seed=7)
    print(f"instance: {instance}")
    print(f"conflict density: {instance.conflicts.density():.2f}")

    solvers = [
        ("Random-V", RandomV()),
        ("Random-U", RandomU()),
        ("MinCostFlow-GEACC", MinCostFlowGEACC()),
        ("Greedy-GEACC", GreedyGEACC()),
    ]
    print(f"\n{'algorithm':20s} {'MaxSum':>10s} {'|M|':>6s} {'time':>8s}")
    for name, solver in solvers:
        start = time.perf_counter()
        arrangement = solver.solve(instance)
        seconds = time.perf_counter() - start
        validate_arrangement(arrangement)  # every constraint of Definition 5
        print(
            f"{name:20s} {arrangement.max_sum():10.2f} "
            f"{len(arrangement):6d} {seconds:7.3f}s"
        )

    print(f"\nupper bounds on the optimum:")
    print(f"  capacity-weighted NN bound: {nn_capacity_bound(instance):.2f}")
    print(f"  conflict-free relaxation:   {relaxation_bound(instance):.2f}")


if __name__ == "__main__":
    main()
