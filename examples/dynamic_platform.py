"""Dynamic EBSN platform simulation (extension).

The paper arranges a static snapshot; a live platform sees organisers
post events ahead of time, users trickle in, and attendee lists freeze at
event start. This example replays one simulated month of a platform
under two policies -- first-come-first-served seat assignment vs.
periodic global re-arrangement with Greedy-GEACC -- and compares both
against the clairvoyant offline arrangement (which sees all users before
any event starts).

Run:  python examples/dynamic_platform.py
"""

from __future__ import annotations

import numpy as np

from repro import GreedyGEACC, SyntheticConfig, generate_instance
from repro.core.analysis import analyze
from repro.simulation import (
    GreedyArrivalPolicy,
    RebatchPolicy,
    Simulator,
    random_timeline,
)


def main() -> None:
    config = SyntheticConfig(
        n_events=30, n_users=300, cv_high=15, cu_high=3, conflict_ratio=0.25
    )
    instance = generate_instance(config, seed=17)
    rng = np.random.default_rng(17)
    timeline = random_timeline(instance, rng, horizon=30.0, min_lead_time=5.0)
    print(f"platform: {instance}")
    print(
        f"timeline: events posted over [0, {timeline.post_times.max():.1f}] days, "
        f"users arrive over [0, {timeline.arrival_times.max():.1f}] days"
    )

    simulator = Simulator(instance, timeline)
    offline = GreedyGEACC().solve(instance)
    print(f"\nclairvoyant offline greedy:  MaxSum={offline.max_sum():.2f}")

    results = {}
    for policy in (GreedyArrivalPolicy(), RebatchPolicy(solver="greedy")):
        result = simulator.run(policy)
        results[policy.name] = result
        gap = (1 - result.achieved_max_sum / offline.max_sum()) * 100
        print(f"{result.summary()}   ({gap:+.1f}% below offline)")

    best = results["rebatch"]
    stats = analyze(best.arrangement)
    print(f"\nrebatch policy outcome:\n{stats.render()}")
    print(
        "\nThe rebatch policy recovers most of the gap by re-optimising the "
        "open events\neach time one is about to freeze, while FCFS locks in "
        "early users' choices."
    )


if __name__ == "__main__":
    main()
