# Convenience targets for the GEACC reproduction.

PYTHON ?= python

.PHONY: install test test-robustness lint typecheck check bench bench-smoke bench-paper examples report clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# Tier-1 tests stay dependency-free and fast: `test` deliberately does
# NOT depend on lint/typecheck (CI runs all three as separate jobs).
test:
	$(PYTHON) -m pytest tests/

# The anytime-harness fault-injection suite on its own (CI smoke step).
test-robustness:
	$(PYTHON) -m pytest tests/robustness -q

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis.cli --statistics src/repro

typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --config-file pyproject.toml; \
	else \
		echo "mypy not installed; run: pip install -e '.[lint]'"; \
	fi

check: lint typecheck test

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_SCALE=smoke $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

report:
	$(PYTHON) -m repro.cli reproduce --output REPORT.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
