# Convenience targets for the GEACC reproduction.

PYTHON ?= python

.PHONY: install test test-robustness lint typecheck check bench bench-check bench-figures bench-figures-smoke bench-figures-paper examples report clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# Tier-1 tests stay dependency-free and fast: `test` deliberately does
# NOT depend on lint/typecheck (CI runs all three as separate jobs).
test:
	$(PYTHON) -m pytest tests/

# The anytime-harness fault-injection suite on its own (CI smoke step).
test-robustness:
	$(PYTHON) -m pytest tests/robustness -q

# src gets the full rule set; tests get the scope-agnostic rules only
# (the tests tree legitimately uses exact float comparisons, terse
# signatures, and direct store mutation), minus the lint fixture packs
# which exist to be flagged.
LINT_TEST_RULES = R1,R3,R4,R6,R7,R11,R12,R13

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis.cli --statistics src/repro
	PYTHONPATH=src $(PYTHON) -m repro.analysis.cli --statistics \
		--select $(LINT_TEST_RULES) --exclude analysis/fixtures tests

typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --config-file pyproject.toml; \
	else \
		echo "mypy not installed; run: pip install -e '.[lint]'"; \
	fi

check: lint typecheck test

# Regenerate the tracked solver baseline, both tiers (commit the result).
# Each invocation rewrites only its own tier in the JSON and preserves
# the other, so either line can also be rerun alone.
bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --output BENCH_solvers.json
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --scale xl \
		--output BENCH_solvers.json

# Quick run compared against the committed baseline (the CI gate).
bench-check:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --quick \
		--output BENCH_solvers.current.json --compare BENCH_solvers.json

# xl stress-tier smoke against the committed baseline (minutes, not
# seconds -- CI runs it behind a step time cap).
bench-check-xl:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --scale xl --quick \
		--output BENCH_solvers.current.json --compare BENCH_solvers.json

# pytest-benchmark micro-benchmarks (figure-level timings).
bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-figures-smoke:
	REPRO_SCALE=smoke $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-figures-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

report:
	$(PYTHON) -m repro.cli reproduce --output REPORT.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	rm -f BENCH_solvers.current.json
	find . -name __pycache__ -type d -exec rm -rf {} +
