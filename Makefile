# Convenience targets for the GEACC reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke bench-paper examples report clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_SCALE=smoke $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

report:
	$(PYTHON) -m repro.cli reproduce --output REPORT.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
