"""Exception hierarchy for the GEACC reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidInstanceError(ReproError):
    """A GEACC instance violates a structural invariant.

    Examples: negative capacity, attribute vectors of mismatched
    dimensionality, a conflict pair referencing an unknown event, or a
    similarity matrix whose shape does not match ``|V| x |U|``.
    """


class InfeasibleArrangementError(ReproError):
    """An arrangement violates a GEACC constraint.

    Raised by :func:`repro.core.validation.validate_arrangement` with a
    human-readable description of the first violated constraint.
    """


class FlowError(ReproError):
    """Base class for errors raised by the min-cost-flow substrate."""


class InfeasibleFlowError(FlowError):
    """The requested flow amount exceeds the network's maximum flow."""


class NegativeCycleError(FlowError):
    """The residual network contains a negative-cost cycle.

    The successive-shortest-path solver maintains the invariant that no
    negative-cost residual cycle exists; encountering one indicates
    corrupted input (e.g. negative arc costs fed to the Dijkstra variant).
    """


class NNIndexError(ReproError):
    """Base class for errors raised by the nearest-neighbour indexes.

    (Known as ``IndexError_`` before PR 2; the deprecated alias was
    removed in PR 5 after its one-release grace period.)
    """


class EmptyIndexError(NNIndexError):
    """A nearest-neighbour query was issued against an empty index."""


class ReductionError(ReproError):
    """The Theorem 1 reduction received a malformed MFCGS instance."""


class BudgetExceededError(ReproError):
    """A cooperative execution budget was exhausted mid-solve.

    Raised by :meth:`repro.robustness.budget.Budget.checkpoint` when the
    wall-clock deadline passes or the node budget runs out. Budget-aware
    solvers catch it in their hot loop and return their feasible
    best-so-far arrangement; the :mod:`repro.robustness.harness` converts
    that into a ``feasible-timeout`` outcome, so the exception never
    crosses the harness boundary.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the online arrangement service.

    Raised by :mod:`repro.service` when a command is rejected *before*
    it is journaled: unknown entity ids, out-of-range attributes,
    lifecycle violations (freezing a cancelled event, cancelling a
    frozen one). A rejected command never reaches the write-ahead
    journal, so it can never resurface during recovery.
    """


class JournalError(ServiceError):
    """The write-ahead journal is unreadable or internally inconsistent.

    A torn *final* line (crash mid-append) is not an error -- recovery
    truncates it and re-runs nothing, see
    :meth:`repro.service.journal.Journal.recover`. This exception is for
    everything else: a missing/foreign header, a sequence-number gap, or
    an undecodable record in the middle of the file.
    """


class SnapshotError(JournalError):
    """A store snapshot file is unreadable, torn, or fails its checksum.

    Raised by :mod:`repro.service.snapshot` when a snapshot cannot be
    trusted: missing/foreign header, CRC mismatch, truncated payload, or
    a restored store whose canonical digest differs from the one the
    writer recorded. A bad snapshot is never fatal on its own --
    recovery falls one rung down the degradation ladder (an older
    snapshot, else full journal replay); only when *no* durable rung
    survives does recovery raise :class:`JournalError`.
    """


class ServiceOverloadedError(ServiceError):
    """The engine's admission queue is full; the request was rejected.

    Explicit overload beats an unbounded queue: the HTTP front-end maps
    this to ``503 Retry-After`` so clients back off instead of piling
    latency onto every in-flight request.
    """


class SolverFailedError(ReproError):
    """A solver could not produce any feasible arrangement.

    Raised by the robustness harness when a solver errored (or returned
    an infeasible arrangement) and no degradation rung was left to fall
    through to. Carries the structured
    :class:`repro.robustness.outcome.FailureRecord` list on
    :attr:`failures`.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        self.failures = failures
