"""Exception hierarchy for the GEACC reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidInstanceError(ReproError):
    """A GEACC instance violates a structural invariant.

    Examples: negative capacity, attribute vectors of mismatched
    dimensionality, a conflict pair referencing an unknown event, or a
    similarity matrix whose shape does not match ``|V| x |U|``.
    """


class InfeasibleArrangementError(ReproError):
    """An arrangement violates a GEACC constraint.

    Raised by :func:`repro.core.validation.validate_arrangement` with a
    human-readable description of the first violated constraint.
    """


class FlowError(ReproError):
    """Base class for errors raised by the min-cost-flow substrate."""


class InfeasibleFlowError(FlowError):
    """The requested flow amount exceeds the network's maximum flow."""


class NegativeCycleError(FlowError):
    """The residual network contains a negative-cost cycle.

    The successive-shortest-path solver maintains the invariant that no
    negative-cost residual cycle exists; encountering one indicates
    corrupted input (e.g. negative arc costs fed to the Dijkstra variant).
    """


class IndexError_(ReproError):
    """Base class for errors raised by the nearest-neighbour indexes."""


class EmptyIndexError(IndexError_):
    """A nearest-neighbour query was issued against an empty index."""


class ReductionError(ReproError):
    """The Theorem 1 reduction received a malformed MFCGS instance."""
