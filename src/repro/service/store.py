"""Mutable live-service state: a GEACC instance that grows over time.

The batch library's :class:`~repro.core.model.Instance` is a frozen
snapshot -- exactly what a long-lived service cannot use, because events
and users keep arriving. :class:`ArrangementStore` is the mutable
counterpart: events and users are appended by journaled commands, the
conflict set grows edge-by-edge, and the standing arrangement is edited
through O(1) :class:`Delta` objects that the micro-batch engine can
apply and revert without rebuilding anything.

The store is also the single source of truth for recovery: it is a pure
state machine over journal records (:meth:`ArrangementStore.apply`), so
replaying a journal reconstructs the exact pre-crash state -- see
:meth:`canonical_state` / :meth:`digest` for the equality the crash
tests assert.

Feasibility is not re-invented here: :meth:`check_invariants` snapshots
the live state into a real :class:`~repro.core.model.Instance` +
:class:`~repro.core.model.Arrangement` and runs the library's own
:func:`repro.core.validation.validate_arrangement` over it, then checks
the O(1) remaining-capacity accounting against the ground truth.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.model import Arrangement, Instance
from repro.core.similarity import (
    TILEABLE_METRICS,
    SimilarityRowCache,
    similarity_matrix,
)
from repro.core.validation import validate_arrangement
from repro.exceptions import JournalError, ServiceError

#: Journal/store command names (the record ``cmd`` field).
CMD_POST_EVENT = "post_event"
CMD_REGISTER_USER = "register_user"
CMD_REQUEST_ASSIGNMENT = "request_assignment"
CMD_FREEZE_EVENT = "freeze_event"
CMD_CANCEL_EVENT = "cancel_event"
CMD_COMMIT_BATCH = "commit_batch"
CMD_RETIRE_EVENT = "retire_event"
CMD_RETIRE_USER = "retire_user"

ALL_COMMANDS = frozenset(
    {
        CMD_POST_EVENT,
        CMD_REGISTER_USER,
        CMD_REQUEST_ASSIGNMENT,
        CMD_FREEZE_EVENT,
        CMD_CANCEL_EVENT,
        CMD_COMMIT_BATCH,
        CMD_RETIRE_EVENT,
        CMD_RETIRE_USER,
    }
)


@dataclass(frozen=True)
class StoreConfig:
    """Immutable service-wide model parameters (journal header payload).

    Attributes:
        dimension: Attribute dimensionality ``d`` of Definitions 1-2.
        t: The attribute bound ``T`` (attributes live in ``[0, T]^d``).
        metric: Similarity metric name (``euclidean`` = the paper's
            Eq. 1).
    """

    dimension: int
    t: float = 10_000.0
    metric: str = "euclidean"

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ServiceError(f"dimension must be >= 1, got {self.dimension}")
        if not (self.t > 0):
            raise ServiceError(f"attribute bound t must be > 0, got {self.t}")

    def to_json(self) -> dict:
        return {"dimension": self.dimension, "t": self.t, "metric": self.metric}

    @classmethod
    def from_json(cls, data: dict) -> "StoreConfig":
        try:
            return cls(
                dimension=int(data["dimension"]),
                t=float(data["t"]),
                metric=str(data["metric"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed store config {data!r}: {exc}") from exc


@dataclass(frozen=True)
class Delta:
    """One micro-batch's arrangement edit: unassigns, then assigns.

    Both lists hold ``(event, user)`` pairs. Application cost is O(1)
    per pair (set insert/remove + counter bump); :meth:`reverse` gives
    the exact inverse delta, so a failed batch can be rolled back
    without snapshotting the store.
    """

    assigns: tuple[tuple[int, int], ...] = ()
    unassigns: tuple[tuple[int, int], ...] = ()

    def __bool__(self) -> bool:
        return bool(self.assigns or self.unassigns)

    def reverse(self) -> "Delta":
        """The inverse edit (applying both is a no-op)."""
        return Delta(assigns=self.unassigns, unassigns=self.assigns)

    def to_json(self) -> dict:
        return {
            "assign": [[e, u] for e, u in self.assigns],
            "unassign": [[e, u] for e, u in self.unassigns],
        }

    @classmethod
    def from_json(cls, data: dict) -> "Delta":
        try:
            return cls(
                assigns=tuple((int(e), int(u)) for e, u in data.get("assign", ())),
                unassigns=tuple(
                    (int(e), int(u)) for e, u in data.get("unassign", ())
                ),
            )
        except (TypeError, ValueError) as exc:
            raise JournalError(f"malformed delta {data!r}: {exc}") from exc


@dataclass
class _LiveEvent:
    capacity: int
    attributes: tuple[float, ...]
    frozen: bool = False
    cancelled: bool = False
    conflicts: set[int] = field(default_factory=set)


@dataclass
class _LiveUser:
    capacity: int
    attributes: tuple[float, ...]


class ArrangementStore:
    """Live GEACC state: entities, conflicts, assignments, capacities.

    All mutation goes through :meth:`apply` (a journal record in, a
    state transition out) or :meth:`apply_delta` / :meth:`revert_delta`
    for the engine's batch edits. Validation of *inputs* happens before
    journaling (:meth:`validate_command`); :meth:`apply` assumes the
    record was accepted and raises :class:`JournalError` if a replayed
    record no longer fits the state -- that means the journal is corrupt,
    not merely that a client sent garbage.
    """

    def __init__(self, config: StoreConfig) -> None:
        self.config = config
        self.seq = 0
        self.requests_seen = 0
        self.batches_committed = 0
        self._events: list[_LiveEvent] = []
        self._users: list[_LiveUser] = []
        self._events_of_user: list[set[int]] = []
        self._users_of_event: list[set[int]] = []
        self._event_remaining: list[int] = []
        self._user_remaining: list[int] = []
        self._n_assignments = 0
        # Packed user attributes (rows appended as users register) plus a
        # per-event similarity-row cache over that append-only set. User
        # and event attributes are immutable, so cached rows stay valid
        # as prefixes and only new-user suffixes are ever recomputed.
        self._user_attrs_buf = np.empty((0, config.dimension), dtype=np.float64)
        self._row_cache: SimilarityRowCache | None = (
            SimilarityRowCache(config.t, config.metric)
            if config.metric in TILEABLE_METRICS
            else None
        )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def n_events(self) -> int:
        return len(self._events)

    @property
    def n_users(self) -> int:
        return len(self._users)

    @property
    def n_assignments(self) -> int:
        return self._n_assignments

    def open_events(self) -> list[int]:
        """Events still accepting (and releasing) seats, ascending."""
        return [
            v
            for v, event in enumerate(self._events)
            if not event.frozen and not event.cancelled
        ]

    def is_open(self, event: int) -> bool:
        record = self._events[event]
        return not record.frozen and not record.cancelled

    def is_frozen(self, event: int) -> bool:
        return self._events[event].frozen

    def is_cancelled(self, event: int) -> bool:
        return self._events[event].cancelled

    def event_capacity(self, event: int) -> int:
        return self._events[event].capacity

    def user_capacity(self, user: int) -> int:
        return self._users[user].capacity

    def event_attributes(self, event: int) -> tuple[float, ...]:
        return self._events[event].attributes

    def user_attributes(self, user: int) -> tuple[float, ...]:
        return self._users[user].attributes

    def event_conflicts(self, event: int) -> frozenset[int]:
        """Events conflicting with ``event`` (the live adjacency set)."""
        return frozenset(self._events[event].conflicts)

    def best_similarity(self, attributes: tuple[float, ...]) -> float:
        """Best Eq. (1) similarity of a prospective user to any live event.

        The shard router's affinity score: a new user lands on the shard
        whose events it most resembles. Cancelled events are skipped so
        tombstones left behind by a migration never attract traffic.
        """
        candidates = [e.attributes for e in self._events if not e.cancelled]
        if not candidates:
            return 0.0
        sims = similarity_matrix(
            np.asarray(candidates),
            np.asarray([attributes]),
            self.config.t,
            self.config.metric,
        )
        return float(sims.max())

    def event_remaining(self, event: int) -> int:
        return self._event_remaining[event]

    def user_remaining(self, user: int) -> int:
        return self._user_remaining[user]

    def events_of(self, user: int) -> frozenset[int]:
        return frozenset(self._events_of_user[user])

    def users_of(self, event: int) -> frozenset[int]:
        return frozenset(self._users_of_event[event])

    def pairs(self) -> list[tuple[int, int]]:
        """All standing ``(event, user)`` pairs, sorted for determinism."""
        return sorted(
            (event, user)
            for event, users in enumerate(self._users_of_event)
            for user in users
        )

    def conflicts_between(self, a: int, b: int) -> bool:
        return b in self._events[a].conflicts

    def conflicts_with_any(self, event: int, others: frozenset[int] | set[int]) -> bool:
        adjacency = self._events[event].conflicts
        return any(other in adjacency for other in others)

    def _user_attrs_view(self) -> np.ndarray:
        """Packed ``(|U|, d)`` user-attribute matrix (rows append-only)."""
        return self._user_attrs_buf[: len(self._users)]

    def _append_user_attrs(self, attributes: tuple[float, ...]) -> None:
        buf = self._user_attrs_buf
        n = len(self._users)  # the new user is already in self._users
        if n > buf.shape[0]:
            grown = np.empty(
                (max(16, 2 * buf.shape[0], n), buf.shape[1]), dtype=np.float64
            )
            grown[: buf.shape[0]] = buf
            self._user_attrs_buf = buf = grown
        buf[n - 1] = attributes

    def sim(self, event: int, user: int) -> float:
        """Eq. (1) similarity of one live pair.

        Served from the memoised event row when the metric is tileable
        (one vectorised row compute, then O(1) lookups for every later
        probe of the same event), else computed pairwise on demand.
        """
        if self._row_cache is not None:
            return float(self.sim_row(event)[user])
        row = similarity_matrix(
            np.asarray([self._events[event].attributes]),
            np.asarray([self._users[user].attributes]),
            self.config.t,
            self.config.metric,
        )
        return float(row[0, 0])

    def sim_row(self, event: int) -> np.ndarray:
        """Similarities of one event against every registered user.

        Memoised per event over the append-only user set: a repeat call
        after ``k`` new registrations computes only the ``k``-column
        suffix tile. The returned row is read-only when cached.
        """
        if not self._users:
            return np.zeros(0)
        if self._row_cache is not None:
            return self._row_cache.row(
                event,
                np.asarray(self._events[event].attributes, dtype=np.float64),
                self._user_attrs_view(),
            )
        return similarity_matrix(
            np.asarray([self._events[event].attributes]),
            np.asarray([u.attributes for u in self._users]),
            self.config.t,
            self.config.metric,
        )[0]

    def max_sum(self) -> float:
        """``MaxSum`` of the standing arrangement (Definition 5)."""
        if not self._n_assignments:
            return 0.0
        sims = self._sims_matrix()
        return float(
            sum(sims[event, user] for event, user in self.pairs())
        )

    # ------------------------------------------------------------------
    # Feasibility guard (the paper's, plus the service lifecycle)
    # ------------------------------------------------------------------

    def can_assign(self, event: int, user: int) -> bool:
        """True iff ``{event, user}`` could be added right now.

        The exact :meth:`Arrangement.can_add` guard -- capacity left on
        both sides, pair unmatched, no conflict with the user's standing
        events -- plus the service lifecycle: the event must be open and
        the similarity positive.
        """
        if not (0 <= event < self.n_events and 0 <= user < self.n_users):
            return False
        if not self.is_open(event):
            return False
        if self._event_remaining[event] <= 0 or self._user_remaining[user] <= 0:
            return False
        if user in self._users_of_event[event]:
            return False
        if self.conflicts_with_any(event, self._events_of_user[user]):
            return False
        return self.sim(event, user) > 0

    # ------------------------------------------------------------------
    # Command validation (before journaling) and application (after)
    # ------------------------------------------------------------------

    def validate_command(self, cmd: str, args: dict) -> None:
        """Reject a client command *before* it reaches the journal.

        Raises:
            ServiceError: With a client-presentable reason. Nothing is
                journaled for a rejected command.
        """
        if cmd == CMD_POST_EVENT:
            self._validate_entity_args(args)
            conflicts = args.get("conflicts", [])
            if not isinstance(conflicts, (list, tuple)):
                raise ServiceError("conflicts must be a list of event ids")
            for other in conflicts:
                if not isinstance(other, int) or not 0 <= other < self.n_events:
                    raise ServiceError(f"conflict references unknown event {other!r}")
        elif cmd == CMD_REGISTER_USER:
            self._validate_entity_args(args)
        elif cmd == CMD_REQUEST_ASSIGNMENT:
            user = args.get("user")
            if not isinstance(user, int) or not 0 <= user < self.n_users:
                raise ServiceError(f"unknown user {user!r}")
        elif cmd == CMD_FREEZE_EVENT:
            event = self._validate_event_ref(args)
            if self._events[event].cancelled:
                raise ServiceError(f"event {event} is cancelled; cannot freeze")
        elif cmd == CMD_CANCEL_EVENT:
            event = self._validate_event_ref(args)
            if self._events[event].frozen:
                raise ServiceError(f"event {event} is frozen; cannot cancel")
            if self._events[event].cancelled:
                raise ServiceError(f"event {event} is already cancelled")
        elif cmd == CMD_COMMIT_BATCH:
            # Engine-internal; validated structurally during apply.
            pass
        elif cmd == CMD_RETIRE_EVENT:
            event = self._validate_event_ref(args)
            if self._events[event].cancelled:
                raise ServiceError(f"event {event} is already retired/cancelled")
        elif cmd == CMD_RETIRE_USER:
            user = args.get("user")
            if not isinstance(user, int) or not 0 <= user < self.n_users:
                raise ServiceError(f"unknown user {user!r}")
            if self._events_of_user[user]:
                raise ServiceError(
                    f"user {user} still holds seats; release them before retiring"
                )
        else:
            raise ServiceError(f"unknown command {cmd!r}")

    def _validate_entity_args(self, args: dict) -> None:
        capacity = args.get("capacity")
        if not isinstance(capacity, int) or capacity < 0:
            raise ServiceError(f"capacity must be a non-negative int, got {capacity!r}")
        attributes = args.get("attributes")
        if not isinstance(attributes, (list, tuple)) or len(attributes) != (
            self.config.dimension
        ):
            raise ServiceError(
                f"attributes must be a length-{self.config.dimension} vector"
            )
        for value in attributes:
            if not isinstance(value, (int, float)) or not np.isfinite(value):
                raise ServiceError(f"attribute {value!r} is not a finite number")
            if not 0 <= value <= self.config.t:
                raise ServiceError(
                    f"attribute {value!r} outside [0, {self.config.t}]"
                )

    def _validate_event_ref(self, args: dict) -> int:
        event = args.get("event")
        if not isinstance(event, int) or not 0 <= event < self.n_events:
            raise ServiceError(f"unknown event {event!r}")
        return event

    def apply(self, record: dict) -> None:
        """Apply one journal record (live path and replay path alike).

        Records carry ``{"seq": n, "cmd": name, ...args}``; sequence
        numbers must arrive in order (the journal enforces contiguity,
        the store enforces monotonicity so a half-applied batch cannot
        be re-applied).

        Raises:
            JournalError: If the record does not fit the current state.
        """
        seq = record.get("seq")
        cmd = record.get("cmd")
        if not isinstance(seq, int) or seq != self.seq + 1:
            raise JournalError(
                f"record seq {seq!r} does not follow store seq {self.seq}"
            )
        if cmd == CMD_POST_EVENT:
            self._apply_post_event(record)
        elif cmd == CMD_REGISTER_USER:
            self._apply_register_user(record)
        elif cmd == CMD_REQUEST_ASSIGNMENT:
            self.requests_seen += 1
        elif cmd == CMD_FREEZE_EVENT:
            self._events[self._checked_event(record)].frozen = True
        elif cmd == CMD_CANCEL_EVENT:
            self._apply_cancel(record)
        elif cmd == CMD_COMMIT_BATCH:
            self._apply_commit_batch(record)
        elif cmd == CMD_RETIRE_EVENT:
            self._apply_retire_event(record)
        elif cmd == CMD_RETIRE_USER:
            self._apply_retire_user(record)
        else:
            raise JournalError(f"unknown journal command {cmd!r}")
        self.seq = seq

    def _checked_event(self, record: dict) -> int:
        event = record.get("event")
        if not isinstance(event, int) or not 0 <= event < self.n_events:
            raise JournalError(f"record references unknown event {event!r}")
        return event

    def _apply_post_event(self, record: dict) -> None:
        conflicts = {int(v) for v in record.get("conflicts", ())}
        for other in conflicts:
            if not 0 <= other < self.n_events:
                raise JournalError(f"conflict references unknown event {other}")
        event = len(self._events)
        self._events.append(
            _LiveEvent(
                capacity=int(record["capacity"]),
                attributes=tuple(float(x) for x in record["attributes"]),
                conflicts=conflicts,
            )
        )
        self._users_of_event.append(set())
        self._event_remaining.append(int(record["capacity"]))
        for other in conflicts:
            self._events[other].conflicts.add(event)

    def _apply_register_user(self, record: dict) -> None:
        user = _LiveUser(
            capacity=int(record["capacity"]),
            attributes=tuple(float(x) for x in record["attributes"]),
        )
        self._users.append(user)
        self._append_user_attrs(user.attributes)
        self._events_of_user.append(set())
        self._user_remaining.append(int(record["capacity"]))

    def _apply_cancel(self, record: dict) -> None:
        event = self._checked_event(record)
        live = self._events[event]
        if live.frozen or live.cancelled:
            raise JournalError(f"cancel of non-open event {event}")
        # Deterministically derived from state -- the record does not
        # (and must not) carry the seat list.
        for user in sorted(self._users_of_event[event]):
            self._unassign(event, user)
        live.cancelled = True

    def _apply_commit_batch(self, record: dict) -> None:
        delta = Delta.from_json(record)
        self.apply_delta(delta, _strict=JournalError)
        self.batches_committed += 1

    def _apply_retire_event(self, record: dict) -> None:
        """Tombstone an event after its state migrated to another shard.

        Unlike :meth:`_apply_cancel` this also releases *frozen* seats:
        the migrated copy owns them now, and keeping the tombstone's
        counters consistent requires the source side to hold none. The
        end state is indistinguishable from a cancelled event, so the
        canonical-state format (and every pre-sharding digest) is
        untouched.
        """
        event = self._checked_event(record)
        live = self._events[event]
        if live.cancelled:
            raise JournalError(f"retire of already-retired event {event}")
        for user in sorted(self._users_of_event[event]):
            self._unassign(event, user)
        live.frozen = False
        live.cancelled = True

    def _apply_retire_user(self, record: dict) -> None:
        """Tombstone a migrated user: capacity drops to zero.

        The user must hold no seats (its events were retired first in
        the migration order); a seat here means the rebalance protocol
        was violated, i.e. a corrupt journal.
        """
        user = record.get("user")
        if not isinstance(user, int) or not 0 <= user < self.n_users:
            raise JournalError(f"retire of unknown user {user!r}")
        if self._events_of_user[user]:
            raise JournalError(f"retire of user {user} who still holds seats")
        self._users[user].capacity = 0
        self._user_remaining[user] = 0

    # ------------------------------------------------------------------
    # O(1) delta application (the engine's edit path)
    # ------------------------------------------------------------------

    def apply_delta(
        self, delta: Delta, _strict: type[Exception] = ServiceError
    ) -> None:
        """Apply ``delta`` (unassigns first); each pair edit is O(1).

        Every edit must target an *open* event; assigns must pass the
        full :meth:`can_assign` guard minus the sim check (the engine
        guarantees sim > 0 by construction; replay trusts the journal
        and the invariant checker re-certifies afterwards).
        """
        applied_un: list[tuple[int, int]] = []
        applied_as: list[tuple[int, int]] = []
        try:
            for event, user in delta.unassigns:
                if not (0 <= event < self.n_events and 0 <= user < self.n_users):
                    raise _strict(f"delta references unknown pair ({event}, {user})")
                if not self.is_open(event):
                    raise _strict(f"delta edits non-open event {event}")
                if user not in self._users_of_event[event]:
                    raise _strict(f"delta unassigns unmatched pair ({event}, {user})")
                self._unassign(event, user)
                applied_un.append((event, user))
            for event, user in delta.assigns:
                if not (0 <= event < self.n_events and 0 <= user < self.n_users):
                    raise _strict(f"delta references unknown pair ({event}, {user})")
                if (
                    not self.is_open(event)
                    or self._event_remaining[event] <= 0
                    or self._user_remaining[user] <= 0
                    or user in self._users_of_event[event]
                    or self.conflicts_with_any(event, self._events_of_user[user])
                ):
                    raise _strict(f"delta assign ({event}, {user}) is infeasible")
                self._assign(event, user)
                applied_as.append((event, user))
        except Exception:
            # Roll the partial application back so the store never holds
            # a half-applied batch.
            for event, user in reversed(applied_as):
                self._unassign(event, user)
            for event, user in reversed(applied_un):
                self._assign(event, user)
            raise

    def revert_delta(self, delta: Delta) -> None:
        """Undo a previously applied delta (O(1) per pair)."""
        self.apply_delta(delta.reverse())

    def _assign(self, event: int, user: int) -> None:
        self._users_of_event[event].add(user)
        self._events_of_user[user].add(event)
        self._event_remaining[event] -= 1
        self._user_remaining[user] -= 1
        self._n_assignments += 1

    def _unassign(self, event: int, user: int) -> None:
        self._users_of_event[event].remove(user)
        self._events_of_user[user].remove(event)
        self._event_remaining[event] += 1
        self._user_remaining[user] += 1
        self._n_assignments -= 1

    # ------------------------------------------------------------------
    # Snapshots, equality, invariants
    # ------------------------------------------------------------------

    def _sims_matrix(self) -> np.ndarray:
        if not self._events or not self._users:
            return np.zeros((len(self._events), len(self._users)))
        return similarity_matrix(
            np.asarray([e.attributes for e in self._events]),
            self._user_attrs_view(),
            self.config.t,
            self.config.metric,
        )

    def snapshot_instance(self) -> Instance:
        """Freeze the live state into a batch :class:`Instance`.

        Cancelled events keep their slot (ids are stable) with capacity
        0, so the snapshot's shape always matches the live id space.
        """
        capacities = [
            0 if e.cancelled else e.capacity for e in self._events
        ]
        conflicts = ConflictGraph(
            len(self._events),
            [
                (a, b)
                for a, event in enumerate(self._events)
                for b in event.conflicts
                if a < b
            ],
        )
        return Instance(
            np.asarray(capacities, dtype=np.int64),
            np.asarray([u.capacity for u in self._users], dtype=np.int64),
            conflicts,
            sims=self._sims_matrix(),
            validate=False,
        )

    def snapshot_arrangement(self, instance: Instance | None = None) -> Arrangement:
        """The standing assignment as a batch :class:`Arrangement`."""
        arrangement = Arrangement(instance or self.snapshot_instance())
        for event, user in self.pairs():
            arrangement.add(event, user)
        return arrangement

    def check_invariants(self) -> None:
        """Certify the live state with the library's own validator.

        Runs :func:`repro.core.validation.validate_arrangement` over a
        snapshot (capacities, conflicts, sim > 0 -- Definition 5 in
        full), then cross-checks the O(1) remaining-capacity counters
        against the ground-truth set sizes.

        Raises:
            repro.exceptions.InfeasibleArrangementError: On a GEACC
                constraint violation.
            ServiceError: On internal accounting drift.
        """
        instance = self.snapshot_instance()
        validate_arrangement(self.snapshot_arrangement(instance), instance)
        for event, live in enumerate(self._events):
            expected = live.capacity - len(self._users_of_event[event])
            if live.cancelled and self._users_of_event[event]:
                raise ServiceError(f"cancelled event {event} still holds seats")
            if self._event_remaining[event] != expected:
                raise ServiceError(
                    f"event {event} remaining-capacity drift: "
                    f"{self._event_remaining[event]} != {expected}"
                )
        for user in range(self.n_users):
            expected = self._users[user].capacity - len(self._events_of_user[user])
            if self._user_remaining[user] != expected:
                raise ServiceError(
                    f"user {user} remaining-capacity drift: "
                    f"{self._user_remaining[user]} != {expected}"
                )
        if self._n_assignments != sum(
            len(users) for users in self._users_of_event
        ):
            raise ServiceError("assignment-count drift")

    def canonical_state(self) -> dict:
        """The full state as one canonical JSON-ready dict.

        Two stores are *the same state* iff their canonical dicts are
        equal; :meth:`digest` hashes this dict, and the crash-recovery
        tests compare digests across kill/replay boundaries.
        """
        return {
            "config": self.config.to_json(),
            "seq": self.seq,
            "requests_seen": self.requests_seen,
            "batches_committed": self.batches_committed,
            "events": [
                {
                    "capacity": e.capacity,
                    "attributes": list(e.attributes),
                    "frozen": e.frozen,
                    "cancelled": e.cancelled,
                    "conflicts": sorted(e.conflicts),
                }
                for e in self._events
            ],
            "users": [
                {"capacity": u.capacity, "attributes": list(u.attributes)}
                for u in self._users
            ],
            "assignments": [[e, u] for e, u in self.pairs()],
            "event_remaining": list(self._event_remaining),
            "user_remaining": list(self._user_remaining),
        }

    @classmethod
    def from_canonical(cls, state: dict) -> "ArrangementStore":
        """Rebuild a store from a :meth:`canonical_state` dict.

        The inverse of :meth:`canonical_state`, used by the snapshot
        layer: entities and assignments are reconstructed directly (no
        journal records re-applied), then the O(1) remaining-capacity
        counters are cross-checked against the snapshot's own -- any
        drift means the payload does not describe a state this class can
        produce.

        Raises:
            ServiceError: On a structurally malformed or internally
                inconsistent canonical payload.
        """
        try:
            store = cls(StoreConfig.from_json(state["config"]))
            store.seq = int(state["seq"])
            store.requests_seen = int(state["requests_seen"])
            store.batches_committed = int(state["batches_committed"])
            for entry in state["events"]:
                store._events.append(
                    _LiveEvent(
                        capacity=int(entry["capacity"]),
                        attributes=tuple(float(x) for x in entry["attributes"]),
                        frozen=bool(entry["frozen"]),
                        cancelled=bool(entry["cancelled"]),
                        conflicts={int(v) for v in entry["conflicts"]},
                    )
                )
                store._users_of_event.append(set())
                store._event_remaining.append(int(entry["capacity"]))
            for entry in state["users"]:
                user = _LiveUser(
                    capacity=int(entry["capacity"]),
                    attributes=tuple(float(x) for x in entry["attributes"]),
                )
                store._users.append(user)
                store._append_user_attrs(user.attributes)
                store._events_of_user.append(set())
                store._user_remaining.append(int(entry["capacity"]))
            for pair in state["assignments"]:
                event, user = (int(pair[0]), int(pair[1]))
                if not (0 <= event < store.n_events and 0 <= user < store.n_users):
                    raise ValueError(f"assignment ({event}, {user}) out of range")
                if user in store._users_of_event[event]:
                    raise ValueError(f"duplicate assignment ({event}, {user})")
                store._assign(event, user)
            expected_event = [int(v) for v in state["event_remaining"]]
            expected_user = [int(v) for v in state["user_remaining"]]
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed canonical state: {exc}") from exc
        if (
            store._event_remaining != expected_event
            or store._user_remaining != expected_user
        ):
            raise ServiceError(
                "canonical state is internally inconsistent: remaining-capacity "
                "fields disagree with the assignment list"
            )
        return store

    def digest(self) -> str:
        """SHA-256 over the canonical state (stable across processes)."""
        payload = json.dumps(
            self.canonical_state(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def arrangement_state(self) -> dict:
        """Canonical state minus the journal counters.

        A sharded deployment splits one logical history across several
        journals, so ``seq`` / ``requests_seen`` / ``batches_committed``
        necessarily differ from the unsharded run even when the
        *arrangement* is identical. This view keeps everything a user
        can observe -- entities, lifecycle flags, conflicts, seats,
        remaining capacities -- and drops only the bookkeeping counters;
        :func:`repro.service.sharding.ShardCoordinator.arrangement_state`
        produces the same dict from global ids, which is the equality
        the sharding equivalence tests assert.
        """
        state = self.canonical_state()
        for counter in ("seq", "requests_seen", "batches_committed"):
            del state[counter]
        return state

    def arrangement_digest(self) -> str:
        """SHA-256 over :meth:`arrangement_state`."""
        payload = json.dumps(
            self.arrangement_state(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrangementStore):
            return NotImplemented
        return self.canonical_state() == other.canonical_state()

    __hash__ = None  # type: ignore[assignment]  # mutable; identity hashing would lie

    def __repr__(self) -> str:
        return (
            f"ArrangementStore(seq={self.seq}, |V|={self.n_events}, "
            f"|U|={self.n_users}, |M|={self._n_assignments}, "
            f"open={len(self.open_events())})"
        )
