"""End-to-end crash-recovery smoke: serve, mutate, kill -9, recover.

Two scenarios, two drivers: CI runs ``python -m repro.service.smoke``
(exit 0 = the crash-recovery invariant held), and
``tests/service/test_crash_smoke.py`` calls :func:`run_smoke` /
:func:`run_compaction_smoke` so the same end-to-end paths are exercised
by the tier-1 suite.

Scenario A (:func:`run_smoke`) is the PR 4 acceptance criterion
verbatim:

1. start ``geacc serve`` on an ephemeral port with a fresh journal;
2. post an event, register a user, request an assignment over HTTP and
   assert the user got a seat;
3. ``kill -9`` the server mid-stream (an un-acknowledged command may be
   in flight -- that is the point);
4. restart ``geacc serve`` from the same journal;
5. assert the recovered state digest equals an independent
   :func:`repro.service.journal.replay` of the journal, and that the
   assignment from step 2 survived.

Scenario B (:func:`run_compaction_smoke`) kills the server in the
widest compaction crash window -- after the snapshot is durably written
but before the journal is trimmed (the hidden
``--crash-after-snapshot`` serve flag hard-exits there) -- then
restarts and requires the recovered digest to equal the pre-crash one
via the snapshot + tail ladder rung. A second pass compacts for real,
kill -9s immediately after, and requires the same equality from the
trimmed journal.

Scenario C (:func:`run_sharded_smoke`) is scenario A against a shard
fleet: ``geacc serve --shards 4``, events and users spread across every
shard (plus a conflict edge to exercise same-shard placement), kill -9,
restart, and the coordinator's manifest-walk recovery must reproduce
the pre-crash global digest, the surviving assignments, and a live
4-shard topology in ``GET /state``.

Uses ``urllib`` (a client, not a server -- rule R8 bans server-side
socket primitives outside this package, and the subprocess boundary is
exactly what a kill -9 needs anyway).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.exceptions import ServiceError
from repro.service.journal import replay as replay_journal

#: How long to wait for the server to print its listening line.
STARTUP_TIMEOUT_S = 30.0


def _request(base: str, method: str, path: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


class ServeProcess:
    """A ``geacc serve`` subprocess plus its parsed base URL."""

    def __init__(self, journal: Path, extra_args: tuple[str, ...] = ()) -> None:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--journal",
                str(journal),
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--dimension",
                "2",
                *extra_args,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.base = self._await_listening()

    def _await_listening(self) -> str:
        assert self.process.stdout is not None
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        lines: list[str] = []
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            lines.append(line)
            if "listening on " in line:
                return line.rsplit("listening on ", 1)[1].strip()
        self.process.kill()
        raise ServiceError(
            "geacc serve never reported its address; output was:\n" + "".join(lines)
        )

    def kill9(self) -> None:
        """SIGKILL -- no cleanup handlers, no flushes, a real crash."""
        self.process.send_signal(signal.SIGKILL)
        self.process.wait()

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()


def run_smoke(workdir: str | Path | None = None, verbose: bool = False) -> None:
    """Run the kill -9 scenario; raises :class:`ServiceError` on failure."""

    def say(message: str) -> None:
        if verbose:
            print(message, flush=True)

    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        journal = Path(tmp) / "service.jsonl"
        server = ServeProcess(journal)
        try:
            say(f"serving at {server.base} (journal {journal})")
            event = _request(
                server.base,
                "POST",
                "/events",
                {"capacity": 3, "attributes": [10.0, 20.0]},
            )["event"]
            user = _request(
                server.base,
                "POST",
                "/users",
                {"capacity": 2, "attributes": [11.0, 19.0]},
            )["user"]
            assigned = _request(server.base, "POST", "/assignments", {"user": user})
            if event not in assigned["events"]:
                raise ServiceError(
                    f"user {user} was not assigned event {event}: {assigned}"
                )
            pre_crash = _request(server.base, "GET", "/state")
            say(f"pre-crash state: {pre_crash}")
        finally:
            server.kill9()
        say("killed -9; restarting from the journal")

        recovered_store, _ = replay_journal(journal)
        server = ServeProcess(journal)
        try:
            post_crash = _request(server.base, "GET", "/state")
            say(f"post-crash state: {post_crash}")
            if post_crash["digest"] != recovered_store.digest():
                raise ServiceError(
                    "recovered server state diverges from reference replay: "
                    f"{post_crash['digest']} != {recovered_store.digest()}"
                )
            if post_crash["digest"] != pre_crash["digest"]:
                raise ServiceError(
                    "recovered state does not match pre-crash state: "
                    f"{post_crash['digest']} != {pre_crash['digest']}"
                )
            survived = _request(server.base, "GET", f"/assignments/{user}")
            if event not in survived["events"]:
                raise ServiceError(
                    f"assignment ({event}, {user}) did not survive the crash: "
                    f"{survived}"
                )
            # And the service still accepts work after recovery.
            second = _request(
                server.base,
                "POST",
                "/users",
                {"capacity": 1, "attributes": [9.0, 21.0]},
            )["user"]
            _request(server.base, "POST", "/assignments", {"user": second})
        finally:
            server.terminate()
    say("crash-recovery smoke passed")


def run_compaction_smoke(
    workdir: str | Path | None = None, verbose: bool = False
) -> None:
    """Kill -9 mid-compaction; require clean snapshot+tail recovery."""

    def say(message: str) -> None:
        if verbose:
            print(message, flush=True)

    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        journal = Path(tmp) / "service.jsonl"
        # --compact-bytes 0 disables the automatic trigger so the POST
        # /compact below is the only compaction; --crash-after-snapshot
        # hard-exits between the snapshot write and the journal trim.
        server = ServeProcess(
            journal, extra_args=("--compact-bytes", "0", "--crash-after-snapshot")
        )
        try:
            say(f"serving at {server.base} (journal {journal})")
            event = _request(
                server.base,
                "POST",
                "/events",
                {"capacity": 3, "attributes": [10.0, 20.0]},
            )["event"]
            user = _request(
                server.base,
                "POST",
                "/users",
                {"capacity": 2, "attributes": [11.0, 19.0]},
            )["user"]
            _request(server.base, "POST", "/assignments", {"user": user})
            pre_crash = _request(server.base, "GET", "/state")
            say(f"pre-crash state: {pre_crash}")
            try:
                _request(server.base, "POST", "/compact")
            except (urllib.error.URLError, ConnectionError, OSError):
                pass  # the process died mid-request -- that is the scenario
            else:
                raise ServiceError(
                    "compaction answered despite --crash-after-snapshot"
                )
            exit_code = server.process.wait(timeout=30)
            say(f"server hard-exited mid-compaction with code {exit_code}")
            if exit_code == 0:
                raise ServiceError("mid-compaction crash exited 0")
        finally:
            server.terminate()

        # Restart (no crash flag): the snapshot is durable, the journal
        # untrimmed -- recovery must take the snapshot + tail rung.
        server = ServeProcess(journal, extra_args=("--compact-bytes", "0"))
        try:
            post_crash = _request(server.base, "GET", "/state")
            say(f"post-crash state: {post_crash}")
            if post_crash["digest"] != pre_crash["digest"]:
                raise ServiceError(
                    "state after mid-compaction crash diverges: "
                    f"{post_crash['digest']} != {pre_crash['digest']}"
                )
            recovery = post_crash["last_recovery"]
            if not recovery or recovery["rung"] != "snapshot+tail":
                raise ServiceError(
                    f"expected snapshot+tail recovery, got {recovery}"
                )
            snapshots = post_crash["snapshots"]
            if not snapshots or snapshots["count"] < 1:
                raise ServiceError(
                    f"mid-compaction snapshot did not survive: {snapshots}"
                )
            # Now compact for real and kill -9 right after: recovery from
            # the *trimmed* journal must still reproduce the state.
            stats = _request(server.base, "POST", "/compact")
            say(f"real compaction: {stats}")
            second = _request(
                server.base,
                "POST",
                "/users",
                {"capacity": 1, "attributes": [9.0, 21.0]},
            )["user"]
            _request(server.base, "POST", "/assignments", {"user": second})
            pre_kill = _request(server.base, "GET", "/state")
        finally:
            server.kill9()
        say("killed -9 after compaction; restarting")

        server = ServeProcess(journal, extra_args=("--compact-bytes", "0"))
        try:
            final = _request(server.base, "GET", "/state")
            say(f"final state: {final}")
            if final["digest"] != pre_kill["digest"]:
                raise ServiceError(
                    "state after post-compaction crash diverges: "
                    f"{final['digest']} != {pre_kill['digest']}"
                )
            if final["journal_base_seq"] != stats["base_seq"]:
                raise ServiceError(
                    f"journal base seq {final['journal_base_seq']} does not "
                    f"match the compaction's {stats['base_seq']}"
                )
        finally:
            server.terminate()
    say("mid-compaction crash-recovery smoke passed")


def run_sharded_smoke(
    workdir: str | Path | None = None, verbose: bool = False
) -> None:
    """Kill -9 a 4-shard fleet; require full per-shard + manifest recovery."""

    def say(message: str) -> None:
        if verbose:
            print(message, flush=True)

    # Four well-separated corners (t defaults to 10000): best-similarity
    # routing sends each user to the shard owning its corner's event.
    corners = [
        [1000.0, 1000.0],
        [9000.0, 1000.0],
        [1000.0, 9000.0],
        [9000.0, 9000.0],
    ]
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        root = Path(tmp) / "fleet"
        server = ServeProcess(root, extra_args=("--shards", "4"))
        try:
            say(f"serving 4 shards at {server.base} (root {root})")
            events = [
                _request(
                    server.base,
                    "POST",
                    "/events",
                    {"capacity": 2, "attributes": corner},
                )["event"]
                for corner in corners
            ]
            # A conflicting sibling must land on its component's shard.
            rival = _request(
                server.base,
                "POST",
                "/events",
                {
                    "capacity": 2,
                    "attributes": [1050.0, 1050.0],
                    "conflicts": [events[0]],
                },
            )["event"]
            users = []
            for corner in corners:
                user = _request(
                    server.base,
                    "POST",
                    "/users",
                    {"capacity": 1, "attributes": [corner[0] + 5.0, corner[1] - 5.0]},
                )["user"]
                users.append(user)
                assigned = _request(
                    server.base, "POST", "/assignments", {"user": user}
                )
                if not assigned["events"]:
                    raise ServiceError(f"user {user} got no seat: {assigned}")
            pre_crash = _request(server.base, "GET", "/state")
            say(f"pre-crash state: {pre_crash}")
            topology = pre_crash.get("sharding")
            if not topology or topology["shards"] != 4:
                raise ServiceError(f"expected a 4-shard topology: {topology}")
            # rival joined events[0]'s component: 5 events, 4 components.
            if topology["components"] != 4:
                raise ServiceError(
                    f"expected 4 conflict components, got {topology}"
                )
            populated = sum(
                1 for shard in topology["per_shard"] if shard["n_events"] > 0
            )
            if populated != 4:
                raise ServiceError(
                    f"expected events on all 4 shards, got {topology}"
                )
        finally:
            server.kill9()
        say("killed -9; recovering the fleet from its manifest + journals")

        server = ServeProcess(root, extra_args=("--shards", "4"))
        try:
            post_crash = _request(server.base, "GET", "/state")
            say(f"post-crash state: {post_crash}")
            if post_crash["digest"] != pre_crash["digest"]:
                raise ServiceError(
                    "recovered fleet state does not match pre-crash state: "
                    f"{post_crash['digest']} != {pre_crash['digest']}"
                )
            if post_crash.get("sharding", {}).get("shards") != 4:
                raise ServiceError(
                    f"topology did not survive the crash: {post_crash}"
                )
            survived = _request(
                server.base, "GET", f"/assignments/{users[0]}"
            )
            if not survived["events"]:
                raise ServiceError(
                    f"user {users[0]}'s assignment did not survive: {survived}"
                )
            # The fleet still accepts work after recovery -- including on
            # the component the conflict edge grew.
            late = _request(
                server.base,
                "POST",
                "/users",
                {"capacity": 1, "attributes": [1040.0, 1060.0]},
            )["user"]
            late_assigned = _request(
                server.base, "POST", "/assignments", {"user": late}
            )
            if not late_assigned["events"]:
                raise ServiceError(
                    f"post-recovery user {late} got no seat: {late_assigned}"
                )
            if rival not in late_assigned["events"] and events[0] not in (
                late_assigned["events"]
            ):
                raise ServiceError(
                    f"post-recovery user {late} was seated off its corner: "
                    f"{late_assigned}"
                )
        finally:
            server.terminate()
    say("sharded crash-recovery smoke passed")


def main() -> int:
    try:
        run_smoke(verbose=True)
        run_compaction_smoke(verbose=True)
        run_sharded_smoke(verbose=True)
    except ServiceError as exc:
        print(f"SMOKE FAILED: {exc}", file=sys.stderr)
        return 1
    print("service crash-recovery smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
