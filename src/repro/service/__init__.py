"""`repro.service`: the journaled online arrangement engine.

The serving layer that turns the batch solvers into a long-lived,
crash-recoverable system (``docs/service.md``). Four layers, composed
by :class:`~repro.service.frontend.ArrangementService`:

* **state** -- :class:`~repro.service.store.ArrangementStore`: a
  mutable live GEACC instance (events/users/assignments, O(1) delta
  edits, remaining-capacity accounting) whose invariants are certified
  by the library's own :mod:`repro.core.validation`;
* **durability** -- :class:`~repro.service.journal.Journal`: an fsync'd
  JSONL write-ahead journal with deterministic sequence numbers and a
  :func:`~repro.service.journal.replay` that reconstructs the exact
  pre-crash state, batch boundaries notwithstanding; plus
  :mod:`repro.service.snapshot`: atomic CRC-checksummed snapshots and
  journal compaction, so recovery is bounded by the tail length
  (newest snapshot + tail, degrading to older snapshots and full
  replay when a rung is corrupt);
* **engine** -- :class:`~repro.service.engine.MicroBatchEngine`:
  coalesces assignment requests and re-solves the un-frozen remainder
  under a budget with the degradation ladder as fallback, behind
  bounded-queue admission control;
* **front-end** -- :mod:`repro.service.http` (stdlib
  ``ThreadingHTTPServer`` JSON API, the one sanctioned home of
  ``http.server`` under rule R8) plus :mod:`repro.service.loadgen`
  (``geacc replay``: timeline-driven load generation with latency
  percentiles and clairvoyant-bound quality ratios).
"""

from repro.service.engine import MicroBatchEngine, PendingRequest
from repro.service.frontend import ArrangementService
from repro.service.journal import (
    JOURNAL_FORMAT,
    REAL_FS,
    FileSystem,
    Journal,
    RecoveryReport,
    replay,
)
from repro.service.loadgen import (
    ReplayReport,
    replay_timeline,
    replay_timeline_sharded,
)
from repro.service.sharding import (
    ConflictPartitioner,
    ShardCoordinator,
    ShardManager,
    ShardManifest,
    shardable_instance,
    shardable_timeline,
)
from repro.service.snapshot import (
    DEFAULT_RETAIN,
    SNAPSHOT_FORMAT,
    CompactionStats,
    atomic_write_bytes,
    compact,
    list_snapshots,
    load_snapshot,
    recover_state,
    write_snapshot,
)
from repro.service.store import ArrangementStore, Delta, StoreConfig

__all__ = [
    "ArrangementService",
    "ArrangementStore",
    "CompactionStats",
    "ConflictPartitioner",
    "DEFAULT_RETAIN",
    "Delta",
    "FileSystem",
    "Journal",
    "JOURNAL_FORMAT",
    "MicroBatchEngine",
    "PendingRequest",
    "REAL_FS",
    "RecoveryReport",
    "ReplayReport",
    "SNAPSHOT_FORMAT",
    "ShardCoordinator",
    "ShardManager",
    "ShardManifest",
    "StoreConfig",
    "atomic_write_bytes",
    "compact",
    "list_snapshots",
    "load_snapshot",
    "recover_state",
    "replay",
    "replay_timeline",
    "replay_timeline_sharded",
    "shardable_instance",
    "shardable_timeline",
    "write_snapshot",
]
