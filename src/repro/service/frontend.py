"""The service façade: journaled commands over a live store + engine.

:class:`ArrangementService` is the single entry point both front-ends
(the HTTP API and the ``geacc replay`` load generator) talk to. It owns

* the :class:`~repro.service.store.ArrangementStore` (live state),
* the :class:`~repro.service.journal.Journal` (durability), and
* the :class:`~repro.service.engine.MicroBatchEngine` (solving),

and enforces the write-ahead discipline: validate -> journal (fsync) ->
apply, all under one state lock, so every state the store ever reaches
is reconstructible from the journal prefix that produced it.

With a ``snapshot_dir`` the service also owns the snapshot/compaction
lifecycle (:mod:`repro.service.snapshot`): recovery walks the snapshot
+ tail ladder instead of full replay, :meth:`ArrangementService.compact`
trims the journal behind a fresh checksummed snapshot, and
``compact_bytes`` arms an automatic trigger on journal growth.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.exceptions import ServiceError
from repro.service.engine import (
    DEFAULT_BATCH_MS,
    DEFAULT_LADDER,
    DEFAULT_MAX_PENDING,
    DEFAULT_SOLVE_TIMEOUT,
    BatchSolver,
    MicroBatchEngine,
    PendingRequest,
)
from repro.service.journal import Journal
from repro.service.snapshot import (
    DEFAULT_RETAIN,
    CompactionStats,
    compact,
    list_snapshots,
)
from repro.service.store import (
    CMD_CANCEL_EVENT,
    CMD_COMMIT_BATCH,
    CMD_FREEZE_EVENT,
    CMD_POST_EVENT,
    CMD_REGISTER_USER,
    CMD_REQUEST_ASSIGNMENT,
    CMD_RETIRE_EVENT,
    CMD_RETIRE_USER,
    ArrangementStore,
    Delta,
    StoreConfig,
)

#: Default wait allowance for a blocking assignment request: generously
#: past one batch window + one solve deadline.
DEFAULT_REQUEST_WAIT = 30.0


class ArrangementService:
    """A journaled online arrangement service over one GEACC universe.

    Build with :meth:`create` (fresh journal) or :meth:`recover`
    (existing journal -> reconstructed state); pass ``threaded=False``
    to drive batches synchronously (tests, deterministic load
    generation) instead of via the background engine thread.
    """

    def __init__(
        self,
        store: ArrangementStore,
        journal: Journal,
        *,
        batch_ms: float = DEFAULT_BATCH_MS,
        solve_timeout: float = DEFAULT_SOLVE_TIMEOUT,
        max_pending: int = DEFAULT_MAX_PENDING,
        ladder: tuple[str, ...] = DEFAULT_LADDER,
        threaded: bool = True,
        snapshot_dir: str | Path | None = None,
        retain: int = DEFAULT_RETAIN,
        compact_bytes: int | None = None,
        batch_solver: "BatchSolver | None" = None,
    ) -> None:
        if store.seq != journal.seq:
            raise ServiceError(
                f"store seq {store.seq} does not match journal seq {journal.seq}"
            )
        if compact_bytes is not None and snapshot_dir is None:
            raise ServiceError("compact_bytes requires a snapshot_dir")
        self.store = store
        self.journal = journal
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir is not None else None
        self.retain = retain
        self.compact_bytes = compact_bytes
        self.compactions = 0
        self.last_compaction: CompactionStats | None = None
        # Test hook for the kill-mid-compaction smoke scenario (hard
        # process exit between snapshot write and journal trim).
        self._crash_after_snapshot = False
        self._lock = threading.RLock()
        self.engine = MicroBatchEngine(
            self,
            batch_ms=batch_ms,
            solve_timeout=solve_timeout,
            max_pending=max_pending,
            ladder=ladder,
            solver=batch_solver,
        )
        self._threaded = threaded
        self._closed = False
        if threaded:
            self.engine.start()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, journal_path: str | Path, config: StoreConfig, **kwargs: object
    ) -> "ArrangementService":
        """Start a brand-new service with an empty journal."""
        journal = Journal.create(journal_path, config)
        return cls(ArrangementStore(config), journal, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def recover(
        cls,
        journal_path: str | Path,
        *,
        snapshot_dir: str | Path | None = None,
        config: StoreConfig | None = None,
        **kwargs: object,
    ) -> "ArrangementService":
        """Restart from an existing journal (truncating any torn tail).

        With ``snapshot_dir``, recovery walks the degradation ladder
        (newest snapshot + tail -> older snapshot -> full replay) and
        the service keeps compacting into that directory. ``config`` is
        the last-rung safety net: an empty/headerless journal with no
        snapshots recovers to a fresh empty store instead of failing.
        """
        journal, store = Journal.recover(
            journal_path, snapshot_dir=snapshot_dir, config=config
        )
        return cls(store, journal, snapshot_dir=snapshot_dir, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def open(
        cls,
        journal_path: str | Path,
        config: StoreConfig | None = None,
        *,
        snapshot_dir: str | Path | None = None,
        **kwargs: object,
    ) -> "ArrangementService":
        """Recover when anything durable exists, otherwise create fresh.

        ``config`` is required for creation and is the empty-journal
        safety net for recovery (the journal header wins when present).
        A missing journal next to surviving snapshots still recovers --
        the snapshot is durable state, not a cache.
        """
        durable = Path(journal_path).exists() or (
            snapshot_dir is not None and bool(list_snapshots(snapshot_dir))
        )
        if durable:
            return cls.recover(
                journal_path, snapshot_dir=snapshot_dir, config=config, **kwargs
            )
        if config is None:
            raise ServiceError(
                f"{journal_path} does not exist and no config was given"
            )
        return cls.create(journal_path, config, snapshot_dir=snapshot_dir, **kwargs)

    # ------------------------------------------------------------------
    # The write-ahead spine
    # ------------------------------------------------------------------

    def _journal_and_apply(self, cmd: str, args: dict) -> dict:
        """Durably journal one accepted command, then mutate the store."""
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            record = self.journal.append(cmd, args)
            self.store.apply(record)
            if (
                self.compact_bytes is not None
                and self.journal.size_bytes >= self.compact_bytes
            ):
                self._compact_locked()
            return record

    def _accept(self, cmd: str, args: dict) -> dict:
        with self._lock:
            self.store.validate_command(cmd, args)
            return self._journal_and_apply(cmd, args)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def post_event(
        self,
        capacity: int,
        attributes: list[float],
        conflicts: list[int] | None = None,
    ) -> int:
        """Post a new event; returns its (stable) id."""
        record = self._accept(
            CMD_POST_EVENT,
            {
                "capacity": capacity,
                "attributes": list(attributes),
                "conflicts": sorted(set(conflicts or [])),
            },
        )
        del record
        with self._lock:
            return self.store.n_events - 1

    def register_user(self, capacity: int, attributes: list[float]) -> int:
        """Register a new user; returns their (stable) id."""
        self._accept(
            CMD_REGISTER_USER,
            {"capacity": capacity, "attributes": list(attributes)},
        )
        with self._lock:
            return self.store.n_users - 1

    def request_assignment(
        self,
        user: int,
        *,
        wait: bool = True,
        timeout: float = DEFAULT_REQUEST_WAIT,
    ) -> tuple[int, ...] | PendingRequest:
        """Ask the engine to (re)arrange ``user``.

        The request is admission-checked first (a full queue rejects
        with :class:`~repro.exceptions.ServiceOverloadedError` before
        anything is journaled), then journaled, then queued for the next
        micro-batch.

        Returns:
            The user's standing events after the batch commits
            (``wait=True``), or the :class:`PendingRequest` future
            (``wait=False``).
        """
        with self._lock:
            self.store.validate_command(CMD_REQUEST_ASSIGNMENT, {"user": user})
            request = self.engine.admit(user)
            self._journal_and_apply(CMD_REQUEST_ASSIGNMENT, {"user": user})
        if not self._threaded or not wait:
            return request if not wait else self._wait_synchronous(request, timeout)
        return request.wait(timeout)

    def _wait_synchronous(
        self, request: PendingRequest, timeout: float
    ) -> tuple[int, ...]:
        # No engine thread: the caller's own thread drives the batch.
        self.engine.run_pending_batch()
        return request.wait(timeout)

    def freeze_event(self, event: int) -> None:
        """Freeze ``event``: its attendee list is now final."""
        self._accept(CMD_FREEZE_EVENT, {"event": event})

    def cancel_event(self, event: int) -> None:
        """Cancel an un-frozen event, releasing every seat it held."""
        self._accept(CMD_CANCEL_EVENT, {"event": event})

    def retire_event(self, event: int) -> None:
        """Tombstone ``event`` after its state migrated to another shard.

        The rebalance protocol's source-side command: releases every
        seat (frozen ones included -- the migrated copy owns them now)
        and leaves a cancelled husk so ids stay dense. Not exposed over
        HTTP; only :mod:`repro.service.sharding` issues it.
        """
        self._accept(CMD_RETIRE_EVENT, {"event": event})

    def retire_user(self, user: int) -> None:
        """Tombstone a migrated user (capacity drops to zero)."""
        self._accept(CMD_RETIRE_USER, {"user": user})

    def commit_delta(self, delta: Delta, users: list[int] | None = None) -> None:
        """Journal and apply an externally solved arrangement delta.

        The rebalance protocol's target-side command: the coordinator
        re-creates migrated seats as one ``commit_batch`` record, the
        same record shape the engine writes, so replay stays oblivious
        to whether a batch came from a solve or a migration.
        """
        if not delta:
            return
        self._accept(
            CMD_COMMIT_BATCH, {**delta.to_json(), "users": sorted(users or [])}
        )

    def run_pending_batch(self) -> int:
        """Drive one batch synchronously (no-thread mode and tests)."""
        return self.engine.run_pending_batch()

    # ------------------------------------------------------------------
    # Snapshots & compaction
    # ------------------------------------------------------------------

    def compact(self) -> CompactionStats:
        """Snapshot the current state and trim the journal to the tail.

        The ``POST /compact`` admin operation. Requires the service to
        have a snapshot directory.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if self.snapshot_dir is None:
                raise ServiceError(
                    "service has no snapshot directory; start it with one to "
                    "enable compaction"
                )
            return self._compact_locked()

    def _compact_locked(self) -> CompactionStats:
        assert self.snapshot_dir is not None
        stats = compact(
            self.journal,
            self.store,
            self.snapshot_dir,
            retain=self.retain,
            fs=self.journal.fs,
            crash_after_snapshot=self._crash_after_snapshot,
        )
        self.compactions += 1
        self.last_compaction = stats
        return stats

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        """The store's journal sequence number (duck-typed for routing).

        The HTTP layer reads ``service.seq`` so the same handlers can
        front either one service or a
        :class:`~repro.service.sharding.ShardCoordinator` (whose ``seq``
        aggregates its shards).
        """
        with self._lock:
            return self.store.seq

    def assignments_of(self, user: int) -> tuple[int, ...]:
        with self._lock:
            if not 0 <= user < self.store.n_users:
                raise ServiceError(f"unknown user {user!r}")
            return tuple(sorted(self.store.events_of(user)))

    def state_summary(self) -> dict:
        """A compact, JSON-ready health/state view (the GET /state body)."""
        with self._lock:
            store = self.store
            return {
                "seq": store.seq,
                "n_events": store.n_events,
                "n_users": store.n_users,
                "n_assignments": store.n_assignments,
                "open_events": len(store.open_events()),
                "requests_seen": store.requests_seen,
                "batches_committed": store.batches_committed,
                "pending": self.engine.pending,
                "max_sum": store.max_sum(),
                "digest": store.digest(),
                "journal_bytes": self.journal.size_bytes,
                "journal_base_seq": self.journal.base_seq,
                "snapshots": self._snapshot_summary_locked(),
                "last_recovery": (
                    None
                    if self.journal.last_recovery is None
                    else self.journal.last_recovery.to_json()
                ),
            }

    def _snapshot_summary_locked(self) -> dict | None:
        if self.snapshot_dir is None:
            return None
        listed = list_snapshots(self.snapshot_dir, fs=self.journal.fs)
        return {
            "dir": str(self.snapshot_dir),
            "count": len(listed),
            "newest_seq": listed[0][0] if listed else None,
            "retain": self.retain,
            "compactions": self.compactions,
            "auto_compact_bytes": self.compact_bytes,
        }

    def check_invariants(self) -> None:
        with self._lock:
            self.store.check_invariants()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the engine (flushing one final batch) and the journal."""
        if self._closed:
            return
        if self._threaded:
            self.engine.stop()
        else:
            self.engine.run_pending_batch()
        with self._lock:
            self._closed = True
            self.journal.close()

    def __enter__(self) -> "ArrangementService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ArrangementService({self.store!r}, journal={self.journal.path})"
