"""Timeline-driven load generation for the arrangement service.

``geacc replay`` takes a :class:`~repro.simulation.workload.Timeline`
(the same workloads the offline simulator replays) and drives it
through a live :class:`~repro.service.frontend.ArrangementService` in
time order -- events post, users register and immediately request an
assignment, events freeze -- with wall-clock compressed to "as fast as
the service accepts commands". Every assignment request is measured
from submission to batch commit, giving the latency distribution of the
micro-batching engine under a realistic arrival burst.

Quality is scored the way the offline experiments score policies: the
achieved MaxSum over the clairvoyant bound of the *full* instance
(:mod:`repro.core.bounds` -- the optimum a solver that knew every
arrival in advance could not exceed), reported next to the same ratio
for the pure first-come-first-served
:class:`~repro.simulation.policies.GreedyArrivalPolicy` on the same
timeline -- the number the micro-batched engine must beat to justify
existing.

Freeze moments act as barriers: requests submitted before a freeze are
resolved before the freeze is issued (an EBSN platform processes
registrations in seconds; event lead times are hours). Without the
barrier the comparison against the simulator baseline -- which serves
every earlier arrival before freezing -- would be apples to oranges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.bounds import nn_capacity_bound, relaxation_bound
from repro.core.model import Instance
from repro.exceptions import ServiceError, ServiceOverloadedError
from repro.service.engine import PendingRequest
from repro.service.frontend import ArrangementService
from repro.service.journal import replay as replay_journal
from repro.service.sharding import ShardCoordinator, ShardManager
from repro.service.store import StoreConfig
from repro.simulation.policies import GreedyArrivalPolicy
from repro.simulation.simulator import Simulator
from repro.simulation.workload import Timeline

#: Per-request resolution allowance during replay (generous; a stuck
#: engine should fail loudly, not hang the load generator).
REQUEST_WAIT_S = 60.0

BOUNDS = {
    "relaxation": relaxation_bound,
    "nn": nn_capacity_bound,
}


@dataclass(frozen=True)
class ReplayReport:
    """Latency + quality outcome of one timeline replay."""

    n_events: int
    n_users: int
    n_requests: int
    n_batches: int
    overloaded: int
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float
    achieved_max_sum: float
    bound: float
    bound_kind: str
    baseline_max_sum: float
    seconds: float
    journal_path: str
    replay_verified: bool
    #: Shard count of the deployment (None = classic unsharded service).
    shards: int | None = None
    #: Per-shard ``{"shard", "requests", "batches", "events", "users",
    #: "rps"}`` rows, set for sharded runs.
    per_shard: tuple[dict, ...] | None = None

    @property
    def aggregate_rps(self) -> float:
        """Requests resolved per wall-clock second, across all shards."""
        return self.n_requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def ratio(self) -> float:
        """Achieved MaxSum over the clairvoyant bound (higher = better)."""
        return self.achieved_max_sum / self.bound if self.bound > 0 else 1.0

    @property
    def baseline_ratio(self) -> float:
        return self.baseline_max_sum / self.bound if self.bound > 0 else 1.0

    def render(self) -> str:
        lines = [
            "== geacc replay: micro-batched service vs clairvoyant bound ==",
            f"workload: |V|={self.n_events} |U|={self.n_users} "
            f"requests={self.n_requests} batches={self.n_batches} "
            f"overloaded={self.overloaded} wall={self.seconds:.2f}s",
            f"latency:  p50={self.p50_ms:.2f}ms p90={self.p90_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms max={self.max_ms:.2f}ms",
            f"quality:  MaxSum={self.achieved_max_sum:.3f} "
            f"{self.bound_kind}-bound={self.bound:.3f} ratio={self.ratio:.4f}",
            f"baseline: greedy-arrival MaxSum={self.baseline_max_sum:.3f} "
            f"ratio={self.baseline_ratio:.4f} "
            f"({'engine >= baseline' if self.ratio >= self.baseline_ratio else 'engine < baseline'})",
            f"journal:  {self.journal_path} "
            f"(replay {'verified' if self.replay_verified else 'NOT verified'})",
        ]
        if self.shards is not None:
            rows = ", ".join(
                f"s{row['shard']}={row['rps']:.0f}rps({row['requests']}req)"
                for row in self.per_shard or ()
            )
            lines.insert(
                2,
                f"sharding: {self.shards} shards "
                f"aggregate={self.aggregate_rps:.0f} req/s [{rows}]",
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "n_events": self.n_events,
            "n_users": self.n_users,
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "overloaded": self.overloaded,
            "latency_ms": {
                "p50": self.p50_ms,
                "p90": self.p90_ms,
                "p99": self.p99_ms,
                "max": self.max_ms,
            },
            "achieved_max_sum": self.achieved_max_sum,
            "bound": self.bound,
            "bound_kind": self.bound_kind,
            "ratio": self.ratio,
            "baseline_max_sum": self.baseline_max_sum,
            "baseline_ratio": self.baseline_ratio,
            "seconds": self.seconds,
            "replay_verified": self.replay_verified,
            **(
                {}
                if self.shards is None
                else {
                    "sharding": {
                        "shards": self.shards,
                        "aggregate_rps": self.aggregate_rps,
                        "per_shard": list(self.per_shard or ()),
                    }
                }
            ),
        }


def replay_timeline(
    instance: Instance,
    timeline: Timeline,
    journal_path: str | Path,
    *,
    batch_ms: float = 10.0,
    solve_timeout: float = 0.25,
    max_pending: int = 1024,
    ladder: tuple[str, ...] = ("greedy", "random-u"),
    bound: str = "relaxation",
    verify_replay: bool = True,
) -> ReplayReport:
    """Drive ``timeline`` through a fresh service; measure and score it.

    Args:
        instance: Attribute-backed instance (the service recomputes
            similarities from attributes, so matrix-only instances are
            rejected).
        timeline: Post/arrival/start times, validated against the
            instance.
        journal_path: Where the service journals; must not exist yet.
        bound: Clairvoyant bound to score against (``relaxation`` =
            Corollary 1 via min-cost flow; ``nn`` = the cheaper Lemma 6
            capacity bound).
        verify_replay: After the run, replay the journal and require the
            reconstructed state digest to match the live one.
    """
    if instance.event_attributes is None or instance.user_attributes is None:
        raise ServiceError(
            "geacc replay needs an attribute-backed instance (the service "
            "computes similarities from attributes)"
        )
    if bound not in BOUNDS:
        raise ServiceError(f"unknown bound {bound!r} (choose from {sorted(BOUNDS)})")
    timeline.validate_against(instance)

    config = StoreConfig(
        dimension=instance.event_attributes.shape[1],
        t=instance.t,
        metric=instance.metric,
    )
    started = time.perf_counter()
    moments: list[tuple[float, int, int]] = []
    # Same intra-instant order as the simulator: posts, arrivals, freezes.
    for event, t in enumerate(timeline.post_times):
        moments.append((float(t), 0, event))
    for user, t in enumerate(timeline.arrival_times):
        moments.append((float(t), 1, user))
    for event, t in enumerate(timeline.start_times):
        moments.append((float(t), 2, event))
    moments.sort()

    event_ids: dict[int, int] = {}
    user_ids: dict[int, int] = {}
    futures: list[PendingRequest] = []
    overloaded = 0

    with ArrangementService.create(
        journal_path,
        config,
        batch_ms=batch_ms,
        solve_timeout=solve_timeout,
        max_pending=max_pending,
        ladder=ladder,
        threaded=True,
    ) as service:
        for _, kind, entity in moments:
            if kind == 0:
                conflicts = [
                    event_ids[w]
                    for w in sorted(instance.conflicts.conflicts_with(entity))
                    if w in event_ids
                ]
                event_ids[entity] = service.post_event(
                    capacity=int(instance.event_capacities[entity]),
                    attributes=[float(x) for x in instance.event_attributes[entity]],
                    conflicts=conflicts,
                )
            elif kind == 1:
                user_ids[entity] = service.register_user(
                    capacity=int(instance.user_capacities[entity]),
                    attributes=[float(x) for x in instance.user_attributes[entity]],
                )
                try:
                    request = service.request_assignment(
                        user_ids[entity], wait=False
                    )
                    assert isinstance(request, PendingRequest)
                    futures.append(request)
                except ServiceOverloadedError:
                    overloaded += 1
            else:
                # Barrier: the engine sees every earlier registration
                # before the freeze lands (see module docstring).
                for request in futures:
                    if not request.done:
                        request.wait(REQUEST_WAIT_S)
                service.freeze_event(event_ids[entity])
        for request in futures:
            if not request.done:
                request.wait(REQUEST_WAIT_S)
        service.check_invariants()
        achieved = service.store.max_sum()
        live_digest = service.store.digest()
        n_batches = service.engine.batches_solved
    seconds = time.perf_counter() - started

    replay_verified = False
    if verify_replay:
        recovered, _ = replay_journal(journal_path)
        replay_verified = recovered.digest() == live_digest
        if not replay_verified:
            raise ServiceError(
                f"journal replay of {journal_path} does not reproduce the "
                "live state (digest mismatch)"
            )

    latencies_ms = sorted(
        1000.0 * request.latency_s
        for request in futures
        if request.latency_s is not None
    )
    if latencies_ms:
        p50, p90, p99 = (
            float(np.percentile(latencies_ms, q)) for q in (50.0, 90.0, 99.0)
        )
        max_ms = latencies_ms[-1]
    else:
        p50 = p90 = p99 = max_ms = 0.0

    baseline = Simulator(instance, timeline).run(GreedyArrivalPolicy())
    bound_value = BOUNDS[bound](instance)

    return ReplayReport(
        n_events=instance.n_events,
        n_users=instance.n_users,
        n_requests=len(futures),
        n_batches=n_batches,
        overloaded=overloaded,
        p50_ms=p50,
        p90_ms=p90,
        p99_ms=p99,
        max_ms=max_ms,
        achieved_max_sum=achieved,
        bound=float(bound_value),
        bound_kind=bound,
        baseline_max_sum=baseline.achieved_max_sum,
        seconds=seconds,
        journal_path=str(journal_path),
        replay_verified=replay_verified,
    )


def replay_timeline_sharded(
    instance: Instance,
    timeline: Timeline,
    root: str | Path,
    *,
    shards: int,
    solve_timeout: float = 0.25,
    max_pending: int = 1024,
    ladder: tuple[str, ...] = ("greedy", "random-u"),
    bound: str = "relaxation",
    verify_replay: bool = True,
) -> ReplayReport:
    """Drive ``timeline`` through a fresh shard fleet under ``root``.

    The sharded twin of :func:`replay_timeline`, and the harness behind
    ``geacc replay --shards N``. Shards are driven *synchronously*
    (every request resolves in the caller's thread before the next
    command is issued), so two runs at different shard counts execute
    the identical command sequence and the aggregate-throughput
    comparison measures exactly the work sharding removes: each shard's
    batch re-solves only its own slice of the universe instead of every
    batch re-solving all of it. ``--shards 1`` through this same path is
    the fair baseline.

    Verification is per shard: every shard journal must replay to its
    shard's live digest, and a full coordinator recovery (manifest walk
    included) must reproduce the global arrangement digest.
    """
    if instance.event_attributes is None or instance.user_attributes is None:
        raise ServiceError(
            "geacc replay needs an attribute-backed instance (the service "
            "computes similarities from attributes)"
        )
    if bound not in BOUNDS:
        raise ServiceError(f"unknown bound {bound!r} (choose from {sorted(BOUNDS)})")
    if shards < 1:
        raise ServiceError(f"shards must be >= 1, got {shards}")
    timeline.validate_against(instance)

    config = StoreConfig(
        dimension=instance.event_attributes.shape[1],
        t=instance.t,
        metric=instance.metric,
    )
    moments: list[tuple[float, int, int]] = []
    for event, t in enumerate(timeline.post_times):
        moments.append((float(t), 0, event))
    for user, t in enumerate(timeline.arrival_times):
        moments.append((float(t), 1, user))
    for event, t in enumerate(timeline.start_times):
        moments.append((float(t), 2, event))
    moments.sort()

    event_ids: dict[int, int] = {}
    user_ids: dict[int, int] = {}
    futures: list[PendingRequest] = []
    overloaded = 0

    root = Path(root)
    started = time.perf_counter()
    with ShardCoordinator.create(
        root,
        config,
        shards,
        threaded=False,
        solve_timeout=solve_timeout,
        max_pending=max_pending,
        ladder=ladder,
    ) as coordinator:
        for _, kind, entity in moments:
            if kind == 0:
                conflicts = [
                    event_ids[w]
                    for w in sorted(instance.conflicts.conflicts_with(entity))
                    if w in event_ids
                ]
                event_ids[entity] = coordinator.post_event(
                    capacity=int(instance.event_capacities[entity]),
                    attributes=[
                        float(x) for x in instance.event_attributes[entity]
                    ],
                    conflicts=conflicts,
                )
            elif kind == 1:
                user_ids[entity] = coordinator.register_user(
                    capacity=int(instance.user_capacities[entity]),
                    attributes=[
                        float(x) for x in instance.user_attributes[entity]
                    ],
                )
                try:
                    request = coordinator.request_assignment(
                        user_ids[entity], wait=False
                    )
                    assert isinstance(request, PendingRequest)
                    futures.append(request)
                except ServiceOverloadedError:
                    overloaded += 1
            else:
                coordinator.freeze_event(event_ids[entity])
        coordinator.run_pending_batch()
        coordinator.check_invariants()
        summary = coordinator.state_summary()
        live_digest = coordinator.arrangement_digest()
    seconds = time.perf_counter() - started

    shard_rows = tuple(
        {
            "shard": row["shard"],
            "requests": row["requests_seen"],
            "batches": row["batches_committed"],
            "events": row["n_events"],
            "users": row["n_users"],
            "rps": row["requests_seen"] / seconds if seconds > 0 else 0.0,
        }
        for row in summary["sharding"]["per_shard"]
    )

    replay_verified = False
    if verify_replay:
        for row in summary["sharding"]["per_shard"]:
            recovered, _ = replay_journal(
                ShardManager.journal_path(root, row["shard"])
            )
            if recovered.digest() != row["digest"]:
                raise ServiceError(
                    f"shard {row['shard']} journal does not replay to its "
                    "live state (digest mismatch)"
                )
        with ShardCoordinator.recover(root, threaded=False) as reopened:
            if reopened.arrangement_digest() != live_digest:
                raise ServiceError(
                    f"coordinator recovery of {root} does not reproduce the "
                    "live arrangement (digest mismatch)"
                )
        replay_verified = True

    latencies_ms = sorted(
        1000.0 * request.latency_s
        for request in futures
        if request.latency_s is not None
    )
    if latencies_ms:
        p50, p90, p99 = (
            float(np.percentile(latencies_ms, q)) for q in (50.0, 90.0, 99.0)
        )
        max_ms = latencies_ms[-1]
    else:
        p50 = p90 = p99 = max_ms = 0.0

    baseline = Simulator(instance, timeline).run(GreedyArrivalPolicy())
    bound_value = BOUNDS[bound](instance)

    return ReplayReport(
        n_events=instance.n_events,
        n_users=instance.n_users,
        n_requests=len(futures),
        n_batches=summary["batches_committed"],
        overloaded=overloaded,
        p50_ms=p50,
        p90_ms=p90,
        p99_ms=p99,
        max_ms=max_ms,
        achieved_max_sum=summary["max_sum"],
        bound=float(bound_value),
        bound_kind=bound,
        baseline_max_sum=baseline.achieved_max_sum,
        seconds=seconds,
        journal_path=str(root),
        replay_verified=replay_verified,
        shards=shards,
        per_shard=shard_rows,
    )
