"""The ``service`` bench scenario: journal throughput, request latency.

Two serving-path numbers ride along in ``BENCH_solvers.json`` next to
the solver timings, under the same ``make bench-check`` regression gate:

* **journal-append** -- seconds per durably journaled command (write +
  flush + fsync), the floor under every write's latency;
* **request** -- p50/p99 wall latency of a single blocking assignment
  request against a warm in-process service (journaled command,
  micro-batch solve over the open remainder, committed delta), the
  number a deployment's SLO would be written against;
* **recovery** -- seconds to reconstruct state from the same journal
  two ways: full replay versus newest-snapshot + tail after a
  compaction (the number bounded-time crash recovery exists to keep
  small);
* **shard scaling** -- one synchronous replay of a fixed clustered
  workload per shard count (1/2/4/8), each run driving the identical
  command sequence through :func:`~repro.service.loadgen.
  replay_timeline_sharded`, so the aggregate-throughput curve measures
  exactly the work sharding removes (each shard's batch re-solves only
  its slice of the universe).

Comparability follows the solver bench rules: a fixed synthetic
workload (seeded), ``--quick`` changes only repetition counts -- for
the shard-scaling scenario, only *which shard counts run* (a strict
subset of the full sweep on the same instance) -- and the gate compares
against the committed baseline with the usual tolerated factor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from repro.exceptions import ReproError
from repro.service.frontend import ArrangementService
from repro.service.journal import Journal
from repro.service.store import StoreConfig

#: Fixed workload shape of the request-latency scenario.
BENCH_EVENTS = 12
BENCH_USERS = 80
BENCH_DIMENSION = 4
BENCH_SEED = 0

#: Repetition counts (full / --quick).
FULL_APPENDS = 2000
QUICK_APPENDS = 300
FULL_REQUESTS = 120
QUICK_REQUESTS = 40
FULL_RECOVERY_RECORDS = 1500
QUICK_RECOVERY_RECORDS = 300
#: Fraction of the journal appended *after* the compaction snapshot --
#: the tail a snapshot+tail recovery actually replays.
RECOVERY_TAIL_FRACTION = 0.05

#: Fixed clustered workload of the shard-scaling scenario: 24 conflict
#: components of 3 chained events + 12 capacity-1 users each (72 events,
#: 288 users) -- big enough that the per-batch re-solve dominates, small
#: enough that the whole sweep stays around ten seconds.
SHARD_COMPONENTS = 24
SHARD_EVENTS_PER_COMPONENT = 3
SHARD_USERS_PER_COMPONENT = 12
SHARD_DIMENSION = 8
#: Shard counts swept (full / --quick; quick is a strict subset so its
#: runs stay directly comparable against a full baseline).
FULL_SHARD_COUNTS = (1, 2, 4, 8)
QUICK_SHARD_COUNTS = (1, 4)


@dataclass(frozen=True)
class ServiceBench:
    """Serving-path measurements recorded in the bench report."""

    appends: int
    append_seconds: float  # per-op (min over repeats)
    requests: int
    request_p50: float
    request_p99: float
    #: Journal length of the recovery scenario (0 = not measured, e.g.
    #: a pre-snapshot baseline report).
    recovery_records: int = 0
    recovery_full_seconds: float = 0.0
    recovery_snapshot_seconds: float = 0.0

    @property
    def appends_per_second(self) -> float:
        return 1.0 / self.append_seconds if self.append_seconds > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "appends": self.appends,
            "append_seconds": self.append_seconds,
            "requests": self.requests,
            "request_p50": self.request_p50,
            "request_p99": self.request_p99,
            "recovery_records": self.recovery_records,
            "recovery_full_seconds": self.recovery_full_seconds,
            "recovery_snapshot_seconds": self.recovery_snapshot_seconds,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ServiceBench":
        try:
            return cls(
                appends=int(data["appends"]),
                append_seconds=float(data["append_seconds"]),
                requests=int(data["requests"]),
                request_p50=float(data["request_p50"]),
                request_p99=float(data["request_p99"]),
                # Optional: absent in pre-snapshot baseline reports.
                recovery_records=int(data.get("recovery_records", 0)),
                recovery_full_seconds=float(data.get("recovery_full_seconds", 0.0)),
                recovery_snapshot_seconds=float(
                    data.get("recovery_snapshot_seconds", 0.0)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed service bench entry {data!r}: {exc}") from exc


@dataclass(frozen=True)
class ShardScalingRun:
    """One shard count's synchronous replay of the fixed workload."""

    shards: int
    seconds: float
    aggregate_rps: float
    n_requests: int

    def to_json(self) -> dict:
        return {
            "seconds": self.seconds,
            "aggregate_rps": self.aggregate_rps,
            "n_requests": self.n_requests,
        }

    @classmethod
    def from_json(cls, shards: int, data: dict) -> "ShardScalingRun":
        return cls(
            shards=shards,
            seconds=float(data["seconds"]),
            aggregate_rps=float(data["aggregate_rps"]),
            n_requests=int(data["n_requests"]),
        )


@dataclass(frozen=True)
class ShardScalingBench:
    """The shard-scaling sweep recorded in the bench report.

    Every run drives the identical command sequence (same instance, same
    timeline, synchronous resolution), so ``runs[i].seconds`` are
    directly comparable across shard counts and across commits.
    """

    n_components: int
    events_per_component: int
    users_per_component: int
    dimension: int
    seed: int
    runs: tuple[ShardScalingRun, ...]

    def run_for(self, shards: int) -> ShardScalingRun | None:
        for run in self.runs:
            if run.shards == shards:
                return run
        return None

    @property
    def speedup(self) -> float:
        """Single-shard seconds over the widest sweep's seconds."""
        if len(self.runs) < 2:
            return 1.0
        base = self.run_for(1)
        widest = max(self.runs, key=lambda run: run.shards)
        if base is None or widest.seconds <= 0:
            return 1.0
        return base.seconds / widest.seconds

    def workload_shape(self) -> tuple[int, int, int, int]:
        return (
            self.n_components,
            self.events_per_component,
            self.users_per_component,
            self.dimension,
        )

    def to_json(self) -> dict:
        return {
            "n_components": self.n_components,
            "events_per_component": self.events_per_component,
            "users_per_component": self.users_per_component,
            "dimension": self.dimension,
            "seed": self.seed,
            "runs": {str(run.shards): run.to_json() for run in self.runs},
        }

    @classmethod
    def from_json(cls, data: dict) -> "ShardScalingBench":
        try:
            return cls(
                n_components=int(data["n_components"]),
                events_per_component=int(data["events_per_component"]),
                users_per_component=int(data["users_per_component"]),
                dimension=int(data["dimension"]),
                seed=int(data["seed"]),
                runs=tuple(
                    ShardScalingRun.from_json(int(shards), entry)
                    for shards, entry in sorted(
                        data["runs"].items(), key=lambda kv: int(kv[0])
                    )
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(
                f"malformed shard-scaling bench entry {data!r}: {exc}"
            ) from exc


def run_shard_scaling_bench(quick: bool = False) -> ShardScalingBench:
    """Sweep shard counts over the fixed clustered replay workload.

    Replay verification is off (it would re-read every shard journal and
    recover the fleet -- correctness work the sharding test suite owns);
    the clock sees the synchronous drive only.
    """
    from repro.service.loadgen import replay_timeline_sharded
    from repro.service.sharding import shardable_instance, shardable_timeline

    instance = shardable_instance(
        SHARD_COMPONENTS,
        SHARD_EVENTS_PER_COMPONENT,
        SHARD_USERS_PER_COMPONENT,
        dimension=SHARD_DIMENSION,
        seed=BENCH_SEED,
    )
    timeline = shardable_timeline(instance)
    counts = QUICK_SHARD_COUNTS if quick else FULL_SHARD_COUNTS
    runs = []
    with TemporaryDirectory() as tmp_name:
        for shards in counts:
            report = replay_timeline_sharded(
                instance,
                timeline,
                Path(tmp_name) / f"fleet-{shards}",
                shards=shards,
                verify_replay=False,
            )
            runs.append(
                ShardScalingRun(
                    shards=shards,
                    seconds=report.seconds,
                    aggregate_rps=report.aggregate_rps,
                    n_requests=report.n_requests,
                )
            )
    return ShardScalingBench(
        n_components=SHARD_COMPONENTS,
        events_per_component=SHARD_EVENTS_PER_COMPONENT,
        users_per_component=SHARD_USERS_PER_COMPONENT,
        dimension=SHARD_DIMENSION,
        seed=BENCH_SEED,
        runs=tuple(runs),
    )


def _bench_journal_appends(tmp: Path, appends: int, repeats: int) -> float:
    """Seconds per fsync'd append (min over ``repeats`` passes)."""
    config = StoreConfig(dimension=BENCH_DIMENSION)
    record_args = {"user": 0}
    per_op: list[float] = []
    for attempt in range(repeats):
        path = tmp / f"append-{attempt}.jsonl"
        journal = Journal.create(path, config)
        try:
            started = time.perf_counter()
            for _ in range(appends):
                journal.append("request_assignment", record_args)
            per_op.append((time.perf_counter() - started) / appends)
        finally:
            journal.close()
    return min(per_op)


def _bench_request_latency(
    tmp: Path, requests: int
) -> tuple[float, float]:
    """(p50, p99) of single blocking assignment requests, in seconds.

    The service runs engine-synchronous (no batch thread, ``wait=True``
    drives the batch inline), so each sample is the full request path --
    journal, solve over the open remainder, commit -- without
    coalescing: the worst case a single request can see.
    """
    rng = np.random.default_rng(BENCH_SEED)
    config = StoreConfig(dimension=BENCH_DIMENSION)
    service = ArrangementService.create(
        tmp / "requests.jsonl", config, threaded=False
    )
    t = config.t
    with service:
        for _ in range(BENCH_EVENTS):
            service.post_event(
                capacity=int(rng.integers(2, 8)),
                attributes=[float(x) for x in rng.uniform(0, t, BENCH_DIMENSION)],
            )
        user_attrs = rng.uniform(0, t, (max(requests, BENCH_USERS), BENCH_DIMENSION))
        latencies: list[float] = []
        for index in range(requests):
            user = service.register_user(
                capacity=int(rng.integers(1, 4)),
                attributes=[float(x) for x in user_attrs[index]],
            )
            started = time.perf_counter()
            service.request_assignment(user)
            latencies.append(time.perf_counter() - started)
    latencies.sort()
    p50 = float(np.percentile(latencies, 50.0))
    p99 = float(np.percentile(latencies, 99.0))
    return p50, p99


def _bench_recovery(tmp: Path, records: int, repeats: int) -> tuple[float, float]:
    """(full-replay, snapshot+tail) recovery seconds for one journal.

    Builds a journal, times :func:`replay` over the 95% prefix, then
    compacts there, appends the remaining 5% as the tail, and times the
    ladder recovery (snapshot load + tail replay) of the full history.
    Both numbers are mins over ``repeats`` read-only passes of durable
    files, so they are directly comparable.
    """
    from repro.service.journal import replay
    from repro.service.snapshot import compact, recover_state
    from repro.service.store import ArrangementStore

    config = StoreConfig(dimension=BENCH_DIMENSION)
    rng = np.random.default_rng(BENCH_SEED)
    path = tmp / "recovery.jsonl"
    snapshot_dir = tmp / "recovery.snapshots"
    tail = max(1, int(records * RECOVERY_TAIL_FRACTION))
    attrs = rng.uniform(0, config.t, (records, BENCH_DIMENSION))

    def user_args(index: int) -> dict:
        return {"capacity": 1, "attributes": [float(x) for x in attrs[index]]}

    journal = Journal.create(path, config)
    store = ArrangementStore(config)
    try:
        for index in range(records - tail):
            store.apply(journal.append("register_user", user_args(index)))
        full_seconds = min(
            _timed(lambda: replay(path)) for _ in range(repeats)
        )
        compact(journal, store, snapshot_dir, retain=2)
        for index in range(records - tail, records):
            store.apply(journal.append("register_user", user_args(index)))
        snapshot_seconds = min(
            _timed(lambda: recover_state(path, snapshot_dir)) for _ in range(repeats)
        )
    finally:
        journal.close()
    return full_seconds, snapshot_seconds


def _timed(action) -> float:
    started = time.perf_counter()
    action()
    return time.perf_counter() - started


def run_service_bench(quick: bool = False, repeats: int = 3) -> ServiceBench:
    """Measure the serving path on the fixed bench workload."""
    appends = QUICK_APPENDS if quick else FULL_APPENDS
    requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    recovery_records = QUICK_RECOVERY_RECORDS if quick else FULL_RECOVERY_RECORDS
    with TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        append_seconds = _bench_journal_appends(
            tmp, appends, repeats=1 if quick else repeats
        )
        p50, p99 = _bench_request_latency(tmp, requests)
        recovery_full, recovery_snapshot = _bench_recovery(
            tmp, recovery_records, repeats=1 if quick else repeats
        )
    return ServiceBench(
        appends=appends,
        append_seconds=append_seconds,
        requests=requests,
        request_p50=p50,
        request_p99=p99,
        recovery_records=recovery_records,
        recovery_full_seconds=recovery_full,
        recovery_snapshot_seconds=recovery_snapshot,
    )
