"""The ``service`` bench scenario: journal throughput, request latency.

Two serving-path numbers ride along in ``BENCH_solvers.json`` next to
the solver timings, under the same ``make bench-check`` regression gate:

* **journal-append** -- seconds per durably journaled command (write +
  flush + fsync), the floor under every write's latency;
* **request** -- p50/p99 wall latency of a single blocking assignment
  request against a warm in-process service (journaled command,
  micro-batch solve over the open remainder, committed delta), the
  number a deployment's SLO would be written against.

Comparability follows the solver bench rules: a fixed synthetic
workload (seeded), ``--quick`` changes only repetition counts, and the
gate compares against the committed baseline with the usual tolerated
factor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from repro.exceptions import ReproError
from repro.service.frontend import ArrangementService
from repro.service.journal import Journal
from repro.service.store import StoreConfig

#: Fixed workload shape of the request-latency scenario.
BENCH_EVENTS = 12
BENCH_USERS = 80
BENCH_DIMENSION = 4
BENCH_SEED = 0

#: Repetition counts (full / --quick).
FULL_APPENDS = 2000
QUICK_APPENDS = 300
FULL_REQUESTS = 120
QUICK_REQUESTS = 40


@dataclass(frozen=True)
class ServiceBench:
    """Serving-path measurements recorded in the bench report."""

    appends: int
    append_seconds: float  # per-op (min over repeats)
    requests: int
    request_p50: float
    request_p99: float

    @property
    def appends_per_second(self) -> float:
        return 1.0 / self.append_seconds if self.append_seconds > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "appends": self.appends,
            "append_seconds": self.append_seconds,
            "requests": self.requests,
            "request_p50": self.request_p50,
            "request_p99": self.request_p99,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ServiceBench":
        try:
            return cls(
                appends=int(data["appends"]),
                append_seconds=float(data["append_seconds"]),
                requests=int(data["requests"]),
                request_p50=float(data["request_p50"]),
                request_p99=float(data["request_p99"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed service bench entry {data!r}: {exc}") from exc


def _bench_journal_appends(tmp: Path, appends: int, repeats: int) -> float:
    """Seconds per fsync'd append (min over ``repeats`` passes)."""
    config = StoreConfig(dimension=BENCH_DIMENSION)
    record_args = {"user": 0}
    per_op: list[float] = []
    for attempt in range(repeats):
        path = tmp / f"append-{attempt}.jsonl"
        journal = Journal.create(path, config)
        try:
            started = time.perf_counter()
            for _ in range(appends):
                journal.append("request_assignment", record_args)
            per_op.append((time.perf_counter() - started) / appends)
        finally:
            journal.close()
    return min(per_op)


def _bench_request_latency(
    tmp: Path, requests: int
) -> tuple[float, float]:
    """(p50, p99) of single blocking assignment requests, in seconds.

    The service runs engine-synchronous (no batch thread, ``wait=True``
    drives the batch inline), so each sample is the full request path --
    journal, solve over the open remainder, commit -- without
    coalescing: the worst case a single request can see.
    """
    rng = np.random.default_rng(BENCH_SEED)
    config = StoreConfig(dimension=BENCH_DIMENSION)
    service = ArrangementService.create(
        tmp / "requests.jsonl", config, threaded=False
    )
    t = config.t
    with service:
        for _ in range(BENCH_EVENTS):
            service.post_event(
                capacity=int(rng.integers(2, 8)),
                attributes=[float(x) for x in rng.uniform(0, t, BENCH_DIMENSION)],
            )
        user_attrs = rng.uniform(0, t, (max(requests, BENCH_USERS), BENCH_DIMENSION))
        latencies: list[float] = []
        for index in range(requests):
            user = service.register_user(
                capacity=int(rng.integers(1, 4)),
                attributes=[float(x) for x in user_attrs[index]],
            )
            started = time.perf_counter()
            service.request_assignment(user)
            latencies.append(time.perf_counter() - started)
    latencies.sort()
    p50 = float(np.percentile(latencies, 50.0))
    p99 = float(np.percentile(latencies, 99.0))
    return p50, p99


def run_service_bench(quick: bool = False, repeats: int = 3) -> ServiceBench:
    """Measure the serving path on the fixed bench workload."""
    appends = QUICK_APPENDS if quick else FULL_APPENDS
    requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    with TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        append_seconds = _bench_journal_appends(
            tmp, appends, repeats=1 if quick else repeats
        )
        p50, p99 = _bench_request_latency(tmp, requests)
    return ServiceBench(
        appends=appends,
        append_seconds=append_seconds,
        requests=requests,
        request_p50=p50,
        request_p99=p99,
    )
