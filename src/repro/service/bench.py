"""The ``service`` bench scenario: journal throughput, request latency.

Two serving-path numbers ride along in ``BENCH_solvers.json`` next to
the solver timings, under the same ``make bench-check`` regression gate:

* **journal-append** -- seconds per durably journaled command (write +
  flush + fsync), the floor under every write's latency;
* **request** -- p50/p99 wall latency of a single blocking assignment
  request against a warm in-process service (journaled command,
  micro-batch solve over the open remainder, committed delta), the
  number a deployment's SLO would be written against;
* **recovery** -- seconds to reconstruct state from the same journal
  two ways: full replay versus newest-snapshot + tail after a
  compaction (the number bounded-time crash recovery exists to keep
  small).

Comparability follows the solver bench rules: a fixed synthetic
workload (seeded), ``--quick`` changes only repetition counts, and the
gate compares against the committed baseline with the usual tolerated
factor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from repro.exceptions import ReproError
from repro.service.frontend import ArrangementService
from repro.service.journal import Journal
from repro.service.store import StoreConfig

#: Fixed workload shape of the request-latency scenario.
BENCH_EVENTS = 12
BENCH_USERS = 80
BENCH_DIMENSION = 4
BENCH_SEED = 0

#: Repetition counts (full / --quick).
FULL_APPENDS = 2000
QUICK_APPENDS = 300
FULL_REQUESTS = 120
QUICK_REQUESTS = 40
FULL_RECOVERY_RECORDS = 1500
QUICK_RECOVERY_RECORDS = 300
#: Fraction of the journal appended *after* the compaction snapshot --
#: the tail a snapshot+tail recovery actually replays.
RECOVERY_TAIL_FRACTION = 0.05


@dataclass(frozen=True)
class ServiceBench:
    """Serving-path measurements recorded in the bench report."""

    appends: int
    append_seconds: float  # per-op (min over repeats)
    requests: int
    request_p50: float
    request_p99: float
    #: Journal length of the recovery scenario (0 = not measured, e.g.
    #: a pre-snapshot baseline report).
    recovery_records: int = 0
    recovery_full_seconds: float = 0.0
    recovery_snapshot_seconds: float = 0.0

    @property
    def appends_per_second(self) -> float:
        return 1.0 / self.append_seconds if self.append_seconds > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "appends": self.appends,
            "append_seconds": self.append_seconds,
            "requests": self.requests,
            "request_p50": self.request_p50,
            "request_p99": self.request_p99,
            "recovery_records": self.recovery_records,
            "recovery_full_seconds": self.recovery_full_seconds,
            "recovery_snapshot_seconds": self.recovery_snapshot_seconds,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ServiceBench":
        try:
            return cls(
                appends=int(data["appends"]),
                append_seconds=float(data["append_seconds"]),
                requests=int(data["requests"]),
                request_p50=float(data["request_p50"]),
                request_p99=float(data["request_p99"]),
                # Optional: absent in pre-snapshot baseline reports.
                recovery_records=int(data.get("recovery_records", 0)),
                recovery_full_seconds=float(data.get("recovery_full_seconds", 0.0)),
                recovery_snapshot_seconds=float(
                    data.get("recovery_snapshot_seconds", 0.0)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed service bench entry {data!r}: {exc}") from exc


def _bench_journal_appends(tmp: Path, appends: int, repeats: int) -> float:
    """Seconds per fsync'd append (min over ``repeats`` passes)."""
    config = StoreConfig(dimension=BENCH_DIMENSION)
    record_args = {"user": 0}
    per_op: list[float] = []
    for attempt in range(repeats):
        path = tmp / f"append-{attempt}.jsonl"
        journal = Journal.create(path, config)
        try:
            started = time.perf_counter()
            for _ in range(appends):
                journal.append("request_assignment", record_args)
            per_op.append((time.perf_counter() - started) / appends)
        finally:
            journal.close()
    return min(per_op)


def _bench_request_latency(
    tmp: Path, requests: int
) -> tuple[float, float]:
    """(p50, p99) of single blocking assignment requests, in seconds.

    The service runs engine-synchronous (no batch thread, ``wait=True``
    drives the batch inline), so each sample is the full request path --
    journal, solve over the open remainder, commit -- without
    coalescing: the worst case a single request can see.
    """
    rng = np.random.default_rng(BENCH_SEED)
    config = StoreConfig(dimension=BENCH_DIMENSION)
    service = ArrangementService.create(
        tmp / "requests.jsonl", config, threaded=False
    )
    t = config.t
    with service:
        for _ in range(BENCH_EVENTS):
            service.post_event(
                capacity=int(rng.integers(2, 8)),
                attributes=[float(x) for x in rng.uniform(0, t, BENCH_DIMENSION)],
            )
        user_attrs = rng.uniform(0, t, (max(requests, BENCH_USERS), BENCH_DIMENSION))
        latencies: list[float] = []
        for index in range(requests):
            user = service.register_user(
                capacity=int(rng.integers(1, 4)),
                attributes=[float(x) for x in user_attrs[index]],
            )
            started = time.perf_counter()
            service.request_assignment(user)
            latencies.append(time.perf_counter() - started)
    latencies.sort()
    p50 = float(np.percentile(latencies, 50.0))
    p99 = float(np.percentile(latencies, 99.0))
    return p50, p99


def _bench_recovery(tmp: Path, records: int, repeats: int) -> tuple[float, float]:
    """(full-replay, snapshot+tail) recovery seconds for one journal.

    Builds a journal, times :func:`replay` over the 95% prefix, then
    compacts there, appends the remaining 5% as the tail, and times the
    ladder recovery (snapshot load + tail replay) of the full history.
    Both numbers are mins over ``repeats`` read-only passes of durable
    files, so they are directly comparable.
    """
    from repro.service.journal import replay
    from repro.service.snapshot import compact, recover_state
    from repro.service.store import ArrangementStore

    config = StoreConfig(dimension=BENCH_DIMENSION)
    rng = np.random.default_rng(BENCH_SEED)
    path = tmp / "recovery.jsonl"
    snapshot_dir = tmp / "recovery.snapshots"
    tail = max(1, int(records * RECOVERY_TAIL_FRACTION))
    attrs = rng.uniform(0, config.t, (records, BENCH_DIMENSION))

    def user_args(index: int) -> dict:
        return {"capacity": 1, "attributes": [float(x) for x in attrs[index]]}

    journal = Journal.create(path, config)
    store = ArrangementStore(config)
    try:
        for index in range(records - tail):
            store.apply(journal.append("register_user", user_args(index)))
        full_seconds = min(
            _timed(lambda: replay(path)) for _ in range(repeats)
        )
        compact(journal, store, snapshot_dir, retain=2)
        for index in range(records - tail, records):
            store.apply(journal.append("register_user", user_args(index)))
        snapshot_seconds = min(
            _timed(lambda: recover_state(path, snapshot_dir)) for _ in range(repeats)
        )
    finally:
        journal.close()
    return full_seconds, snapshot_seconds


def _timed(action) -> float:
    started = time.perf_counter()
    action()
    return time.perf_counter() - started


def run_service_bench(quick: bool = False, repeats: int = 3) -> ServiceBench:
    """Measure the serving path on the fixed bench workload."""
    appends = QUICK_APPENDS if quick else FULL_APPENDS
    requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    recovery_records = QUICK_RECOVERY_RECORDS if quick else FULL_RECOVERY_RECORDS
    with TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        append_seconds = _bench_journal_appends(
            tmp, appends, repeats=1 if quick else repeats
        )
        p50, p99 = _bench_request_latency(tmp, requests)
        recovery_full, recovery_snapshot = _bench_recovery(
            tmp, recovery_records, repeats=1 if quick else repeats
        )
    return ServiceBench(
        appends=appends,
        append_seconds=append_seconds,
        requests=requests,
        request_p50=p50,
        request_p99=p99,
        recovery_records=recovery_records,
        recovery_full_seconds=recovery_full,
        recovery_snapshot_seconds=recovery_snapshot,
    )
