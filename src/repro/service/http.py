"""Stdlib JSON-over-HTTP front-end for the arrangement service.

A deliberately small API over :class:`~repro.service.frontend.
ArrangementService`, served by ``http.server.ThreadingHTTPServer`` (one
thread per connection; blocking assignment requests park their handler
thread on the engine future, they do not hold the state lock):

====================================  =========================================
``POST /events``                      ``{"capacity", "attributes", "conflicts"?}`` -> ``201 {"event"}``
``POST /users``                       ``{"capacity", "attributes"}`` -> ``201 {"user"}``
``POST /assignments``                 ``{"user"}`` -> ``200 {"user", "events"}`` (blocks for the batch)
``POST /events/<id>/freeze``          -> ``200``
``POST /events/<id>/cancel``          -> ``200``
``POST /compact``                     -> ``200`` compaction stats (admin; snapshot + journal trim)
``GET  /assignments/<user>``          -> ``200 {"user", "events"}``
``GET  /state``                       -> ``200`` canonical summary (seq, digest, MaxSum, ...)
``GET  /healthz``                     -> ``200 {"ok": true}``
====================================  =========================================

Error mapping: a rejected command is ``400`` with the
:class:`~repro.exceptions.ServiceError` message; admission-control
overload is ``503`` with ``Retry-After``; an unmatched route is ``404``.
Overload is the *only* backpressure signal -- the server never queues
beyond the engine's bound, so it degrades instead of stalling.

This module is the one sanctioned home of ``http.server`` in the tree:
``geacc-lint`` rule R8 bans socket/HTTP primitives everywhere outside
``repro/service/``.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from typing import TYPE_CHECKING, Union

from repro.exceptions import ServiceError, ServiceOverloadedError
from repro.service.frontend import ArrangementService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.sharding import ShardCoordinator

#: Anything the handlers can front: one service, or a shard fleet behind
#: its coordinator (same duck-typed command/read surface).
Backend = Union[ArrangementService, "ShardCoordinator"]

#: Retry-After hint (seconds) sent with 503 overload responses.
RETRY_AFTER_S = 1

_EVENT_ACTION = re.compile(r"^/events/(\d+)/(freeze|cancel)$")
_USER_ASSIGNMENTS = re.compile(r"^/assignments/(\d+)$")


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: Backend):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return int(self.server_address[1])


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer  # narrowed for handler code below

    protocol_version = "HTTP/1.1"

    # Quiet by default: the CLI decides what to log, not every request.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            if self.path == "/healthz":
                self._reply(200, {"ok": True})
            elif self.path == "/state":
                self._reply(200, self.server.service.state_summary())
            else:
                match = _USER_ASSIGNMENTS.match(self.path)
                if match:
                    user = int(match.group(1))
                    events = self.server.service.assignments_of(user)
                    self._reply(200, {"user": user, "events": list(events)})
                else:
                    self._reply(404, {"error": f"no route {self.path}"})
        except ServiceError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            body = self._read_json()
            service = self.server.service
            if self.path == "/events":
                event = service.post_event(
                    capacity=body.get("capacity"),
                    attributes=body.get("attributes"),
                    conflicts=body.get("conflicts"),
                )
                self._reply(201, {"event": event, "seq": service.seq})
            elif self.path == "/users":
                user = service.register_user(
                    capacity=body.get("capacity"),
                    attributes=body.get("attributes"),
                )
                self._reply(201, {"user": user, "seq": service.seq})
            elif self.path == "/assignments":
                user = body.get("user")
                events = service.request_assignment(user)
                self._reply(200, {"user": user, "events": list(events)})
            elif self.path == "/compact":
                stats = service.compact()
                self._reply(200, stats.to_json())
            else:
                match = _EVENT_ACTION.match(self.path)
                if match:
                    event, action = int(match.group(1)), match.group(2)
                    if action == "freeze":
                        service.freeze_event(event)
                    else:
                        service.cancel_event(event)
                    self._reply(200, {"event": event, action: True})
                else:
                    self._reply(404, {"error": f"no route {self.path}"})
        except ServiceOverloadedError as exc:
            self._reply(
                503, {"error": str(exc)}, headers={"Retry-After": str(RETRY_AFTER_S)}
            )
        except ServiceError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    def _reply(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)


def make_server(
    service: Backend, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind the JSON API (port 0 = ephemeral; read ``server.port``)."""
    return ServiceHTTPServer((host, port), service)
