"""Checksummed store snapshots + journal compaction + the recovery ladder.

PR 4's write-ahead journal gives exact crash recovery, but recovery
cost is O(journal lifetime) and disk grows without bound. This module
bounds both: a **snapshot** freezes the store's
:meth:`~repro.service.store.ArrangementStore.canonical_state` to disk
atomically, and **compaction** trims the journal to the post-snapshot
tail, so recovery = newest snapshot + tail.

Snapshot file format (``snapshot-<seq:012d>.json``, two lines):

* line 1 -- header: ``{"format": "geacc-snapshot-v1", "seq": S,
  "crc32": <zlib.crc32 of the payload line>, "digest": <the store's
  canonical SHA-256 at seq S>}``;
* line 2 -- payload: the canonical-state dict as compact JSON.

Writes are atomic the classic way: tmp file in the same directory,
write, flush, fsync, rename over the final name, fsync the directory.
A reader therefore sees either the complete old world or the complete
new world; the CRC and digest catch everything else (torn payload from
a dying disk, bit flips, a truncated copy).

Recovery (:func:`recover_state`, wired into
:meth:`repro.service.journal.Journal.recover`) degrades along a
ladder rather than failing hard::

    newest snapshot + journal tail
      -> next-older snapshot + tail      (newest corrupt/partial)
        -> full journal replay           (no usable snapshot, base_seq 0)
          -> fresh empty store           (nothing durable, config given)
            -> JournalError              (nothing durable survives)

Compaction keeps a bounded retention set (:data:`DEFAULT_RETAIN`
newest snapshots) and rebases the journal to the *oldest retained*
snapshot's seq, so every retained snapshot can still bridge to the
journal tail -- falling one rung never loses acknowledged data.

All disk traffic goes through the
:class:`~repro.service.journal.FileSystem` seam so
:mod:`repro.robustness.faultfs` can enumerate a crash at every
write/flush/fsync/rename of the snapshot and compaction paths.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.exceptions import JournalError, ServiceError, SnapshotError
from repro.service.journal import (
    REAL_FS,
    FileSystem,
    RecoveryReport,
    read_header,
    replay,
)
from repro.service.store import ArrangementStore, StoreConfig

if TYPE_CHECKING:  # pragma: no cover - typing only (journal imports us lazily)
    from repro.service.journal import Journal

#: First-line format marker of every snapshot file.
SNAPSHOT_FORMAT = "geacc-snapshot-v1"

#: How many snapshots compaction keeps by default (newest first). Two
#: means a corrupt newest snapshot still recovers losslessly from the
#: previous one plus the (correspondingly longer) journal tail.
DEFAULT_RETAIN = 2

_SNAPSHOT_NAME = re.compile(r"snapshot-(\d{12})\.json")


def snapshot_path(directory: str | Path, seq: int) -> Path:
    """The canonical file name for a snapshot at ``seq``."""
    return Path(directory) / f"snapshot-{seq:012d}.json"


def atomic_write_bytes(
    path: str | Path, blob: bytes, fs: FileSystem = REAL_FS
) -> None:
    """Write ``blob`` to ``path`` atomically and durably.

    tmp file + write + flush + fsync + rename + directory fsync: after
    this returns the bytes are durable under ``path``; a crash at any
    point leaves either the old file or the new one, never a mix. This
    is the one sanctioned write primitive for ``repro.service`` code
    outside the journal/snapshot modules (lint rule R14).
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp_handle = fs.open(tmp, "wb")
    tmp_handle.write(blob)
    tmp_handle.flush()
    fs.fsync(tmp_handle)
    tmp_handle.close()
    fs.replace(tmp, path)
    fs.fsync_dir(path.parent)


def write_snapshot(
    store: ArrangementStore, directory: str | Path, fs: FileSystem = REAL_FS
) -> Path:
    """Atomically write a checksummed snapshot of ``store``.

    Returns the snapshot's path (``snapshot-<seq:012d>.json``). An
    existing snapshot at the same seq is replaced -- the content is
    identical by construction (the store is deterministic in seq).
    """
    directory = Path(directory)
    fs.mkdir(directory)
    payload = json.dumps(
        store.canonical_state(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    header = {
        "format": SNAPSHOT_FORMAT,
        "seq": store.seq,
        "crc32": zlib.crc32(payload),
        "digest": store.digest(),
    }
    header_line = json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    path = snapshot_path(directory, store.seq)
    atomic_write_bytes(path, header_line + b"\n" + payload + b"\n", fs)
    return path


def load_snapshot(path: str | Path, fs: FileSystem = REAL_FS) -> ArrangementStore:
    """Load and verify one snapshot file.

    Verification is end-to-end: the CRC covers the payload bytes, and
    the restored store's recomputed canonical digest must equal the one
    the writer recorded -- so a snapshot that loads is byte-for-byte the
    state its writer had.

    Raises:
        SnapshotError: Torn/truncated file, foreign or unreadable
            header, CRC mismatch, malformed payload, or digest mismatch.
            Never fatal on its own: recovery falls one ladder rung down.
    """
    path = Path(path)
    try:
        blob = fs.read_bytes(path)
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot read snapshot: {exc}") from exc
    lines = blob.split(b"\n")
    if len(lines) != 3 or lines[2] != b"":
        raise SnapshotError(f"{path}: torn snapshot ({len(blob)} bytes)")
    header_line, payload = lines[0], lines[1]
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"{path}: unreadable snapshot header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path}: not a {SNAPSHOT_FORMAT} snapshot "
            f"(header {str(header)[:80]!r})"
        )
    if zlib.crc32(payload) != header.get("crc32"):
        raise SnapshotError(f"{path}: snapshot payload fails its CRC")
    try:
        state = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"{path}: unreadable snapshot payload: {exc}") from exc
    try:
        store = ArrangementStore.from_canonical(state)
    except ServiceError as exc:
        raise SnapshotError(f"{path}: {exc}") from exc
    if store.seq != header.get("seq"):
        raise SnapshotError(
            f"{path}: snapshot seq {header.get('seq')!r} does not match "
            f"payload seq {store.seq}"
        )
    if store.digest() != header.get("digest"):
        raise SnapshotError(f"{path}: restored state fails its canonical digest")
    return store


def list_snapshots(
    directory: str | Path, fs: FileSystem = REAL_FS
) -> list[tuple[int, Path]]:
    """All well-named snapshots in ``directory``, newest (highest seq) first.

    Only complete names match (``snapshot-<seq:012d>.json``); leftover
    ``*.tmp`` files from a crashed atomic write are ignored. A missing
    directory is an empty list, not an error.
    """
    directory = Path(directory)
    try:
        names = fs.listdir(directory)
    except OSError:
        return []
    found = []
    for name in names:
        match = _SNAPSHOT_NAME.fullmatch(name)
        if match:
            found.append((int(match.group(1)), directory / name))
    found.sort(reverse=True)
    return found


@dataclass(frozen=True)
class CompactionStats:
    """What one compaction did (returned by :func:`compact`)."""

    snapshot_seq: int
    base_seq: int
    retained: tuple[int, ...]
    pruned: tuple[int, ...]
    journal_bytes_before: int
    journal_bytes_after: int

    def to_json(self) -> dict:
        return {
            "snapshot_seq": self.snapshot_seq,
            "base_seq": self.base_seq,
            "retained": list(self.retained),
            "pruned": list(self.pruned),
            "journal_bytes_before": self.journal_bytes_before,
            "journal_bytes_after": self.journal_bytes_after,
        }


def compact(
    journal: "Journal",
    store: ArrangementStore,
    directory: str | Path,
    *,
    retain: int = DEFAULT_RETAIN,
    fs: FileSystem = REAL_FS,
    crash_after_snapshot: bool = False,
) -> CompactionStats:
    """Snapshot ``store`` and trim ``journal`` to the post-snapshot tail.

    Steps, each individually crash-atomic so a crash between any two
    leaves a recoverable world:

    1. write a snapshot at the store's current seq (atomic);
    2. rebase the journal to the *oldest retained* snapshot's seq
       (atomic rewrite) -- so every retained snapshot still bridges to
       the tail and falling a ladder rung never loses data;
    3. prune snapshots older than the retention set.

    The caller must hold whatever lock serialises appends (the
    front-end's), and ``store.seq`` must equal ``journal.seq``.

    ``crash_after_snapshot`` is a test hook for the kill-mid-compaction
    smoke scenario: it hard-exits the process (``os._exit``) between
    steps 1 and 2, the widest crash window.

    Raises:
        ServiceError: On a store/journal seq mismatch or retain < 1.
    """
    if retain < 1:
        raise ServiceError(f"retain must be >= 1, got {retain}")
    if store.seq != journal.seq:
        raise ServiceError(
            f"cannot compact: store seq {store.seq} != journal seq {journal.seq}"
        )
    directory = Path(directory)
    bytes_before = journal.size_bytes
    write_snapshot(store, directory, fs)
    if crash_after_snapshot:  # pragma: no cover - exercised via subprocess smoke
        os._exit(137)
    snapshots = list_snapshots(directory, fs)
    retained = snapshots[:retain]
    # Rebase to the oldest retained snapshot so every retained snapshot
    # can still replay the tail; never rebase backwards (a snapshot older
    # than the current base cannot bridge to this journal anyway).
    base_seq = max(min(seq for seq, _ in retained), journal.base_seq)
    journal.rewrite_tail(base_seq)
    pruned = []
    for seq, path in snapshots[retain:]:
        fs.remove(path)
        pruned.append(seq)
    if pruned:
        fs.fsync_dir(directory)
    return CompactionStats(
        snapshot_seq=store.seq,
        base_seq=base_seq,
        retained=tuple(seq for seq, _ in retained),
        pruned=tuple(pruned),
        journal_bytes_before=bytes_before,
        journal_bytes_after=journal.size_bytes,
    )


def recover_state(
    journal_path: str | Path,
    snapshot_dir: str | Path,
    *,
    config: StoreConfig | None = None,
    fs: FileSystem = REAL_FS,
) -> tuple[ArrangementStore, int, RecoveryReport]:
    """Walk the recovery degradation ladder.

    Tries, in order: each snapshot newest-to-oldest plus the journal
    tail; full journal replay (only possible when the journal was never
    compacted, ``base_seq == 0``); a fresh empty store under ``config``
    when nothing durable exists at all. Only when every rung is
    exhausted does it raise :class:`JournalError`.

    A snapshot that fails verification (:class:`SnapshotError`) or
    cannot bridge to the journal tail is *rejected* -- recorded in the
    report -- and the ladder moves on. A journal whose *middle* is
    corrupt is fatal as ever: every rung replays the same tail bytes,
    so no amount of falling down the ladder can route around it.

    Returns:
        ``(store, durable_bytes, report)`` -- ``durable_bytes`` is the
        journal's durable prefix length, or ``-1`` when the journal
        itself holds no durable header (the caller rewrites the file).
    """
    journal_path = Path(journal_path)
    header = read_header(journal_path, fs)
    rejected: list[str] = []
    for snap_seq, snap_file in list_snapshots(snapshot_dir, fs):
        try:
            snap = load_snapshot(snap_file, fs)
        except SnapshotError as exc:
            rejected.append(str(exc))
            continue
        if header is None:
            # The journal lost (or never durably gained) its header --
            # the snapshot alone is the durable state.
            return (
                snap,
                -1,
                RecoveryReport(
                    rung="snapshot-only",
                    snapshot_seq=snap_seq,
                    journal_base_seq=snap.seq,
                    snapshots_rejected=tuple(rejected),
                ),
            )
        if header.base_seq > snap_seq:
            rejected.append(
                f"{snap_file}: journal tail starts at seq {header.base_seq + 1}, "
                f"past this snapshot (seq {snap_seq})"
            )
            continue
        store, durable = replay(journal_path, base=snap, fs=fs)
        return (
            store,
            durable,
            RecoveryReport(
                rung="snapshot+tail",
                snapshot_seq=snap_seq,
                journal_base_seq=header.base_seq,
                records_replayed=store.seq - snap_seq,
                snapshots_rejected=tuple(rejected),
            ),
        )
    if header is None:
        if config is None:
            detail = "; ".join(rejected) if rejected else "no snapshots found"
            raise JournalError(
                f"{journal_path}: nothing durable survives (no journal header, "
                f"no usable snapshot: {detail})"
            )
        return (
            ArrangementStore(config),
            -1,
            RecoveryReport(rung="recreate", snapshots_rejected=tuple(rejected)),
        )
    if header.base_seq:
        detail = "; ".join(rejected) if rejected else "no snapshots found"
        raise JournalError(
            f"{journal_path}: nothing durable survives (journal tail starts at "
            f"seq {header.base_seq + 1}, no usable snapshot: {detail})"
        )
    store, durable = replay(journal_path, fs=fs)
    return (
        store,
        durable,
        RecoveryReport(
            rung="full-replay",
            records_replayed=store.seq,
            snapshots_rejected=tuple(rejected),
        ),
    )
