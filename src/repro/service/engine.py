"""The micro-batching arrangement engine.

Assignment requests do not each pay for a solve: they queue, and every
``batch_ms`` the engine drains the queue and re-solves the *un-frozen
remainder* of the live instance in one shot -- the
:class:`~repro.simulation.policies.RebatchPolicy` idea applied at batch
granularity, under a :class:`~repro.robustness.budget.Budget` with the
degradation ladder (:func:`repro.robustness.harness.solve_with_ladder`)
as the deadline fallback. The solved arrangement is compared against the
standing one and committed only if it is at least as good, as a
journaled ``commit_batch`` delta -- so replay never re-solves anything
and the recovered state is independent of batch boundaries.

Admission control: the pending queue is bounded. A full queue rejects
with :class:`~repro.exceptions.ServiceOverloadedError` *before* anything
is journaled -- the service degrades by shedding load explicitly, never
by stalling every in-flight request behind an unbounded backlog.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.core.conflicts import DisjointSet
from repro.core.model import Instance
from repro.exceptions import ServiceError, ServiceOverloadedError
from repro.robustness.harness import SolveResult, solve_with_ladder
from repro.service.store import ArrangementStore, Delta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.frontend import ArrangementService


class BatchSolver(Protocol):
    """The solver signature a batch engine drives (ladder-compatible)."""

    def __call__(
        self,
        instance: Instance,
        ladder: Sequence[object],
        *,
        timeout: float | None = None,
    ) -> SolveResult: ...

#: Default micro-batch coalescing window.
DEFAULT_BATCH_MS = 25.0

#: Default per-batch solve deadline (seconds).
DEFAULT_SOLVE_TIMEOUT = 0.25

#: Default admission-control bound on queued assignment requests.
DEFAULT_MAX_PENDING = 1024

#: Default degradation ladder for batch solves: the scalable
#: approximation first, the cheapest feasible answer as the floor.
DEFAULT_LADDER: tuple[str, ...] = ("greedy", "random-u")


class PendingRequest:
    """One queued assignment request: a tiny single-use future.

    The engine resolves it with the user's standing event list after
    the batch containing it commits; :attr:`latency_s` is the submit ->
    resolve wall time (what ``geacc replay`` aggregates into
    percentiles).
    """

    __slots__ = ("user", "submitted_at", "resolved_at", "events", "error", "_done")

    def __init__(self, user: int) -> None:
        self.user = user
        self.submitted_at = time.perf_counter()
        self.resolved_at: float | None = None
        self.events: tuple[int, ...] | None = None
        self.error: Exception | None = None
        self._done = threading.Event()

    def resolve(self, events: tuple[int, ...]) -> None:
        self.events = events
        self.resolved_at = time.perf_counter()
        self._done.set()

    def fail(self, error: Exception) -> None:
        self.error = error
        self.resolved_at = time.perf_counter()
        self._done.set()

    def wait(self, timeout: float | None = None) -> tuple[int, ...]:
        """Block until the batch commits; returns the assigned events."""
        if not self._done.wait(timeout):
            raise ServiceError(
                f"assignment request for user {self.user} still pending "
                f"after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        assert self.events is not None
        return self.events

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def latency_s(self) -> float | None:
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.submitted_at


class MicroBatchEngine:
    """Coalesces pending requests and re-solves the open remainder.

    Args:
        service: The owning :class:`~repro.service.frontend.
            ArrangementService` (holds the store, journal and state
            lock; the engine journals its commits through it).
        batch_ms: Coalescing window. Requests arriving within one window
            share one solve.
        solve_timeout: Per-batch ladder deadline (seconds).
        max_pending: Admission-control queue bound.
        ladder: Solver names for :func:`solve_with_ladder`, best first.
        solver: Optional replacement for :func:`solve_with_ladder` with
            the same ``(instance, ladder, *, timeout)`` signature. The
            shard coordinator injects
            :func:`repro.parallel.shardsolve.solve_shard_batch` here so
            shard batches solve over zero-copy shared-memory views.
    """

    def __init__(
        self,
        service: "ArrangementService",
        batch_ms: float = DEFAULT_BATCH_MS,
        solve_timeout: float = DEFAULT_SOLVE_TIMEOUT,
        max_pending: int = DEFAULT_MAX_PENDING,
        ladder: tuple[str, ...] = DEFAULT_LADDER,
        solver: "BatchSolver | None" = None,
    ) -> None:
        if batch_ms < 0:
            raise ServiceError(f"batch_ms must be >= 0, got {batch_ms}")
        if solve_timeout <= 0:
            raise ServiceError(f"solve_timeout must be > 0, got {solve_timeout}")
        if max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {max_pending}")
        self._service = service
        self.batch_ms = batch_ms
        self.solve_timeout = solve_timeout
        self.max_pending = max_pending
        self.ladder = tuple(ladder)
        self._solve = solver if solver is not None else solve_with_ladder
        self.batches_solved = 0
        self.requests_served = 0
        self.last_outcome: str | None = None
        self._pending: list[PendingRequest] = []
        self._cond = threading.Condition()
        self._stop = False
        self._dirty = False
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Admission + queueing
    # ------------------------------------------------------------------

    def admit(self, user: int) -> PendingRequest:
        """Queue one assignment request (admission-controlled).

        Raises:
            ServiceOverloadedError: If the queue is at ``max_pending``.
                Nothing is journaled for a rejected request.
        """
        with self._cond:
            if len(self._pending) >= self.max_pending:
                raise ServiceOverloadedError(
                    f"assignment queue full ({self.max_pending} pending); "
                    "retry after the next batch"
                )
            request = PendingRequest(user)
            self._pending.append(request)
            self._cond.notify_all()
            return request

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._pending)

    def mark_dirty(self) -> None:
        """Request a re-solve even when no assignment request is queued.

        Mutations that change the feasible region (a freeze, a cancel, a
        new event) leave the standing arrangement stale without putting
        anything in the queue. The shard coordinator marks the affected
        shard dirty; the next batch -- background-thread or synchronous
        -- re-solves the open remainder even if the request list is
        empty. The unsharded service never calls this, so its batch
        cadence is unchanged.
        """
        with self._cond:
            self._dirty = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # The batch loop
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the background batch thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop = False
        self._thread = threading.Thread(
            target=self._run, name="geacc-batch-engine", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread, solving one final batch for stragglers."""
        thread = self._thread
        if thread is None:
            return
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        thread.join()
        self._thread = None
        self.run_pending_batch()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._dirty and not self._stop:
                    self._cond.wait()
                if self._stop:
                    return
            # Coalescing window: let a burst of requests pile into this
            # batch instead of paying one solve each.
            if self.batch_ms > 0:
                time.sleep(self.batch_ms / 1000.0)
            self.run_pending_batch()

    def run_pending_batch(self) -> int:
        """Drain the queue and solve one batch synchronously.

        Returns the number of requests resolved (0 when the queue was
        empty). Exposed for deterministic tests and the synchronous
        (no-thread) mode.
        """
        with self._cond:
            batch = self._pending
            self._pending = []
            dirty = self._dirty
            self._dirty = False
        if not batch and not dirty:
            return 0
        try:
            self._solve_and_commit(batch)
        except Exception as exc:
            for request in batch:
                request.fail(exc)
            raise
        return len(batch)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def _solve_and_commit(self, batch: list[PendingRequest]) -> None:
        service = self._service
        with service._lock:
            store = service.store
            delta = self._solve_open_remainder(store)
            if delta:
                service._journal_and_apply(
                    "commit_batch",
                    {**delta.to_json(), "users": sorted({r.user for r in batch})},
                )
            self.batches_solved += 1
            self.requests_served += len(batch)
            results = {
                request.user: tuple(sorted(store.events_of(request.user)))
                for request in batch
            }
        for request in batch:
            request.resolve(results[request.user])

    def _solve_open_remainder(self, store: ArrangementStore) -> Delta:
        """Re-solve the un-frozen remainder; never worsen the standing state.

        Builds the restricted instance the
        :class:`~repro.simulation.policies.RebatchPolicy` would build --
        open events keep their capacity, frozen/cancelled ones drop to
        zero, user capacities shrink by frozen commitments, and a pair's
        similarity is zeroed when the user's frozen commitments conflict
        with the event -- then runs the degradation ladder under the
        batch deadline. The solved arrangement replaces the standing
        open assignment only if it does not lower the open MaxSum, so a
        deadline-starved rung can never regress the arrangement.
        """
        open_events = store.open_events()
        if not open_events or store.n_users == 0:
            return Delta()
        n_events, n_users = store.n_events, store.n_users
        sims = np.zeros((n_events, n_users))
        frozen_of_user = [
            frozenset(
                e for e in store.events_of(u) if not store.is_open(e)
            )
            for u in range(n_users)
        ]
        for event in open_events:
            row = store.sim_row(event)
            for user in range(n_users):
                if row[user] <= 0:
                    continue
                if store.conflicts_with_any(event, frozen_of_user[user]):
                    continue
                sims[event, user] = row[user]

        event_capacities = np.zeros(n_events, dtype=np.int64)
        for event in open_events:
            event_capacities[event] = store.event_capacity(event)
        user_capacities = np.asarray(
            [
                store.user_capacity(u) - len(frozen_of_user[u])
                for u in range(n_users)
            ],
            dtype=np.int64,
        )
        conflicts = store.snapshot_instance().conflicts
        sub_instance = Instance(
            event_capacities, user_capacities, conflicts, sims=sims
        )
        result = self._solve(
            sub_instance, self.ladder, timeout=self.solve_timeout
        )
        self.last_outcome = result.outcome.value
        if result.arrangement is None:
            return Delta()  # every rung failed: keep the standing state

        current = {
            (e, u)
            for e, u in store.pairs()
            if store.is_open(e)
        }
        candidate = set(result.arrangement.pairs())
        if current == candidate:
            return Delta()

        # Keep-better is decided per *user-linked conflict cluster*, not
        # globally: conflict-graph components are independent on the
        # event side, so a deadline-starved rung that regressed one
        # region must not veto a genuine improvement in another. But a
        # user holding seats in several components couples them through
        # its capacity -- applying one component's candidate while
        # keeping another's current seats could over-commit that user --
        # so components sharing any user (in either arrangement) are
        # merged into one accept/reject unit first.
        clusters = DisjointSet()
        for event in range(n_events):
            clusters.add(event)
            for other in store.event_conflicts(event):
                clusters.union(event, other)
        anchor_of_user: dict[int, int] = {}
        for event, user in current | candidate:
            anchor = anchor_of_user.setdefault(user, event)
            clusters.union(anchor, event)
        current_of: dict[int, set[tuple[int, int]]] = {}
        candidate_of: dict[int, set[tuple[int, int]]] = {}
        for pair in current:
            current_of.setdefault(clusters.find(pair[0]), set()).add(pair)
        for pair in candidate:
            candidate_of.setdefault(clusters.find(pair[0]), set()).add(pair)
        assigns: list[tuple[int, int]] = []
        unassigns: list[tuple[int, int]] = []
        for root in sorted(set(current_of) | set(candidate_of)):
            kept = current_of.get(root, set())
            solved = candidate_of.get(root, set())
            if kept == solved:
                continue
            kept_sum = float(sum(sims[e, u] for e, u in kept))
            solved_sum = float(sum(sims[e, u] for e, u in solved))
            if solved_sum < kept_sum:
                continue  # this cluster keeps its standing seats
            assigns.extend(solved - kept)
            unassigns.extend(kept - solved)
        return Delta(
            assigns=tuple(sorted(assigns)),
            unassigns=tuple(sorted(unassigns)),
        )
