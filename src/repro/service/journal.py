"""Write-ahead journal: an fsync'd JSONL log of accepted commands.

Durability contract (the same crash-safe style as the sweep checkpoints
in :mod:`repro.experiments.runner`, hardened for a serving path):

* the header line names the format and carries the immutable
  :class:`~repro.service.store.StoreConfig`;
* every accepted command is appended as one JSON line -- written,
  flushed and ``fsync``'d **before** the store mutates (write-ahead);
* records carry contiguous sequence numbers starting at 1, assigned by
  the journal, so replay can prove it saw every accepted command;
* a torn *final* line (the crash window is exactly one partial
  ``write``) is detected -- undecodable JSON or a missing trailing
  newline -- truncated away, and its command counts as never accepted
  (the client never got an acknowledgement for it);
* anything else wrong -- foreign header, mid-file garbage, a sequence
  gap -- raises :class:`~repro.exceptions.JournalError`: that journal
  was not produced by this code crashing, and guessing would corrupt
  state.

:func:`replay` folds a journal back into a fresh
:class:`~repro.service.store.ArrangementStore`; because the store is a
pure state machine over records (solver outputs are journaled as
``commit_batch`` deltas, never re-solved), replay is deterministic and
independent of the micro-batch boundaries, solver timing, and thread
scheduling of the process that wrote the journal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterator

from repro.exceptions import JournalError
from repro.service.store import ArrangementStore, StoreConfig

#: First-line format marker of every service journal.
JOURNAL_FORMAT = "geacc-service-v1"


def _parse_header(line: str, path: Path) -> StoreConfig:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalError(f"{path}: unreadable journal header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"{path}: not a {JOURNAL_FORMAT} journal "
            f"(header {str(header)[:80]!r})"
        )
    return StoreConfig.from_json(header.get("config", {}))


class Journal:
    """An append-only, fsync'd JSONL write-ahead journal.

    Use :meth:`create` for a fresh journal or :meth:`recover` to open an
    existing one (truncating a torn tail); both return a journal whose
    :attr:`seq` continues the record numbering exactly where the file
    left off.
    """

    def __init__(self, path: Path, config: StoreConfig, seq: int, handle: IO[bytes]):
        self.path = path
        self.config = config
        self.seq = seq
        self._handle: IO[bytes] | None = handle

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, config: StoreConfig) -> "Journal":
        """Start a new journal; refuses to overwrite an existing file."""
        path = Path(path)
        if path.exists():
            raise JournalError(f"{path}: journal already exists (use recover)")
        header = {"format": JOURNAL_FORMAT, "config": config.to_json()}
        handle = open(path, "xb")
        handle.write(_encode(header))
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, config, seq=0, handle=handle)

    @classmethod
    def recover(cls, path: str | Path) -> tuple["Journal", ArrangementStore]:
        """Reopen ``path``, replay it, and continue appending.

        A torn final line is truncated from the file before the journal
        re-opens for append, so the live file never contains garbage in
        the middle.

        Returns:
            ``(journal, store)`` -- the journal positioned after the
            last durable record, and the store reconstructed from it.
        """
        path = Path(path)
        store, durable_bytes = replay(path)
        handle = open(path, "r+b")
        handle.truncate(durable_bytes)
        handle.seek(0, os.SEEK_END)
        config = store.config
        return cls(path, config, seq=store.seq, handle=handle), store

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------

    def append(self, cmd: str, args: dict) -> dict:
        """Durably journal one accepted command; returns the record.

        The record -- ``args`` plus the assigned ``seq`` and ``cmd`` --
        is on disk (written, flushed, fsync'd) when this returns: the
        caller may only then mutate the store.
        """
        if self._handle is None:
            raise JournalError(f"{self.path}: journal is closed")
        record = {"seq": self.seq + 1, "cmd": cmd, **args}
        self._handle.write(_encode(record))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.seq += 1
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._handle is None else "open"
        return f"Journal({self.path}, seq={self.seq}, {state})"


def _encode(record: dict) -> bytes:
    return (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def iter_records(path: str | Path) -> Iterator[tuple[StoreConfig | dict, int]]:
    """Yield ``(header_config | record, end_offset)`` pairs from a journal.

    The first yield is the parsed :class:`StoreConfig`; every later
    yield is a decoded record dict. ``end_offset`` is the byte offset
    just past that line -- the durable prefix length if everything after
    it were torn away.

    A torn final line (no trailing newline, or undecodable JSON on the
    last line) terminates the iteration silently; torn or undecodable
    content *before* the final line raises :class:`JournalError`.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"{path}: cannot read journal: {exc}") from exc
    if not blob:
        raise JournalError(f"{path}: empty journal (missing header)")
    lines = blob.split(b"\n")
    # A well-formed file ends with a newline, so the final split element
    # is empty; anything else is the torn tail of a crashed append.
    torn_tail = lines.pop() != b""
    offset = 0
    expected_seq = 1
    for index, raw in enumerate(lines):
        line_end = offset + len(raw) + 1
        is_last = index == len(lines) - 1
        try:
            decoded = json.loads(raw.decode("utf-8"))
            if not isinstance(decoded, dict):
                raise ValueError(f"record is not an object: {decoded!r}")
        except (ValueError, UnicodeDecodeError) as exc:
            if is_last:
                # Crash window: the final complete-looking line can still
                # be a partial write whose tail happened to contain '\n'.
                return
            raise JournalError(f"{path}:{index + 1}: corrupt record: {exc}") from exc
        if index == 0:
            yield _parse_header(raw.decode("utf-8"), path), line_end
        else:
            seq = decoded.get("seq")
            if seq != expected_seq:
                raise JournalError(
                    f"{path}:{index + 1}: sequence gap (expected {expected_seq}, "
                    f"got {seq!r})"
                )
            expected_seq += 1
            yield decoded, line_end
        offset = line_end
    if torn_tail:
        # The bytes after the last newline are a partial append; callers
        # recovering the journal truncate to the last yielded offset.
        return


def replay(path: str | Path) -> tuple[ArrangementStore, int]:
    """Reconstruct the store a journal describes.

    Returns:
        ``(store, durable_bytes)`` -- the rebuilt
        :class:`ArrangementStore` and the byte length of the durable
        prefix (everything past it is a torn tail to truncate).

    Raises:
        JournalError: On a corrupt (not merely torn) journal.
    """
    store: ArrangementStore | None = None
    durable = 0
    for item, end_offset in iter_records(path):
        if store is None:
            if not isinstance(item, StoreConfig):
                raise JournalError(f"{path}: first record is not a header")
            store = ArrangementStore(item)
        else:
            assert isinstance(item, dict)
            # Replay folds records that are already durable -- the append
            # this apply answers to happened in the process that wrote the
            # journal, so the write-ahead order is satisfied by construction.
            store.apply(item)  # geacc-lint: disable=R9 reason=replaying records already durable in this journal
        durable = end_offset
    if store is None:
        raise JournalError(f"{path}: journal holds no durable header")
    return store, durable
