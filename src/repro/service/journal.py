"""Write-ahead journal: an fsync'd JSONL log of accepted commands.

Durability contract (the same crash-safe style as the sweep checkpoints
in :mod:`repro.experiments.runner`, hardened for a serving path):

* the header line names the format and carries the immutable
  :class:`~repro.service.store.StoreConfig` plus the journal's **base
  sequence number** -- 0 for a journal that starts at the beginning of
  history, ``B`` for a journal compacted against a snapshot at seq
  ``B`` (records before ``B + 1`` were trimmed away and live in a
  snapshot, see :mod:`repro.service.snapshot`);
* every accepted command is appended as one JSON line -- written,
  flushed and ``fsync``'d **before** the store mutates (write-ahead);
* records carry contiguous sequence numbers starting at ``base_seq +
  1``, assigned by the journal, so replay can prove it saw every
  accepted command;
* a torn *final* line (the crash window is exactly one partial
  ``write``) is detected -- undecodable JSON or a missing trailing
  newline -- truncated away, and its command counts as never accepted
  (the client never got an acknowledgement for it);
* anything else wrong -- foreign header, mid-file garbage, a sequence
  gap -- raises :class:`~repro.exceptions.JournalError`: that journal
  was not produced by this code crashing, and guessing would corrupt
  state.

:func:`replay` folds a journal back into a fresh
:class:`~repro.service.store.ArrangementStore` (or onto a snapshot-
restored base store for a compacted journal); because the store is a
pure state machine over records (solver outputs are journaled as
``commit_batch`` deltas, never re-solved), replay is deterministic and
independent of the micro-batch boundaries, solver timing, and thread
scheduling of the process that wrote the journal.

Every byte this module (and :mod:`repro.service.snapshot`) moves to
disk goes through a :class:`FileSystem` seam, so the fault-injection
layer in :mod:`repro.robustness.faultfs` can substitute an in-memory
filesystem and enumerate a crash at every write/flush/fsync/rename.
These two modules are the only files under ``src/repro/service/``
allowed to open files for writing (lint rule R14,
``docs/static-analysis.md``); everything else must route through
:func:`repro.service.snapshot.atomic_write_bytes`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

from repro.exceptions import JournalError
from repro.service.store import ArrangementStore, StoreConfig

#: First-line format marker of every service journal.
JOURNAL_FORMAT = "geacc-service-v1"


class FileSystem:
    """Real-filesystem durability primitives (the fault-injection seam).

    The journal and snapshot layers never call ``open``/``os.fsync``/
    ``os.replace`` directly on module level state -- they go through an
    instance of this class (:data:`REAL_FS` in production), so
    :class:`repro.robustness.faultfs.FaultFS` can substitute an
    in-memory filesystem and inject a crash before any single
    durability-relevant operation.
    """

    def open(self, path: str | Path, mode: str) -> IO[bytes]:
        return open(path, mode)

    def fsync(self, handle: IO[bytes]) -> None:
        os.fsync(handle.fileno())

    def fsync_dir(self, directory: str | Path) -> None:
        """Flush a directory entry table (makes renames/creates durable)."""
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        os.replace(src, dst)

    def remove(self, path: str | Path) -> None:
        os.remove(path)

    def read_bytes(self, path: str | Path) -> bytes:
        return Path(path).read_bytes()

    def exists(self, path: str | Path) -> bool:
        return Path(path).exists()

    def listdir(self, path: str | Path) -> list[str]:
        return os.listdir(path)

    def mkdir(self, path: str | Path) -> None:
        os.makedirs(path, exist_ok=True)


#: The production filesystem; tests substitute a ``FaultFS``.
REAL_FS = FileSystem()


@dataclass(frozen=True)
class JournalHeader:
    """Parsed first line of a journal: the config and the base seq."""

    config: StoreConfig
    base_seq: int = 0


@dataclass(frozen=True)
class RecoveryReport:
    """How a recovery reconstructed state (which ladder rung fired).

    ``rung`` is one of:

    * ``"snapshot+tail"`` -- a snapshot restored, journal tail replayed
      on top (the fast path);
    * ``"snapshot-only"`` -- a snapshot restored and the journal held no
      durable header (crash during journal creation/rewrite); the
      journal file was rewritten from the snapshot's seq;
    * ``"full-replay"`` -- no usable snapshot; the whole journal was
      replayed from seq 1;
    * ``"recreate"`` -- nothing durable existed at all (empty/headerless
      journal, no snapshot) and a config was supplied, so recovery
      returned a fresh empty store.
    """

    rung: str
    snapshot_seq: int | None = None
    journal_base_seq: int = 0
    records_replayed: int = 0
    snapshots_rejected: tuple[str, ...] = field(default_factory=tuple)

    def to_json(self) -> dict:
        return {
            "rung": self.rung,
            "snapshot_seq": self.snapshot_seq,
            "journal_base_seq": self.journal_base_seq,
            "records_replayed": self.records_replayed,
            "snapshots_rejected": list(self.snapshots_rejected),
        }


def _parse_header(line: str, path: Path) -> JournalHeader:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalError(f"{path}: unreadable journal header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"{path}: not a {JOURNAL_FORMAT} journal "
            f"(header {str(header)[:80]!r})"
        )
    base_seq = header.get("base_seq", 0)
    if not isinstance(base_seq, int) or base_seq < 0:
        raise JournalError(f"{path}: malformed journal base_seq {base_seq!r}")
    return JournalHeader(
        config=StoreConfig.from_json(header.get("config", {})),
        base_seq=base_seq,
    )


def _header_bytes(config: StoreConfig, base_seq: int) -> bytes:
    return _encode(
        {"format": JOURNAL_FORMAT, "config": config.to_json(), "base_seq": base_seq}
    )


def read_header(path: str | Path, fs: FileSystem = REAL_FS) -> JournalHeader | None:
    """Parse a journal's durable header line, if one exists.

    Returns ``None`` when the file is missing, empty, or holds no
    *complete* (newline-terminated) first line -- the crash window of
    journal creation, where nothing of the journal is durable yet.
    A complete-but-foreign/undecodable header raises
    :class:`JournalError` (that file was not produced by this code).
    """
    path = Path(path)
    try:
        blob = fs.read_bytes(path)
    except OSError:
        return None
    newline = blob.find(b"\n")
    if newline < 0:
        return None
    return _parse_header(blob[:newline].decode("utf-8", errors="replace"), path)


class Journal:
    """An append-only, fsync'd JSONL write-ahead journal.

    Use :meth:`create` for a fresh journal or :meth:`recover` to open an
    existing one (truncating a torn tail); both return a journal whose
    :attr:`seq` continues the record numbering exactly where the file
    left off. :attr:`base_seq` is the seq of the snapshot this journal
    was last compacted against (0 = full history);
    :attr:`size_bytes` tracks the live file size so the front-end can
    trigger compaction on growth.
    """

    def __init__(
        self,
        path: Path,
        config: StoreConfig,
        seq: int,
        handle: IO[bytes],
        *,
        base_seq: int = 0,
        size_bytes: int = 0,
        fs: FileSystem = REAL_FS,
        last_recovery: RecoveryReport | None = None,
    ):
        self.path = path
        self.config = config
        self.seq = seq
        self.base_seq = base_seq
        self.size_bytes = size_bytes
        self.last_recovery = last_recovery
        self._fs = fs
        self._handle: IO[bytes] | None = handle

    @property
    def fs(self) -> FileSystem:
        """The filesystem seam this journal writes through.

        Everything that persists alongside the journal (snapshots, the
        shard manifest) must go through the same seam so fault-injection
        tests see one coherent world.
        """
        return self._fs

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        config: StoreConfig,
        *,
        base_seq: int = 0,
        fs: FileSystem = REAL_FS,
    ) -> "Journal":
        """Start a new journal; refuses to overwrite an existing file.

        The header is fsync'd and so is the parent directory, so a
        journal either exists durably with a complete header or (crash
        mid-create) recovery sees nothing and starts over.
        """
        path = Path(path)
        if fs.exists(path):
            raise JournalError(f"{path}: journal already exists (use recover)")
        blob = _header_bytes(config, base_seq)
        handle = fs.open(path, "xb")
        handle.write(blob)
        handle.flush()
        fs.fsync(handle)
        fs.fsync_dir(path.parent)
        return cls(
            path,
            config,
            seq=base_seq,
            handle=handle,
            base_seq=base_seq,
            size_bytes=len(blob),
            fs=fs,
        )

    @classmethod
    def recover(
        cls,
        path: str | Path,
        *,
        snapshot_dir: str | Path | None = None,
        config: StoreConfig | None = None,
        fs: FileSystem = REAL_FS,
    ) -> tuple["Journal", ArrangementStore]:
        """Reopen ``path``, reconstruct its state, and continue appending.

        With ``snapshot_dir``, recovery walks the degradation ladder
        (:func:`repro.service.snapshot.recover_state`): newest loadable
        snapshot + journal tail -> older snapshot + tail -> full journal
        replay -> :class:`JournalError` only when nothing durable
        survives. Without it, only full replay is possible (a compacted
        journal then refuses to recover rather than silently dropping
        its pre-snapshot history).

        ``config`` is the last rung's safety net: when neither journal
        header nor any snapshot is durable -- a crash during the very
        first journal creation, or an empty/zero-length file -- recovery
        returns a fresh empty store under that config instead of
        failing. Without ``config``, that case raises.

        A torn final line is truncated from the file before the journal
        re-opens for append, so the live file never contains garbage in
        the middle. The chosen rung is recorded on
        ``journal.last_recovery``.

        Returns:
            ``(journal, store)`` -- the journal positioned after the
            last durable record, and the store reconstructed from it.
        """
        path = Path(path)
        if snapshot_dir is not None:
            from repro.service.snapshot import recover_state

            store, durable_bytes, report = recover_state(
                path, snapshot_dir, config=config, fs=fs
            )
        else:
            header = read_header(path, fs)
            if header is None:
                if config is None:
                    raise JournalError(
                        f"{path}: no durable journal header and no snapshots to "
                        "recover from"
                    )
                store = ArrangementStore(config)
                durable_bytes = -1
                report = RecoveryReport(rung="recreate")
            elif header.base_seq:
                raise JournalError(
                    f"{path}: compacted journal (base seq {header.base_seq}) "
                    "needs its snapshot directory to recover"
                )
            else:
                store, durable_bytes = replay(path, fs=fs)
                report = RecoveryReport(
                    rung="full-replay", records_replayed=store.seq
                )
        if durable_bytes < 0:
            # No durable header survived: rewrite the journal outright so
            # the file on disk matches the recovered state (base = the
            # recovered seq; there is no tail to preserve).
            blob = _header_bytes(store.config, base_seq=store.seq)
            handle = fs.open(path, "wb")
            handle.write(blob)
            handle.flush()
            fs.fsync(handle)
            fs.fsync_dir(path.parent)
            base_seq = store.seq
            durable_bytes = len(blob)
        else:
            handle = fs.open(path, "r+b")
            handle.truncate(durable_bytes)
            handle.seek(0, os.SEEK_END)
            base_seq = report.journal_base_seq
        journal = cls(
            path,
            store.config,
            seq=store.seq,
            handle=handle,
            base_seq=base_seq,
            size_bytes=durable_bytes,
            fs=fs,
            last_recovery=report,
        )
        return journal, store

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------

    def append(self, cmd: str, args: dict) -> dict:
        """Durably journal one accepted command; returns the record.

        The record -- ``args`` plus the assigned ``seq`` and ``cmd`` --
        is on disk (written, flushed, fsync'd) when this returns: the
        caller may only then mutate the store.
        """
        if self._handle is None:
            raise JournalError(f"{self.path}: journal is closed")
        record = {"seq": self.seq + 1, "cmd": cmd, **args}
        blob = _encode(record)
        self._handle.write(blob)
        self._handle.flush()
        self._fs.fsync(self._handle)
        self.seq += 1
        self.size_bytes += len(blob)
        return record

    def rewrite_tail(self, base_seq: int) -> None:
        """Atomically trim the journal to records after ``base_seq``.

        The compaction primitive: rewrites the file as a fresh header
        (``base_seq`` recorded) plus every record with seq >
        ``base_seq``, via tmp file + fsync + rename + directory fsync.
        A crash anywhere in between leaves either the old journal or the
        new one -- never a mix -- and both replay to the same state given
        the snapshot at ``base_seq`` (which the caller,
        :func:`repro.service.snapshot.compact`, wrote first).
        """
        if self._handle is None:
            raise JournalError(f"{self.path}: journal is closed")
        if base_seq < self.base_seq or base_seq > self.seq:
            raise JournalError(
                f"{self.path}: cannot rebase journal to seq {base_seq} "
                f"(live range is [{self.base_seq}, {self.seq}])"
            )
        fs = self._fs
        parts = [_header_bytes(self.config, base_seq)]
        for item, _ in iter_records(self.path, fs=fs):
            if isinstance(item, dict) and item["seq"] > base_seq:
                parts.append(_encode(item))
        blob = b"".join(parts)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp_handle = fs.open(tmp, "wb")
        tmp_handle.write(blob)
        tmp_handle.flush()
        fs.fsync(tmp_handle)
        tmp_handle.close()
        self._handle.close()
        self._handle = None
        fs.replace(tmp, self.path)
        fs.fsync_dir(self.path.parent)
        handle = fs.open(self.path, "r+b")
        handle.seek(0, os.SEEK_END)
        self._handle = handle
        self.base_seq = base_seq
        self.size_bytes = len(blob)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._handle is None else "open"
        return (
            f"Journal({self.path}, seq={self.seq}, base={self.base_seq}, {state})"
        )


def _encode(record: dict) -> bytes:
    return (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def iter_records(
    path: str | Path, fs: FileSystem = REAL_FS
) -> Iterator[tuple[JournalHeader | dict, int]]:
    """Yield ``(header | record, end_offset)`` pairs from a journal.

    The first yield is the parsed :class:`JournalHeader`; every later
    yield is a decoded record dict. ``end_offset`` is the byte offset
    just past that line -- the durable prefix length if everything after
    it were torn away. Record seqs are checked contiguous from
    ``header.base_seq + 1``.

    A torn final line (no trailing newline, or undecodable JSON on the
    last line) terminates the iteration silently; torn or undecodable
    content *before* the final line raises :class:`JournalError`.
    """
    path = Path(path)
    try:
        blob = fs.read_bytes(path)
    except OSError as exc:
        raise JournalError(f"{path}: cannot read journal: {exc}") from exc
    if not blob:
        raise JournalError(f"{path}: empty journal (missing header)")
    lines = blob.split(b"\n")
    # A well-formed file ends with a newline, so the final split element
    # is empty; anything else is the torn tail of a crashed append.
    torn_tail = lines.pop() != b""
    offset = 0
    expected_seq = 1
    for index, raw in enumerate(lines):
        line_end = offset + len(raw) + 1
        is_last = index == len(lines) - 1
        try:
            decoded = json.loads(raw.decode("utf-8"))
            if not isinstance(decoded, dict):
                raise ValueError(f"record is not an object: {decoded!r}")
        except (ValueError, UnicodeDecodeError) as exc:
            if is_last:
                # Crash window: the final complete-looking line can still
                # be a partial write whose tail happened to contain '\n'.
                return
            raise JournalError(f"{path}:{index + 1}: corrupt record: {exc}") from exc
        if index == 0:
            header = _parse_header(raw.decode("utf-8"), path)
            expected_seq = header.base_seq + 1
            yield header, line_end
        else:
            seq = decoded.get("seq")
            if seq != expected_seq:
                raise JournalError(
                    f"{path}:{index + 1}: sequence gap (expected {expected_seq}, "
                    f"got {seq!r})"
                )
            expected_seq += 1
            yield decoded, line_end
        offset = line_end
    if torn_tail:
        # The bytes after the last newline are a partial append; callers
        # recovering the journal truncate to the last yielded offset.
        return


def replay(
    path: str | Path,
    *,
    base: ArrangementStore | None = None,
    fs: FileSystem = REAL_FS,
) -> tuple[ArrangementStore, int]:
    """Reconstruct the store a journal describes.

    Without ``base``, the journal must start at the beginning of history
    (``base_seq == 0``) and a fresh store is folded from seq 1. With
    ``base`` -- a snapshot-restored store at some seq ``S`` -- the
    journal's ``base_seq`` must be <= ``S`` (its tail must bridge from
    the snapshot), records at or before ``S`` are skipped, and the rest
    are applied **in place** on ``base``.

    Returns:
        ``(store, durable_bytes)`` -- the rebuilt
        :class:`ArrangementStore` and the byte length of the durable
        prefix (everything past it is a torn tail to truncate).

    Raises:
        JournalError: On a corrupt (not merely torn) journal, or a
            ``base``/journal mismatch.
    """
    store: ArrangementStore | None = None
    durable = 0
    for item, end_offset in iter_records(path, fs=fs):
        if store is None:
            if not isinstance(item, JournalHeader):
                raise JournalError(f"{path}: first record is not a header")
            if base is None:
                if item.base_seq:
                    raise JournalError(
                        f"{path}: compacted journal (base seq {item.base_seq}) "
                        "cannot replay without its snapshot"
                    )
                store = ArrangementStore(item.config)
            else:
                if item.config != base.config:
                    raise JournalError(
                        f"{path}: journal config {item.config.to_json()} does not "
                        f"match snapshot config {base.config.to_json()}"
                    )
                if item.base_seq > base.seq:
                    raise JournalError(
                        f"{path}: journal tail starts at seq {item.base_seq + 1}, "
                        f"past the snapshot at seq {base.seq}"
                    )
                store = base
        else:
            assert isinstance(item, dict)
            if item["seq"] > store.seq:
                # Replay folds records that are already durable -- the append
                # this apply answers to happened in the process that wrote the
                # journal, so the write-ahead order is satisfied by construction.
                store.apply(item)  # geacc-lint: disable=R9 reason=replaying records already durable in this journal
        durable = end_offset
    if store is None:
        raise JournalError(f"{path}: journal holds no durable header")
    return store, durable
