"""Per-shard ownership: one full service stack plus the id maps.

A :class:`ShardManager` owns everything one shard needs to run alone --
an :class:`~repro.service.store.ArrangementStore`, an fsync'd
:class:`~repro.service.journal.Journal`, a snapshot directory, and a
:class:`~repro.service.engine.MicroBatchEngine` -- composed exactly as
the unsharded :class:`~repro.service.frontend.ArrangementService` (it
*is* one, so the write-ahead discipline, auto-compaction and the PR 6
recovery ladder come for free and apply to each shard independently).

On top of the service the manager keeps the global<->local id
translation: shard journals speak local ids (dense, per-shard), the
coordinator speaks global ids, and the append-only ``events_g`` /
``users_g`` lists (local -> global) plus their inverse dicts are the
bridge. The maps are *not* persisted here -- they are derivable from
the coordinator's manifest, which is what recovery rebuilds them from.

Only :mod:`repro.service.sharding` may reach through a manager into its
``.service``/``.store``/``.journal`` (lint rule R16): everything else
talks to the :class:`~repro.service.sharding.ShardCoordinator`.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import ServiceError
from repro.service.engine import PendingRequest
from repro.service.frontend import ArrangementService
from repro.service.journal import REAL_FS, FileSystem, Journal
from repro.service.store import (
    CMD_POST_EVENT,
    CMD_REGISTER_USER,
    ArrangementStore,
    Delta,
    StoreConfig,
)


class ShardManager:
    """One shard's service stack plus global<->local id translation."""

    def __init__(self, shard_id: int, service: ArrangementService) -> None:
        self.shard_id = shard_id
        self.service = service
        #: Local id -> global id, append-only (tombstoned slots keep
        #: their last gid; liveness is tracked by the inverse maps).
        self.events_g: list[int] = []
        self.users_g: list[int] = []
        #: Global id -> local id, live entities only.
        self._local_event: dict[int, int] = {}
        self._local_user: dict[int, int] = {}
        #: Entities tombstoned out of this shard by a rebalance.
        self.retired_events = 0
        self.retired_users = 0
        #: True when a mutation invalidated the standing arrangement and
        #: no batch has re-solved it yet (the coordinator's drain set).
        self.dirty = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def journal_path(root: Path, shard_id: int) -> Path:
        return root / f"shard-{shard_id:02d}.jsonl"

    @staticmethod
    def snapshot_dir(root: Path, shard_id: int) -> Path:
        return root / f"shard-{shard_id:02d}.snapshots"

    @classmethod
    def create(
        cls,
        root: Path,
        shard_id: int,
        config: StoreConfig,
        *,
        fs: FileSystem = REAL_FS,
        **service_kwargs: object,
    ) -> "ShardManager":
        """Create a fresh shard under ``root`` (journal + snapshot dir)."""
        journal = Journal.create(cls.journal_path(root, shard_id), config, fs=fs)
        service = ArrangementService(
            ArrangementStore(config),
            journal,
            snapshot_dir=cls.snapshot_dir(root, shard_id),
            **service_kwargs,  # type: ignore[arg-type]
        )
        return cls(shard_id, service)

    @classmethod
    def recover(
        cls,
        root: Path,
        shard_id: int,
        config: StoreConfig,
        *,
        fs: FileSystem = REAL_FS,
        **service_kwargs: object,
    ) -> "ShardManager":
        """Recover one shard through its own snapshot+tail ladder.

        Each shard recovers independently -- a corrupt snapshot or torn
        journal here degrades *this* shard down its ladder without the
        other shards replaying a single record.
        """
        journal, store = Journal.recover(
            cls.journal_path(root, shard_id),
            snapshot_dir=cls.snapshot_dir(root, shard_id),
            config=config,
            fs=fs,
        )
        service = ArrangementService(
            store,
            journal,
            snapshot_dir=cls.snapshot_dir(root, shard_id),
            **service_kwargs,  # type: ignore[arg-type]
        )
        return cls(shard_id, service)

    # ------------------------------------------------------------------
    # Id translation
    # ------------------------------------------------------------------

    @property
    def store(self) -> ArrangementStore:
        return self.service.store

    def local_event(self, gid: int) -> int:
        try:
            return self._local_event[gid]
        except KeyError:
            raise ServiceError(
                f"event {gid} does not live on shard {self.shard_id}"
            ) from None

    def local_user(self, gid: int) -> int:
        try:
            return self._local_user[gid]
        except KeyError:
            raise ServiceError(
                f"user {gid} does not live on shard {self.shard_id}"
            ) from None

    def global_event(self, local: int) -> int:
        return self.events_g[local]

    def global_user(self, local: int) -> int:
        return self.users_g[local]

    def bind_event(self, gid: int, local: int) -> None:
        """Record that global event ``gid`` occupies local slot ``local``.

        Normal operation appends (``local == len(events_g)``); the
        recovery walk re-binds in the same order, so a mismatch means
        the manifest and the shard journal disagree.
        """
        if local == len(self.events_g):
            self.events_g.append(gid)
        elif not (0 <= local < len(self.events_g) and self.events_g[local] == gid):
            raise ServiceError(
                f"shard {self.shard_id}: event bind ({gid} -> local {local}) "
                "does not match the journal's arrival order"
            )
        self._local_event[gid] = local

    def bind_user(self, gid: int, local: int) -> None:
        if local == len(self.users_g):
            self.users_g.append(gid)
        elif not (0 <= local < len(self.users_g) and self.users_g[local] == gid):
            raise ServiceError(
                f"shard {self.shard_id}: user bind ({gid} -> local {local}) "
                "does not match the journal's arrival order"
            )
        self._local_user[gid] = local

    def unbind_event(self, gid: int) -> None:
        """Drop a migrated-away event from the live maps (tombstone stays)."""
        del self._local_event[gid]
        self.retired_events += 1

    def unbind_user(self, gid: int) -> None:
        del self._local_user[gid]
        self.retired_users += 1

    def owns_event(self, gid: int) -> bool:
        return gid in self._local_event

    def owns_user(self, gid: int) -> bool:
        return gid in self._local_user

    @property
    def n_live_events(self) -> int:
        return len(self._local_event)

    @property
    def n_live_users(self) -> int:
        return len(self._local_user)

    def live_events(self) -> list[int]:
        """Global ids of events living on this shard, ascending."""
        return sorted(self._local_event)

    def live_users(self) -> list[int]:
        return sorted(self._local_user)

    # ------------------------------------------------------------------
    # Commands (global ids in, local execution)
    # ------------------------------------------------------------------

    def validate_post_event(
        self, capacity: int, attributes: list[float], conflict_gids: list[int]
    ) -> None:
        """Admission-check a post against this shard, mutating nothing.

        The coordinator validates *before* writing the manifest entry so
        a rejected command never leaves a durable trace anywhere.
        """
        local_conflicts = [self.local_event(g) for g in conflict_gids]
        with self.service._lock:
            self.store.validate_command(
                CMD_POST_EVENT,
                {
                    "capacity": capacity,
                    "attributes": list(attributes),
                    "conflicts": local_conflicts,
                },
            )

    def validate_register_user(
        self, capacity: int, attributes: list[float]
    ) -> None:
        with self.service._lock:
            self.store.validate_command(
                CMD_REGISTER_USER,
                {"capacity": capacity, "attributes": list(attributes)},
            )

    def post_event(
        self,
        gid: int,
        capacity: int,
        attributes: list[float],
        conflict_gids: list[int],
    ) -> int:
        """Post a new event on this shard; binds and returns its local id."""
        local_conflicts = [self.local_event(g) for g in conflict_gids]
        local = self.service.post_event(capacity, attributes, local_conflicts)
        self.bind_event(gid, local)
        self.dirty = True
        self.service.engine.mark_dirty()
        return local

    def register_user(
        self, gid: int, capacity: int, attributes: list[float]
    ) -> int:
        local = self.service.register_user(capacity, attributes)
        self.bind_user(gid, local)
        return local

    def request_assignment(self, gid: int) -> PendingRequest:
        """Admit + journal an assignment request; never blocks."""
        self.dirty = False  # the coming batch re-solves this shard anyway
        result = self.service.request_assignment(self.local_user(gid), wait=False)
        assert isinstance(result, PendingRequest)
        return result

    def freeze_event(self, gid: int) -> None:
        self.service.freeze_event(self.local_event(gid))
        self.dirty = True
        self.service.engine.mark_dirty()

    def cancel_event(self, gid: int) -> None:
        self.service.cancel_event(self.local_event(gid))
        self.dirty = True
        self.service.engine.mark_dirty()

    def resolve_if_dirty(self) -> None:
        """Synchronously re-solve when a mutation left the shard stale."""
        if self.dirty:
            self.dirty = False
            self.service.run_pending_batch()

    def events_of(self, gid: int) -> tuple[int, ...]:
        """The user's standing events, as sorted global ids."""
        local = self.local_user(gid)
        with self.service._lock:
            return tuple(
                sorted(self.events_g[e] for e in self.store.events_of(local))
            )

    def best_similarity(self, attributes: tuple[float, ...]) -> float:
        with self.service._lock:
            return self.store.best_similarity(attributes)

    # ------------------------------------------------------------------
    # Migration (the rebalance protocol's two sides)
    # ------------------------------------------------------------------

    def export_component(
        self, event_gids: list[int]
    ) -> tuple[list[dict], list[dict], list[list[int]]]:
        """Snapshot the moving events, their seated users, and the seats.

        Everything is expressed in global ids -- the payload goes into
        the manifest's rebalance entry verbatim, so recovery can redo
        the migration without consulting this (possibly lost) process.
        Users move with the component only when *all* their seats are on
        moving events and they hold at least one; capacity they may have
        on other shards' user records is unaffected.
        """
        store = self.store
        moving = set(event_gids)
        events: list[dict] = []
        for gid in sorted(moving):
            local = self.local_event(gid)
            events.append(
                {
                    "gid": gid,
                    "capacity": store.event_capacity(local),
                    "attributes": list(store.event_attributes(local)),
                    "frozen": store.is_frozen(local),
                    "cancelled": store.is_cancelled(local),
                    "conflicts": sorted(
                        self.events_g[other]
                        for other in store.event_conflicts(local)
                        if self.events_g[other] in moving
                    ),
                }
            )
        mover_users: set[int] = set()
        for gid in sorted(moving):
            for local_user in store.users_of(self.local_event(gid)):
                user_gid = self.users_g[local_user]
                seats = store.events_of(local_user)
                if all(self.events_g[e] in moving for e in seats):
                    mover_users.add(user_gid)
        users = [
            {
                "gid": gid,
                "capacity": store.user_capacity(self.local_user(gid)),
                "attributes": list(store.user_attributes(self.local_user(gid))),
            }
            for gid in sorted(mover_users)
        ]
        assignments = [
            [self.events_g[e], self.users_g[u]]
            for e, u in store.pairs()
            if self.events_g[e] in moving and self.users_g[u] in mover_users
        ]
        return events, users, sorted(assignments)

    def import_component(
        self,
        events: list[dict],
        users: list[dict],
        assignments: list[list[int]],
    ) -> None:
        """Target side of a migration: recreate state from the payload.

        Order matters and is re-runnable by recovery: events are posted
        open (conflicts bind to already-posted movers only, symmetry
        fills the rest), users registered, seats committed as one
        ``commit_batch`` delta, and only then are lifecycle flags
        (freeze/cancel) replayed -- a cancelled event never held seats,
        a frozen one gets its seats before freezing.
        """
        posted: set[int] = set()
        for entry in events:
            gid = int(entry["gid"])
            self.post_event(
                gid,
                int(entry["capacity"]),
                [float(x) for x in entry["attributes"]],
                [g for g in entry["conflicts"] if g in posted],
            )
            posted.add(gid)
        for entry in users:
            self.register_user(
                int(entry["gid"]),
                int(entry["capacity"]),
                [float(x) for x in entry["attributes"]],
            )
        delta = Delta(
            assigns=tuple(
                sorted(
                    (self.local_event(e), self.local_user(u))
                    for e, u in assignments
                )
            )
        )
        self.service.commit_delta(
            delta, users=[self.local_user(u) for _, u in assignments]
        )
        for entry in events:
            if entry["frozen"]:
                self.freeze_event(int(entry["gid"]))
            elif entry["cancelled"]:
                self.cancel_event(int(entry["gid"]))

    def retire_component(self, event_gids: list[int], user_gids: list[int]) -> None:
        """Source side of a migration: tombstone everything that moved.

        Events retire first (releasing every seat, including frozen
        ones) so the mover users are seatless by the time they retire.
        A mover that was already cancelled needs no retire command --
        it holds no seats and the store refuses to retire it twice.
        """
        for gid in sorted(event_gids):
            local = self.local_event(gid)
            if not self.store.is_cancelled(local):
                self.service.retire_event(local)
            self.unbind_event(gid)
        for gid in sorted(user_gids):
            self.service.retire_user(self.local_user(gid))
            self.unbind_user(gid)
        self.dirty = True
        self.service.engine.mark_dirty()

    # ------------------------------------------------------------------
    # Health / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Per-shard topology entry for ``GET /state``."""
        summary = self.service.state_summary()
        return {
            "shard": self.shard_id,
            "seq": summary["seq"],
            "n_events": summary["n_events"],
            "n_users": summary["n_users"],
            "n_assignments": summary["n_assignments"],
            "open_events": summary["open_events"],
            "requests_seen": summary["requests_seen"],
            "batches_committed": summary["batches_committed"],
            "max_sum": summary["max_sum"],
            "retired_events": self.retired_events,
            "retired_users": self.retired_users,
            "pending": summary["pending"],
            "journal_bytes": summary["journal_bytes"],
            "journal_base_seq": summary["journal_base_seq"],
            "snapshots": summary["snapshots"],
            "last_recovery": summary["last_recovery"],
            "digest": summary["digest"],
        }

    def check_invariants(self) -> None:
        self.service.check_invariants()
        live_events = sorted(self._local_event.values())
        if len(live_events) + self.retired_events != self.store.n_events:
            raise ServiceError(
                f"shard {self.shard_id}: event map drift "
                f"({len(live_events)} live + {self.retired_events} retired != "
                f"{self.store.n_events})"
            )
        live_users = sorted(self._local_user.values())
        if len(live_users) + self.retired_users != self.store.n_users:
            raise ServiceError(f"shard {self.shard_id}: user map drift")
        for gid, local in self._local_event.items():
            if self.events_g[local] != gid:
                raise ServiceError(
                    f"shard {self.shard_id}: event map inversion broken at {gid}"
                )
        for gid, local in self._local_user.items():
            if self.users_g[local] != gid:
                raise ServiceError(
                    f"shard {self.shard_id}: user map inversion broken at {gid}"
                )

    def close(self) -> None:
        self.service.close()

    def __repr__(self) -> str:
        return f"ShardManager(shard={self.shard_id}, {self.store!r})"
