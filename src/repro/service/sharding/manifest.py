"""The shard manifest: the coordinator's own write-ahead log.

Shard journals are deliberately self-contained -- each one replays to
its shard's state with *local* entity ids and knows nothing about the
other shards. What they cannot answer is the routing question: which
global id lives on which shard, and in what local slot. The manifest is
the coordinator's durable answer: an fsync'd JSONL file (same
discipline as :mod:`repro.service.journal`, through the same
:class:`~repro.service.journal.FileSystem` seam so ``FaultFS`` can
crash it at any instruction) holding one entry per globally-visible
placement decision:

* ``{"n": k, "kind": "event", "gid": g, "shard": s}`` -- global event
  ``g`` was placed on shard ``s`` (local id = its per-shard arrival
  order);
* ``{"n": k, "kind": "user", "gid": g, "shard": s}`` -- likewise for a
  user;
* ``{"n": k, "kind": "rebalance", ...}`` -- a component merge moved
  state between shards; the entry carries the **full redo payload**
  (moved events/users with attributes, conflicts as global ids, the
  standing assignments, and the target shard's pre-migration entity
  counts) so recovery can finish a half-applied migration
  deterministically.

Write-ahead ordering: the manifest entry is durable *before* the
corresponding shard-journal append. The coordinator serialises
placement mutations, so after a crash at most the trailing manifest
entries are unacknowledged -- recovery reconciles entry counts against
each shard's actual state and drops the overhang
(:meth:`ShardManifest.load` + the coordinator's recovery walk).

A torn final line is truncated exactly as the journal does it; a
mid-file gap or foreign header raises
:class:`~repro.exceptions.JournalError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO

from repro.exceptions import JournalError
from repro.service.journal import REAL_FS, FileSystem
from repro.service.snapshot import atomic_write_bytes
from repro.service.store import StoreConfig

#: Manifest format tag (header ``format`` field).
MANIFEST_FORMAT = "geacc-shard-manifest-v1"

#: Entry kinds a manifest line may carry.
ENTRY_KINDS = frozenset({"event", "user", "rebalance"})


def _encode(payload: dict) -> bytes:
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _header_bytes(config: StoreConfig, shards: int) -> bytes:
    return _encode(
        {"format": MANIFEST_FORMAT, "shards": shards, "config": config.to_json()}
    )


class ShardManifest:
    """Append-only fsync'd placement log for one shard fleet."""

    def __init__(
        self,
        path: Path,
        config: StoreConfig,
        shards: int,
        n: int,
        handle: IO[bytes],
        *,
        fs: FileSystem = REAL_FS,
        size_bytes: int = 0,
    ) -> None:
        self.path = path
        self.config = config
        self.shards = shards
        self.n = n
        self.size_bytes = size_bytes
        self._fs = fs
        self._handle: IO[bytes] | None = handle

    @property
    def fs(self) -> FileSystem:
        return self._fs

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        config: StoreConfig,
        shards: int,
        *,
        fs: FileSystem = REAL_FS,
    ) -> "ShardManifest":
        """Start a fresh manifest; refuses to overwrite an existing one."""
        path = Path(path)
        if shards < 1:
            raise JournalError(f"shards must be >= 1, got {shards}")
        if fs.exists(path):
            raise JournalError(f"{path}: manifest already exists (use load)")
        blob = _header_bytes(config, shards)
        handle = fs.open(path, "xb")
        handle.write(blob)
        handle.flush()
        fs.fsync(handle)
        fs.fsync_dir(path.parent)
        return cls(path, config, shards, n=0, handle=handle, fs=fs, size_bytes=len(blob))

    @classmethod
    def load(
        cls, path: str | Path, *, fs: FileSystem = REAL_FS
    ) -> tuple["ShardManifest", list[dict]]:
        """Re-open an existing manifest, truncating any torn tail.

        Returns the manifest (positioned for append) plus every durable
        entry in order. Validation mirrors the journal: contiguous ``n``
        starting at 1, known entry kinds, decodable JSON everywhere but
        the final line.
        """
        path = Path(path)
        try:
            blob = fs.read_bytes(path)
        except OSError as exc:
            raise JournalError(f"{path}: cannot read manifest: {exc}") from exc
        newline = blob.find(b"\n")
        if newline < 0:
            raise JournalError(f"{path}: manifest has no durable header")
        try:
            header = json.loads(blob[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JournalError(f"{path}: undecodable manifest header") from exc
        if not isinstance(header, dict) or header.get("format") != MANIFEST_FORMAT:
            raise JournalError(
                f"{path}: not a {MANIFEST_FORMAT} manifest: {header!r}"
            )
        config = StoreConfig.from_json(header.get("config", {}))
        shards = header.get("shards")
        if not isinstance(shards, int) or shards < 1:
            raise JournalError(f"{path}: malformed shard count {shards!r}")

        entries: list[dict] = []
        offset = newline + 1
        durable_bytes = offset
        while offset < len(blob):
            line_end = blob.find(b"\n", offset)
            if line_end < 0:
                break  # torn trailing write: never acknowledged
            line = blob[offset:line_end]
            offset = line_end + 1
            try:
                entry = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                if offset >= len(blob):
                    break  # torn final line (crash split the write)
                raise JournalError(
                    f"{path}: undecodable manifest entry mid-file"
                ) from exc
            if (
                not isinstance(entry, dict)
                or entry.get("n") != len(entries) + 1
                or entry.get("kind") not in ENTRY_KINDS
            ):
                raise JournalError(f"{path}: malformed manifest entry {entry!r}")
            entries.append(entry)
            durable_bytes = offset
        handle = fs.open(path, "r+b")
        handle.truncate(durable_bytes)
        handle.seek(0, os.SEEK_END)
        manifest = cls(
            path,
            config,
            shards,
            n=len(entries),
            handle=handle,
            fs=fs,
            size_bytes=durable_bytes,
        )
        return manifest, entries

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------

    def append(self, kind: str, payload: dict) -> dict:
        """Durably record one placement entry; returns it with ``n`` set."""
        if self._handle is None:
            raise JournalError(f"{self.path}: manifest is closed")
        if kind not in ENTRY_KINDS:
            raise JournalError(f"unknown manifest entry kind {kind!r}")
        entry = {"n": self.n + 1, "kind": kind, **payload}
        blob = _encode(entry)
        self._handle.write(blob)
        self._handle.flush()
        self._fs.fsync(self._handle)
        self.n += 1
        self.size_bytes += len(blob)
        return entry

    def rewrite(self, entries: list[dict]) -> None:
        """Atomically replace the manifest body with ``entries``.

        Recovery's reconciliation step: after dropping unacknowledged
        trailing entries the on-disk file is rewritten (renumbered from
        1) via the tmp + fsync + rename + dir-fsync helper, then
        re-opened for append. A crash mid-rewrite leaves either the old
        or the new manifest, never a mix.
        """
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        blob = _header_bytes(self.config, self.shards)
        renumbered = []
        for index, entry in enumerate(entries):
            renumbered.append({**entry, "n": index + 1})
        body = b"".join(_encode(entry) for entry in renumbered)
        atomic_write_bytes(self.path, blob + body, fs=self._fs)
        handle = self._fs.open(self.path, "r+b")
        handle.seek(0, os.SEEK_END)
        self._handle = handle
        self.n = len(renumbered)
        self.size_bytes = len(blob) + len(body)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ShardManifest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardManifest({self.path}, shards={self.shards}, n={self.n})"
        )
