"""`repro.service.sharding`: conflict-graph-structured service sharding.

Partitions the online service by connected components of the conflict
graph (``docs/service.md``, "Sharding"). Four pieces:

* :class:`~repro.service.sharding.partitioner.ConflictPartitioner` --
  incremental union-find over conflict edges; detects the component
  merges that force cross-shard migrations;
* :class:`~repro.service.sharding.manager.ShardManager` -- one full
  store + journal + snapshot-dir + engine stack per shard, plus the
  global<->local id maps;
* :class:`~repro.service.sharding.manifest.ShardManifest` -- the
  coordinator's fsync'd placement log (written ahead of every shard
  journal append);
* :class:`~repro.service.sharding.coordinator.ShardCoordinator` -- the
  thin routing layer that duck-types
  :class:`~repro.service.frontend.ArrangementService` for the HTTP
  front-end and the load generator, serialises the rare cross-shard
  rebalance, and recovers each shard independently.

:mod:`~repro.service.sharding.workload` generates the clustered,
partition-respecting universes the scaling benchmarks and equivalence
tests drive.

This package is the *only* sanctioned doorway into a shard's internals:
lint rule R16 flags any outside code reaching through a coordinator or
manager into per-shard stores, journals or engines.
"""

from repro.service.sharding.coordinator import (
    MANIFEST_NAME,
    ShardCoordinator,
    ShardedCompactionStats,
)
from repro.service.sharding.manager import ShardManager
from repro.service.sharding.manifest import MANIFEST_FORMAT, ShardManifest
from repro.service.sharding.partitioner import ConflictPartitioner
from repro.service.sharding.workload import shardable_instance, shardable_timeline

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "ConflictPartitioner",
    "ShardCoordinator",
    "ShardManager",
    "ShardManifest",
    "ShardedCompactionStats",
    "shardable_instance",
    "shardable_timeline",
]
