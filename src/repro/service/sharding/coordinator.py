"""The shard coordinator: global routing over per-shard service stacks.

:class:`ShardCoordinator` is the sharded counterpart of
:class:`~repro.service.frontend.ArrangementService` and duck-types its
public surface (``post_event`` / ``register_user`` /
``request_assignment`` / ``freeze_event`` / ``cancel_event`` /
``compact`` / ``state_summary`` / ``seq`` / ``assignments_of``), so the
HTTP layer and the load generator can front either one transparently.

Placement follows the conflict graph: every connected component of
conflict edges lives wholly on one shard
(:class:`~repro.service.sharding.partitioner.ConflictPartitioner`
tracks components incrementally), which keeps per-shard solving *exact*
-- events in different components never constrain each other.
Conflict-free events go to the least-loaded shard; users go to the
shard whose live events best match their attributes (highest
similarity), since that is where their assignment mass lies.

Placement mutations are globally serialised through one coordinator
lock and follow a two-level write-ahead discipline: validate against
the target shard, append the placement entry to the
:class:`~repro.service.sharding.manifest.ShardManifest` (fsync), then
issue the shard command (which journals again, locally). A crash
between the two leaves exactly one trailing manifest entry with no
shard-side effect; recovery reconciles and drops it.

The rare cross-shard mutation is a **component merge**: a new event
whose conflict set spans components on different shards. The
coordinator rebalances first -- drain the involved shards, write one
manifest ``rebalance`` entry carrying the full redo payload, migrate
(import on the target, tombstone on the sources), resume -- and only
then admits the merging event, now against a single shard.

Each shard recovers through its own snapshot+tail ladder
(:meth:`~repro.service.sharding.manager.ShardManager.recover`), so a
corrupt shard degrades alone; the coordinator then replays the manifest
to rebuild routing and finish any half-applied rebalance.
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import ExitStack
from pathlib import Path

from repro.exceptions import JournalError, ServiceError
from repro.parallel.maplib import thread_map
from repro.parallel.shardsolve import solve_shard_batch
from repro.service.engine import (
    DEFAULT_BATCH_MS,
    DEFAULT_LADDER,
    DEFAULT_MAX_PENDING,
    DEFAULT_SOLVE_TIMEOUT,
    PendingRequest,
)
from repro.service.frontend import DEFAULT_REQUEST_WAIT
from repro.service.journal import REAL_FS, FileSystem
from repro.service.sharding.manager import ShardManager
from repro.service.sharding.manifest import ShardManifest
from repro.service.sharding.partitioner import ConflictPartitioner
from repro.service.snapshot import DEFAULT_RETAIN, CompactionStats
from repro.service.store import Delta, StoreConfig

#: The manifest's file name under the shard root directory.
MANIFEST_NAME = "manifest.jsonl"


class ShardedCompactionStats:
    """``POST /compact`` reply for a sharded deployment (one per shard)."""

    def __init__(self, per_shard: list[CompactionStats]) -> None:
        self.per_shard = per_shard

    def to_json(self) -> dict:
        return {"shards": [stats.to_json() for stats in self.per_shard]}


class ShardCoordinator:
    """Routes a global id space onto per-shard service stacks.

    Build with :meth:`create` (fresh shard root), :meth:`recover`
    (existing root -> reconstructed routing), or :meth:`open` (either).
    ``threaded=False`` drives every shard synchronously from the caller
    (deterministic replay and tests); ``shared_solve`` routes shard
    batches through :func:`~repro.parallel.shardsolve.solve_shard_batch`
    (default: enabled exactly when threaded, so concurrent engine
    threads solve zero-copy and the synchronous path stays allocation
    free).
    """

    def __init__(
        self,
        root: Path,
        manifest: ShardManifest,
        managers: list[ShardManager],
        *,
        threaded: bool = True,
    ) -> None:
        self.root = root
        self.manifest = manifest
        self.managers = managers
        self.partitioner = ConflictPartitioner()
        #: Global id -> owning shard (dense; rebalance rewrites in place).
        self._event_shard: list[int] = []
        self._user_shard: list[int] = []
        self.rebalances = 0
        self.last_rebalance: dict | None = None
        self._threaded = threaded
        self._lock = threading.RLock()
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def _service_kwargs(
        *,
        threaded: bool,
        batch_ms: float,
        solve_timeout: float,
        max_pending: int,
        ladder: tuple[str, ...],
        retain: int,
        compact_bytes: int | None,
        shared_solve: bool | None,
    ) -> dict:
        if shared_solve is None:
            shared_solve = threaded
        return {
            "threaded": threaded,
            "batch_ms": batch_ms,
            "solve_timeout": solve_timeout,
            "max_pending": max_pending,
            "ladder": ladder,
            "retain": retain,
            "compact_bytes": compact_bytes,
            "batch_solver": solve_shard_batch if shared_solve else None,
        }

    @classmethod
    def create(
        cls,
        root: str | Path,
        config: StoreConfig,
        shards: int,
        *,
        fs: FileSystem = REAL_FS,
        threaded: bool = True,
        batch_ms: float = DEFAULT_BATCH_MS,
        solve_timeout: float = DEFAULT_SOLVE_TIMEOUT,
        max_pending: int = DEFAULT_MAX_PENDING,
        ladder: tuple[str, ...] = DEFAULT_LADDER,
        retain: int = DEFAULT_RETAIN,
        compact_bytes: int | None = None,
        shared_solve: bool | None = None,
    ) -> "ShardCoordinator":
        """Create a fresh shard fleet under ``root``."""
        root = Path(root)
        if not fs.exists(root):
            fs.mkdir(root)
        manifest = ShardManifest.create(root / MANIFEST_NAME, config, shards, fs=fs)
        kwargs = cls._service_kwargs(
            threaded=threaded,
            batch_ms=batch_ms,
            solve_timeout=solve_timeout,
            max_pending=max_pending,
            ladder=ladder,
            retain=retain,
            compact_bytes=compact_bytes,
            shared_solve=shared_solve,
        )
        managers = [
            ShardManager.create(root, shard, config, fs=fs, **kwargs)
            for shard in range(shards)
        ]
        return cls(root, manifest, managers, threaded=threaded)

    @classmethod
    def recover(
        cls,
        root: str | Path,
        *,
        fs: FileSystem = REAL_FS,
        threaded: bool = True,
        batch_ms: float = DEFAULT_BATCH_MS,
        solve_timeout: float = DEFAULT_SOLVE_TIMEOUT,
        max_pending: int = DEFAULT_MAX_PENDING,
        ladder: tuple[str, ...] = DEFAULT_LADDER,
        retain: int = DEFAULT_RETAIN,
        compact_bytes: int | None = None,
        shared_solve: bool | None = None,
    ) -> "ShardCoordinator":
        """Restart a shard fleet from its root directory.

        Every shard recovers through its own snapshot+tail ladder
        (concurrently, via :func:`~repro.parallel.maplib.thread_map`,
        when running on the real filesystem -- fault-injecting
        filesystems get a deterministic serial walk). The manifest is
        then replayed to rebuild the id maps and the partitioner, redo
        any half-applied rebalance, and drop unacknowledged trailing
        entries.
        """
        root = Path(root)
        manifest, entries = ShardManifest.load(root / MANIFEST_NAME, fs=fs)
        config = manifest.config
        kwargs = cls._service_kwargs(
            threaded=threaded,
            batch_ms=batch_ms,
            solve_timeout=solve_timeout,
            max_pending=max_pending,
            ladder=ladder,
            retain=retain,
            compact_bytes=compact_bytes,
            shared_solve=shared_solve,
        )

        def recover_one(shard: int) -> ShardManager:
            return ShardManager.recover(root, shard, config, fs=fs, **kwargs)

        if fs is REAL_FS and manifest.shards > 1:
            managers = thread_map(recover_one, range(manifest.shards))
        else:
            managers = [recover_one(shard) for shard in range(manifest.shards)]
        coordinator = cls(root, manifest, managers, threaded=threaded)
        coordinator._replay_manifest(entries)
        return coordinator

    @classmethod
    def open(
        cls,
        root: str | Path,
        config: StoreConfig | None = None,
        shards: int | None = None,
        *,
        fs: FileSystem = REAL_FS,
        **kwargs: object,
    ) -> "ShardCoordinator":
        """Recover when a manifest exists, otherwise create fresh."""
        root = Path(root)
        if fs.exists(root / MANIFEST_NAME):
            return cls.recover(root, fs=fs, **kwargs)  # type: ignore[arg-type]
        if config is None or shards is None:
            raise ServiceError(
                f"{root / MANIFEST_NAME} does not exist and no config/shard "
                "count was given"
            )
        return cls.create(root, config, shards, fs=fs, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Manifest replay (recovery)
    # ------------------------------------------------------------------

    def _replay_manifest(self, entries: list[dict]) -> None:
        """Rebuild routing from the manifest, reconciling against shards.

        Placement entries re-bind global<->local ids in arrival order;
        an entry whose shard journal never saw the command is the
        write-ahead overhang -- legal only at the very tail (mutations
        are globally serialised), where it is dropped and the manifest
        rewritten. Rebalance entries are *redone* idempotently from
        their payload, finishing any migration the crash interrupted.
        """
        managers = self.managers
        expected_events = [0] * len(managers)
        expected_users = [0] * len(managers)
        kept: list[dict] = []
        dropped = 0
        for index, entry in enumerate(entries):
            last = index == len(entries) - 1
            kind = entry["kind"]
            if kind == "rebalance":
                self._redo_rebalance(entry, expected_events, expected_users)
                kept.append(entry)
                self.rebalances += 1
                self.last_rebalance = self._rebalance_summary(entry)
                continue
            gid = int(entry["gid"])
            shard = int(entry["shard"])
            if not 0 <= shard < len(managers):
                raise JournalError(
                    f"manifest routes {kind} {gid} to unknown shard {shard}"
                )
            manager = managers[shard]
            if kind == "event":
                if gid != len(self._event_shard):
                    raise JournalError(
                        f"manifest event gids out of order at {gid}"
                    )
                local = expected_events[shard]
                if local >= manager.store.n_events:
                    # The crash hit between the manifest append and the
                    # shard-journal append: the command never took
                    # effect and was never acknowledged.
                    if not last:
                        raise JournalError(
                            f"manifest entry {entry['n']} has no shard-side "
                            "effect but is not the trailing entry"
                        )
                    dropped += 1
                    continue
                manager.bind_event(gid, local)
                expected_events[shard] += 1
                self._event_shard.append(shard)
                self.partitioner.add_event(gid)
            else:
                if gid != len(self._user_shard):
                    raise JournalError(
                        f"manifest user gids out of order at {gid}"
                    )
                local = expected_users[shard]
                if local >= manager.store.n_users:
                    if not last:
                        raise JournalError(
                            f"manifest entry {entry['n']} has no shard-side "
                            "effect but is not the trailing entry"
                        )
                    dropped += 1
                    continue
                manager.bind_user(gid, local)
                expected_users[shard] += 1
                self._user_shard.append(shard)
            kept.append(entry)
        for shard, manager in enumerate(managers):
            if (
                expected_events[shard] != manager.store.n_events
                or expected_users[shard] != manager.store.n_users
            ):
                raise JournalError(
                    f"shard {shard} journal disagrees with the manifest "
                    f"(expected {expected_events[shard]} events / "
                    f"{expected_users[shard]} users, shard has "
                    f"{manager.store.n_events} / {manager.store.n_users})"
                )
        if dropped:
            self.manifest.rewrite(kept)
        # Conflict edges are not in the manifest; rebuild them from the
        # live shard stores (every edge is intra-shard by construction).
        for manager in managers:
            for gid in manager.live_events():
                local = manager.local_event(gid)
                self.partitioner.add_edges(
                    gid,
                    [
                        manager.events_g[other]
                        for other in manager.store.event_conflicts(local)
                    ],
                )

    def _redo_rebalance(
        self,
        entry: dict,
        expected_events: list[int],
        expected_users: list[int],
    ) -> None:
        """Idempotently finish the migration a rebalance entry records.

        Every step checks whether its effect already exists (the shard
        journals survived the crash) before re-issuing the command, so
        a migration interrupted at *any* point -- after the manifest
        append, mid-import, mid-retire -- converges to the same state.
        """
        target_id = int(entry["target"])
        target = self.managers[target_id]
        if (
            int(entry["target_events_before"]) != expected_events[target_id]
            or int(entry["target_users_before"]) != expected_users[target_id]
        ):
            raise JournalError(
                f"rebalance entry {entry.get('n')} disagrees with shard "
                f"{target_id}'s placement history"
            )
        for move in entry["moves"]:
            source = self.managers[int(move["shard"])]
            posted: set[int] = set()
            for spec in move["events"]:
                gid = int(spec["gid"])
                if not 0 <= gid < len(self._event_shard):
                    raise JournalError(
                        f"rebalance entry {entry.get('n')} moves unplaced "
                        f"event {gid}"
                    )
                local = expected_events[target_id]
                if local < target.store.n_events:
                    target.bind_event(gid, local)
                else:
                    target.post_event(
                        gid,
                        int(spec["capacity"]),
                        [float(x) for x in spec["attributes"]],
                        [int(g) for g in spec["conflicts"] if int(g) in posted],
                    )
                posted.add(gid)
                self._event_shard[gid] = target_id
                expected_events[target_id] += 1
            for spec in move["users"]:
                gid = int(spec["gid"])
                if not 0 <= gid < len(self._user_shard):
                    raise JournalError(
                        f"rebalance entry {entry.get('n')} moves unplaced "
                        f"user {gid}"
                    )
                local = expected_users[target_id]
                if local < target.store.n_users:
                    target.bind_user(gid, local)
                else:
                    target.register_user(
                        gid,
                        int(spec["capacity"]),
                        [float(x) for x in spec["attributes"]],
                    )
                self._user_shard[gid] = target_id
                expected_users[target_id] += 1
            pairs = [(int(e), int(u)) for e, u in move["assignments"]]
            if pairs:
                probe_event = target.local_event(pairs[0][0])
                probe_user = target.local_user(pairs[0][1])
                if probe_user not in target.store.users_of(probe_event):
                    delta = Delta(
                        assigns=tuple(
                            sorted(
                                (target.local_event(e), target.local_user(u))
                                for e, u in pairs
                            )
                        )
                    )
                    target.service.commit_delta(
                        delta, users=[target.local_user(u) for _, u in pairs]
                    )
            for spec in move["events"]:
                local = target.local_event(int(spec["gid"]))
                if spec["frozen"] and not target.store.is_frozen(local):
                    target.service.freeze_event(local)
                elif spec["cancelled"] and not target.store.is_cancelled(local):
                    target.service.cancel_event(local)
            for spec in move["events"]:
                gid = int(spec["gid"])
                if source.owns_event(gid):
                    local = source.local_event(gid)
                    if not source.store.is_cancelled(local):
                        source.service.retire_event(local)
                    source.unbind_event(gid)
            for spec in move["users"]:
                gid = int(spec["gid"])
                if source.owns_user(gid):
                    local = source.local_user(gid)
                    if source.store.user_capacity(local) != 0:
                        source.service.retire_user(local)
                    source.unbind_user(gid)

    @staticmethod
    def _rebalance_summary(entry: dict) -> dict:
        return {
            "target": int(entry["target"]),
            "from_shards": sorted({int(m["shard"]) for m in entry["moves"]}),
            "moved_events": sum(len(m["events"]) for m in entry["moves"]),
            "moved_users": sum(len(m["users"]) for m in entry["moves"]),
            "manifest_n": entry.get("n"),
        }

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("coordinator is closed")

    def _shard_of_event(self, event: int) -> int:
        if not 0 <= event < len(self._event_shard):
            raise ServiceError(f"unknown event {event!r}")
        return self._event_shard[event]

    def _shard_of_user(self, user: int) -> int:
        if not 0 <= user < len(self._user_shard):
            raise ServiceError(f"unknown user {user!r}")
        return self._user_shard[user]

    # ------------------------------------------------------------------
    # Commands (the ArrangementService duck-type surface)
    # ------------------------------------------------------------------

    def post_event(
        self,
        capacity: int,
        attributes: list[float],
        conflicts: list[int] | None = None,
    ) -> int:
        """Post a new event; returns its global id.

        Routing: the component its conflict set belongs to (rebalancing
        first when the set spans shards), or the least-loaded shard for
        a conflict-free event.
        """
        with self._lock:
            self._check_open()
            conflict_gids = sorted(set(conflicts or []))
            for g in conflict_gids:
                if not 0 <= g < len(self._event_shard):
                    raise ServiceError(f"unknown conflict event {g!r}")
            if conflict_gids:
                components = self.partitioner.merge_targets(conflict_gids)
                shards = sorted(
                    {self._event_shard[comp] for comp in components}
                )
                if len(shards) > 1:
                    target = self._rebalance(components)
                else:
                    target = shards[0]
            else:
                target = min(
                    range(len(self.managers)),
                    key=lambda s: (self.managers[s].n_live_events, s),
                )
            manager = self.managers[target]
            gid = len(self._event_shard)
            manager.validate_post_event(capacity, list(attributes), conflict_gids)
            self.manifest.append("event", {"gid": gid, "shard": target})
            manager.post_event(gid, capacity, list(attributes), conflict_gids)
            self._event_shard.append(target)
            self.partitioner.add_event(gid)
            self.partitioner.add_edges(gid, conflict_gids)
            return gid

    def register_user(self, capacity: int, attributes: list[float]) -> int:
        """Register a new user; returns their global id.

        Routing: the shard whose live events are most similar to the
        user's attributes (that is where assignment mass can come
        from); ties break toward the lighter, lower-numbered shard.
        """
        with self._lock:
            self._check_open()
            self.managers[0].validate_register_user(capacity, list(attributes))
            attrs = tuple(float(x) for x in attributes)
            scores = [m.best_similarity(attrs) for m in self.managers]
            best = max(scores)
            target = min(
                (s for s, score in enumerate(scores) if score == best),
                key=lambda s: (self.managers[s].n_live_users, s),
            )
            gid = len(self._user_shard)
            self.manifest.append("user", {"gid": gid, "shard": target})
            self.managers[target].register_user(gid, capacity, list(attributes))
            self._user_shard.append(target)
            return gid

    def request_assignment(
        self,
        user: int,
        *,
        wait: bool = True,
        timeout: float = DEFAULT_REQUEST_WAIT,
    ) -> tuple[int, ...] | PendingRequest:
        """Ask the owning shard's engine to (re)arrange ``user``.

        In synchronous mode the caller's thread first re-solves any
        *other* shard a mutation left stale (the unsharded engine would
        have re-solved those components in the same batch), then drives
        the owning shard's batch. Returns the user's standing events as
        global ids (``wait=True``) or the shard-local
        :class:`~repro.service.engine.PendingRequest` (``wait=False``).
        """
        with self._lock:
            self._check_open()
            manager = self.managers[self._shard_of_user(user)]
            request = manager.request_assignment(user)
            stale = (
                []
                if self._threaded
                else [m for m in self.managers if m is not manager and m.dirty]
            )
        if not self._threaded:
            for other in stale:
                other.resolve_if_dirty()
            manager.service.run_pending_batch()
        if not wait:
            return request
        request.wait(timeout)
        with self._lock:
            return manager.events_of(user)

    def freeze_event(self, event: int) -> None:
        with self._lock:
            self._check_open()
            self.managers[self._shard_of_event(event)].freeze_event(event)

    def cancel_event(self, event: int) -> None:
        with self._lock:
            self._check_open()
            self.managers[self._shard_of_event(event)].cancel_event(event)

    def run_pending_batch(self) -> int:
        """Drive one batch on every shard synchronously (tests, replay)."""
        total = 0
        for manager in self.managers:
            manager.dirty = False
            total += manager.service.run_pending_batch()
        return total

    # ------------------------------------------------------------------
    # Rebalancing (the one cross-shard mutation)
    # ------------------------------------------------------------------

    def _rebalance(self, components: list[int]) -> int:
        """Co-locate ``components`` onto one shard; returns that shard.

        Protocol (under the coordinator lock): pick the involved shard
        already holding the most moving events as the target, drain the
        involved shards, take their state locks, write one manifest
        ``rebalance`` entry carrying the complete redo payload, then
        migrate -- import on the target, tombstone on each source. A
        crash anywhere in the tail is finished by
        :meth:`_redo_rebalance` on recovery.
        """
        managers = self.managers
        members = self.partitioner.components()
        involved: dict[int, int] = {}
        for comp in components:
            shard = self._event_shard[comp]
            involved[shard] = involved.get(shard, 0) + len(members[comp])
        target = max(sorted(involved), key=lambda s: involved[s])
        for shard in sorted(involved):
            managers[shard].service.run_pending_batch()
        with ExitStack() as stack:
            for shard in sorted(involved):
                stack.enter_context(managers[shard].service._lock)
            target_manager = managers[target]
            moves = []
            for comp in sorted(components):
                source_id = self._event_shard[comp]
                if source_id == target:
                    continue
                events, users, assignments = managers[
                    source_id
                ].export_component(members[comp])
                moves.append(
                    {
                        "shard": source_id,
                        "events": events,
                        "users": users,
                        "assignments": assignments,
                    }
                )
            entry = self.manifest.append(
                "rebalance",
                {
                    "target": target,
                    "target_events_before": len(target_manager.events_g),
                    "target_users_before": len(target_manager.users_g),
                    "moves": moves,
                },
            )
            for move in moves:
                source = managers[move["shard"]]
                target_manager.import_component(
                    move["events"], move["users"], move["assignments"]
                )
                for spec in move["events"]:
                    self._event_shard[spec["gid"]] = target
                for spec in move["users"]:
                    self._user_shard[spec["gid"]] = target
                source.retire_component(
                    [spec["gid"] for spec in move["events"]],
                    [spec["gid"] for spec in move["users"]],
                )
        self.rebalances += 1
        self.last_rebalance = self._rebalance_summary(entry)
        return target

    # ------------------------------------------------------------------
    # Snapshots & compaction
    # ------------------------------------------------------------------

    def compact(self) -> ShardedCompactionStats:
        """Snapshot + trim every shard (the ``POST /compact`` admin op)."""
        with self._lock:
            self._check_open()
            return ShardedCompactionStats(
                [manager.service.compact() for manager in self.managers]
            )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        """Total journal sequence across shards (duck-typed for HTTP)."""
        with self._lock:
            return sum(manager.service.seq for manager in self.managers)

    def assignments_of(self, user: int) -> tuple[int, ...]:
        with self._lock:
            return self.managers[self._shard_of_user(user)].events_of(user)

    def state_summary(self) -> dict:
        """The ``GET /state`` body, plus the ``sharding`` topology block."""
        with self._lock:
            shard_stats = [manager.stats() for manager in self.managers]
            sizes = self.partitioner.component_sizes()
            return {
                "seq": sum(s["seq"] for s in shard_stats),
                "n_events": len(self._event_shard),
                "n_users": len(self._user_shard),
                "n_assignments": sum(s["n_assignments"] for s in shard_stats),
                "open_events": sum(s["open_events"] for s in shard_stats),
                "requests_seen": sum(s["requests_seen"] for s in shard_stats),
                "batches_committed": sum(
                    s["batches_committed"] for s in shard_stats
                ),
                "pending": sum(s["pending"] for s in shard_stats),
                "max_sum": sum(s["max_sum"] for s in shard_stats),
                "digest": self.arrangement_digest(),
                "journal_bytes": sum(s["journal_bytes"] for s in shard_stats),
                "sharding": {
                    "shards": len(self.managers),
                    "components": len(sizes),
                    "component_sizes": sorted(sizes.values(), reverse=True),
                    "merges": self.partitioner.merges,
                    "rebalances": self.rebalances,
                    "last_rebalance": self.last_rebalance,
                    "manifest_entries": self.manifest.n,
                    "manifest_bytes": self.manifest.size_bytes,
                    "per_shard": shard_stats,
                },
            }

    def arrangement_state(self) -> dict:
        """The global arrangement in unsharded canonical shape.

        Rebuilds the exact dict
        :meth:`~repro.service.store.ArrangementStore.arrangement_state`
        would produce for one store holding the whole universe: entities
        in global-id order, conflicts and assignments translated back to
        global ids, journal counters omitted (they are per-journal
        bookkeeping, not observable arrangement). Equality of this dict
        across sharded and unsharded runs is the sharding equivalence
        contract.
        """
        with self._lock, ExitStack() as stack:
            for manager in self.managers:
                stack.enter_context(manager.service._lock)
            events = []
            event_remaining = []
            for gid, shard in enumerate(self._event_shard):
                manager = self.managers[shard]
                store = manager.store
                local = manager.local_event(gid)
                events.append(
                    {
                        "capacity": store.event_capacity(local),
                        "attributes": list(store.event_attributes(local)),
                        "frozen": store.is_frozen(local),
                        "cancelled": store.is_cancelled(local),
                        "conflicts": sorted(
                            manager.events_g[other]
                            for other in store.event_conflicts(local)
                        ),
                    }
                )
                event_remaining.append(store.event_remaining(local))
            users = []
            user_remaining = []
            for gid, shard in enumerate(self._user_shard):
                manager = self.managers[shard]
                local = manager.local_user(gid)
                users.append(
                    {
                        "capacity": manager.store.user_capacity(local),
                        "attributes": list(
                            manager.store.user_attributes(local)
                        ),
                    }
                )
                user_remaining.append(manager.store.user_remaining(local))
            assignments = sorted(
                (manager.events_g[e], manager.users_g[u])
                for manager in self.managers
                for e, u in manager.store.pairs()
            )
            return {
                "config": self.manifest.config.to_json(),
                "events": events,
                "users": users,
                "assignments": [[e, u] for e, u in assignments],
                "event_remaining": event_remaining,
                "user_remaining": user_remaining,
            }

    def arrangement_digest(self) -> str:
        """SHA-256 over :meth:`arrangement_state` (matches the store's)."""
        payload = json.dumps(
            self.arrangement_state(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def check_invariants(self) -> None:
        """Per-shard invariants plus the cross-shard routing contract."""
        with self._lock:
            for manager in self.managers:
                manager.check_invariants()
            for gid, shard in enumerate(self._event_shard):
                if not self.managers[shard].owns_event(gid):
                    raise ServiceError(
                        f"event {gid} routed to shard {shard} which does not "
                        "own it"
                    )
            for gid, shard in enumerate(self._user_shard):
                if not self.managers[shard].owns_user(gid):
                    raise ServiceError(
                        f"user {gid} routed to shard {shard} which does not "
                        "own it"
                    )
            for shard, manager in enumerate(self.managers):
                for gid in manager.live_events():
                    if self._event_shard[gid] != shard:
                        raise ServiceError(
                            f"event {gid} lives on shard {shard} but routes "
                            f"to {self._event_shard[gid]}"
                        )
                for gid in manager.live_users():
                    if self._user_shard[gid] != shard:
                        raise ServiceError(
                            f"user {gid} lives on shard {shard} but routes "
                            f"to {self._user_shard[gid]}"
                        )
            for comp, member_gids in self.partitioner.components().items():
                owners = {self._event_shard[gid] for gid in member_gids}
                if len(owners) != 1:
                    raise ServiceError(
                        f"component {comp} spans shards {sorted(owners)}"
                    )
            if len(self.partitioner) != len(self._event_shard):
                raise ServiceError(
                    "partitioner tracks a different event universe than the "
                    "routing table"
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every shard (flushing final batches) and the manifest."""
        if self._closed:
            return
        for manager in self.managers:
            manager.close()
        with self._lock:
            self._closed = True
            self.manifest.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardCoordinator({self.root}, shards={len(self.managers)}, "
            f"events={len(self._event_shard)}, users={len(self._user_shard)})"
        )
