"""Incremental conflict-graph partitioning for the sharded service.

The routing brain of :mod:`repro.service.sharding`: events are keyed by
*global* id, conflict edges arrive one ``post_event`` at a time, and the
partitioner maintains the connected components of the conflict graph
incrementally (union-find over edges). Components are the unit of shard
placement -- two events in different components can never constrain each
other (Definition 3: no user may attend conflicting events, and
feasibility composes over components), so a shard owning whole
components solves exactly, not approximately.

The one cross-shard hazard is a *component merge*: a new event whose
conflict set spans components that live on different shards. The
partitioner detects this (:meth:`ConflictPartitioner.merge_targets`
before the edges are added) so the coordinator can run the rebalance
protocol first and only then admit the event.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.conflicts import DisjointSet
from repro.exceptions import ServiceError


class ConflictPartitioner:
    """Connected components of the global conflict graph, incrementally.

    Events are global ids (dense, append-only). Component ids are the
    smallest member id, so they are stable under edge insertion order
    and survive crash/rebuild round-trips bit-for-bit.
    """

    def __init__(self) -> None:
        self._components = DisjointSet()
        self.merges = 0

    def __len__(self) -> int:
        return len(self._components)

    def __contains__(self, event: int) -> bool:
        return event in self._components

    def add_event(self, event: int) -> None:
        """Register a new event as its own singleton component."""
        if event in self._components:
            raise ServiceError(f"event {event} is already partitioned")
        self._components.add(event)

    def component_of(self, event: int) -> int:
        """The component id (smallest member) owning ``event``."""
        if event not in self._components:
            raise ServiceError(f"event {event} is not partitioned")
        return self._components.find(event)

    def merge_targets(self, conflicts: Iterable[int]) -> list[int]:
        """Distinct component ids a conflict set touches, ascending.

        More than one entry means admitting an event with these
        conflicts *merges* components -- the coordinator must co-locate
        them (rebalance) before the event lands on any shard.
        """
        return sorted({self.component_of(event) for event in conflicts})

    def add_edges(self, event: int, conflicts: Iterable[int]) -> int:
        """Union ``event`` with its conflict partners.

        Returns the number of distinct components merged away (0 when
        every partner already shared ``event``'s component); the running
        total is kept in :attr:`merges` for the topology view.
        """
        merged = 0
        for other in conflicts:
            if other not in self._components:
                raise ServiceError(f"conflict partner {other} is not partitioned")
            if self._components.union(event, other):
                merged += 1
        self.merges += merged
        return merged

    def component_sizes(self) -> dict[int, int]:
        """Component id -> member count (the ``GET /state`` topology)."""
        return self._components.component_sizes()

    def components(self) -> dict[int, list[int]]:
        """Component id -> sorted member ids."""
        return self._components.members()
