"""Shardable synthetic workloads: clustered universes for scaling runs.

The sharding layer is only as good as the workloads that let it shine,
so this module generates instances whose conflict graph decomposes into
many small components with *strongly separated* attribute clusters: all
of component ``c``'s events and users sit within a tiny jitter of one
cluster centre, and centres are rejection-sampled to keep a guaranteed
minimum mutual distance. Consequences, by construction rather than by
luck:

* every in-cluster (event, user) similarity strictly dominates every
  cross-cluster one, so the coordinator's best-similarity routing sends
  each user to the shard owning its cluster, and greedy solving keeps
  every seat inside its cluster -- the workload is
  *partition-respecting*, which is what the sharded-vs-unsharded
  equivalence tests need;
* each cluster's events form one conflict-chain component, so shard
  placement spreads whole clusters round-robin and no rebalance ever
  fires;
* capacities are sized so greedy solving satiates every user in-cluster
  with nothing left over (events hold ``users_per_component`` seats,
  users hold exactly one): leftover user capacity is what spills into
  cross-cluster seats -- seats a shard-local solve cannot see -- so
  zero leftovers is what makes sharded and unsharded runs bit-equal.

:func:`shardable_timeline` orders the drive so all events are posted
before any user arrives (routing needs the cluster's events live to
score similarity) and freezes everything at the very end.
"""

from __future__ import annotations

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.simulation.workload import Timeline

#: Minimum centre-to-centre distance, as a fraction of ``t``.
_MIN_SEPARATION = 0.1

#: Attribute jitter radius around a cluster centre, as a fraction of
#: ``t``. Two orders of magnitude under the separation floor, so
#: in-cluster distances can never reach cross-cluster ones.
_JITTER = 0.001


def _cluster_centres(
    rng: np.random.Generator, count: int, dimension: int, t: float
) -> np.ndarray:
    """Sample ``count`` centres with a guaranteed mutual separation.

    Rejection-sampled: in ``dimension >= 2`` the typical distance of two
    uniform points dwarfs the ``0.1 t`` floor, so resampling is rare;
    the loop is deterministic given the generator state.
    """
    lo, hi = 0.1 * t, 0.9 * t
    centres: list[np.ndarray] = []
    floor = _MIN_SEPARATION * t
    while len(centres) < count:
        candidate = rng.uniform(lo, hi, size=dimension)
        if all(float(np.linalg.norm(candidate - c)) >= floor for c in centres):
            centres.append(candidate)
    return np.stack(centres)


def shardable_instance(
    n_components: int = 32,
    events_per_component: int = 3,
    users_per_component: int = 12,
    *,
    dimension: int = 8,
    t: float = 10_000.0,
    seed: int = 0,
) -> Instance:
    """A clustered GEACC instance that decomposes cleanly across shards.

    Events ``c * events_per_component .. (c+1) * events_per_component - 1``
    and users ``c * users_per_component ..`` belong to cluster ``c``:
    attributes jittered around the cluster centre, conflicts chaining the
    cluster's events into one component.
    """
    if n_components < 1 or events_per_component < 1 or users_per_component < 1:
        raise ValueError("component counts must all be >= 1")
    rng = np.random.default_rng(seed)
    centres = _cluster_centres(rng, n_components, dimension, t)
    jitter = _JITTER * t

    n_events = n_components * events_per_component
    n_users = n_components * users_per_component
    event_attrs = np.empty((n_events, dimension))
    user_attrs = np.empty((n_users, dimension))
    pairs: list[tuple[int, int]] = []
    for comp in range(n_components):
        e0 = comp * events_per_component
        u0 = comp * users_per_component
        event_attrs[e0 : e0 + events_per_component] = centres[comp] + rng.uniform(
            -jitter, jitter, size=(events_per_component, dimension)
        )
        user_attrs[u0 : u0 + users_per_component] = centres[comp] + rng.uniform(
            -jitter, jitter, size=(users_per_component, dimension)
        )
        pairs.extend(
            (e0 + i, e0 + i + 1) for i in range(events_per_component - 1)
        )
    event_capacities = np.full(n_events, users_per_component, dtype=np.int64)
    user_capacities = np.ones(n_users, dtype=np.int64)
    return Instance.from_attributes(
        event_attrs,
        user_attrs,
        event_capacities,
        user_capacities,
        ConflictGraph(n_events, pairs),
        t=t,
    )


def shardable_timeline(instance: Instance) -> Timeline:
    """Posts first, then arrivals, then a closing wall of freezes.

    Deterministic and strictly ordered so replay drives the same command
    sequence at any shard count: event ``k`` posts at ``k``, user ``k``
    arrives at ``n_events + k``, and every event freezes after the last
    arrival.
    """
    n_events = instance.n_events
    n_users = instance.n_users
    post_times = np.arange(n_events, dtype=np.float64)
    arrival_times = n_events + np.arange(n_users, dtype=np.float64)
    start_times = float(n_events + n_users) + np.arange(
        n_events, dtype=np.float64
    )
    return Timeline(
        post_times=post_times,
        start_times=start_times,
        arrival_times=arrival_times,
    )
