"""Command-line interface: ``geacc``.

Subcommands:

* ``geacc solve`` -- generate (or load) an instance and solve it with one
  or more algorithms, printing MaxSum / |M| / timing; optionally writes
  the best arrangement to a JSON file.
* ``geacc generate`` -- generate a synthetic or simulated-city instance
  and save it (``.json`` or ``.npz``) for later ``solve --input`` runs.
* ``geacc experiment`` -- run one of the paper's figure drivers and print
  its series (see ``repro.experiments.figures``).
* ``geacc sweep`` -- run a figure driver with crash-safe JSONL
  checkpointing; ``--resume`` continues a killed sweep without
  re-running finished cells (see ``docs/robustness.md``), ``--jobs N``
  fans cells out to N worker processes (see ``docs/performance.md``),
  and ``--timeout`` bounds the whole sweep's wall clock.
* ``geacc bench`` -- time every solver on the reference instance and
  write a machine-readable ``BENCH_solvers.json``; ``--compare``
  against a committed baseline gates perf regressions in CI.
* ``geacc info`` -- list registered solvers, figures and scales.

``geacc solve`` accepts ``--timeout`` / ``--node-budget``: solvers then
run under the anytime harness and report their outcome (``optimal`` /
``feasible-timeout`` / ``failed``). Exit codes follow the usual Unix
conventions: 0 on success, 1 when a solver failed outright, 124 (the GNU
``timeout`` convention) when every solver answered but at least one only
reached its budget-limited best-so-far.
* ``geacc lint`` -- run the GEACC-aware static-analysis pass (also
  available as the ``geacc-lint`` console script; see
  ``docs/static-analysis.md``).
* ``geacc serve`` -- run the journaled online arrangement service: a
  JSON-over-HTTP front-end over a write-ahead journal and the
  micro-batching solve engine (``--journal``, ``--batch-ms``,
  ``--timeout``; see ``docs/service.md``). Restarting with an existing
  journal recovers the exact pre-crash state -- via the newest intact
  snapshot plus the journal tail when ``--snapshot-dir`` holds one, and
  ``--compact-bytes`` arms automatic journal compaction on growth.
* ``geacc compact`` -- offline snapshot + journal-trim of a service
  journal (the same operation ``POST /compact`` runs on a live server).
* ``geacc replay`` -- drive a simulated timeline through the service as
  a load generator; reports request-latency percentiles and achieved
  MaxSum versus the offline clairvoyant bound, next to the
  first-come-first-served baseline.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.algorithms import SOLVERS, get_solver
from repro.exceptions import ReproError
from repro.core.validation import validate_arrangement
from repro.datagen.synthetic import SyntheticConfig, generate_instance
from repro.datasets.meetup import CITIES, MeetupCityConfig, meetup_city
from repro.datasets.scenarios import SCENARIOS, build_scenario
from repro.experiments.config import SCALES
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.metrics import measure
from repro.robustness import Outcome, run_with_budget

#: Exit code when a budgeted solve only reached its anytime best-so-far
#: (mirrors GNU ``timeout``).
EXIT_TIMEOUT = 124


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--events", type=int, default=100, help="|V| (synthetic)")
    parser.add_argument("--users", type=int, default=1000, help="|U| (synthetic)")
    parser.add_argument("--dimension", type=int, default=20, help="attribute d")
    parser.add_argument(
        "--conflict-ratio", type=float, default=0.25, help="|CF| / all event pairs"
    )
    parser.add_argument("--cv-max", type=int, default=50, help="max event capacity")
    parser.add_argument("--cu-max", type=int, default=4, help="max user capacity")
    parser.add_argument(
        "--attr-distribution",
        choices=["uniform", "normal", "zipf"],
        default="uniform",
    )
    parser.add_argument(
        "--city",
        choices=sorted(CITIES),
        default=None,
        help="use a simulated Meetup city instead of synthetic data",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default=None,
        help="use a structured scenario workload instead of synthetic data",
    )
    parser.add_argument("--seed", type=int, default=0)


def _build_instance(args: argparse.Namespace):
    if getattr(args, "scenario", None):
        return build_scenario(args.scenario, seed=args.seed).instance
    if args.city:
        config = MeetupCityConfig(city=args.city, conflict_ratio=args.conflict_ratio)
        return meetup_city(config, args.seed)
    config = SyntheticConfig(
        n_events=args.events,
        n_users=args.users,
        d=args.dimension,
        conflict_ratio=args.conflict_ratio,
        cv_high=args.cv_max,
        cu_high=args.cu_max,
        attr_distribution=args.attr_distribution,
    )
    return generate_instance(config, args.seed)


def _load_instance(path: str):
    from repro.io import load_instance_json, load_instance_npz

    if path.endswith(".npz"):
        return load_instance_npz(path)
    return load_instance_json(path)


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.input:
        instance = _load_instance(args.input)
    else:
        instance = _build_instance(args)
    print(instance)
    budgeted = args.timeout is not None or args.node_budget is not None
    best = None
    timed_out = False
    failed = False
    for name in args.algorithms:
        if budgeted:
            run = measure(
                lambda: run_with_budget(
                    name,
                    instance,
                    timeout=args.timeout,
                    node_limit=args.node_budget,
                ),
                memory=args.memory,
            )
            result = run.result
            if result.outcome is Outcome.FAILED:
                failed = True
                errors = "; ".join(
                    f"{f.error_type}: {f.message}" for f in result.failures
                )
                print(f"{name:12s}  FAILED  ({errors})")
                continue
            if result.outcome is Outcome.FEASIBLE_TIMEOUT:
                timed_out = True
            memory_text = (
                f"  peak={run.peak_mb:.1f}MB" if run.peak_mb is not None else ""
            )
            print(
                f"{name:12s}  MaxSum={result.max_sum():10.3f}  "
                f"|M|={len(result.arrangement):6d}  time={result.seconds:.3f}s"
                f"  outcome={result.outcome}{memory_text}"
            )
            arrangement = result.arrangement
        else:
            solver = get_solver(name)
            run = measure(lambda: solver.solve(instance), memory=args.memory)
            validate_arrangement(run.result)
            memory_text = (
                f"  peak={run.peak_mb:.1f}MB" if run.peak_mb is not None else ""
            )
            print(
                f"{name:12s}  MaxSum={run.result.max_sum():10.3f}  "
                f"|M|={len(run.result):6d}  time={run.seconds:.3f}s{memory_text}"
            )
            arrangement = run.result
        if best is None or arrangement.max_sum() > best.max_sum():
            best = arrangement
    if args.output and best is not None:
        from repro.io import save_arrangement_json

        save_arrangement_json(best, args.output)
        print(f"best arrangement written to {args.output}")
    if failed:
        return 1
    if timed_out:
        return EXIT_TIMEOUT
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.io import save_instance_json, save_instance_npz

    instance = _build_instance(args)
    if args.output.endswith(".npz"):
        save_instance_npz(instance, args.output)
    else:
        save_instance_json(instance, args.output)
    print(f"{instance} written to {args.output}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    driver = ALL_FIGURES[args.figure]
    result = driver(args.scale)
    if args.chart and hasattr(result, "records") and hasattr(result, "solvers"):
        from repro.experiments.charts import render_sweep_charts

        print(render_sweep_charts(result))
    else:
        print(result.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import inspect

    driver = ALL_FIGURES[args.figure]
    parameters = inspect.signature(driver).parameters
    if "checkpoint_path" not in parameters:
        print(
            f"error: figure {args.figure} does not support checkpointing",
            file=sys.stderr,
        )
        return 2
    kwargs: dict = {
        "checkpoint_path": args.checkpoint,
        "resume": args.resume,
    }
    if args.solvers:
        if "solvers" not in parameters:
            print(
                f"error: figure {args.figure} has a fixed solver set",
                file=sys.stderr,
            )
            return 2
        kwargs["solvers"] = tuple(args.solvers)
    if args.jobs != 1:
        if "jobs" not in parameters:
            print(
                f"error: figure {args.figure} does not support --jobs",
                file=sys.stderr,
            )
            return 2
        kwargs["jobs"] = args.jobs
    budget = None
    if args.timeout is not None:
        if "budget" not in parameters:
            print(
                f"error: figure {args.figure} does not support --timeout",
                file=sys.stderr,
            )
            return 2
        from repro.robustness.budget import Budget

        budget = Budget(deadline=args.timeout)
        kwargs["budget"] = budget
    result = driver(args.scale, **kwargs)
    print(result.render())
    if budget is not None and budget.exhausted:
        print(
            f"sweep budget exhausted after {budget.elapsed():.1f}s -- "
            f"rerun with --resume to finish the remaining cells",
            file=sys.stderr,
        )
        return EXIT_TIMEOUT
    return 1 if result.failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        compare_reports,
        load_report,
        run_bench,
        speedup_summary,
        write_report,
    )

    report = run_bench(
        solvers=tuple(args.solvers) if args.solvers else None,
        repeats=args.repeats,
        quick=args.quick,
        scale=args.scale,
        with_service=not args.no_service,
    )
    print(report.render())
    write_report(report, args.output)
    print(f"bench report written to {args.output}")
    if args.compare:
        baseline = load_report(args.compare)
        for line in speedup_summary(report, baseline):
            print(f"speedup: {line}")
        regressions = compare_reports(
            report, baseline, max_regression=args.max_regression
        )
        if regressions:
            for line in regressions:
                print(f"regression: {line}", file=sys.stderr)
            return 1
        print(
            f"no solver regressed more than {args.max_regression:g}x "
            f"against {args.compare}"
        )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.report import run_full_report

    report = run_full_report(args.scale, figures=args.figures)
    text = report.to_markdown()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report ({len(report.sections)} sections, "
              f"{report.total_seconds:.1f}s) written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.simulation import (
        GreedyArrivalPolicy,
        RebatchPolicy,
        Simulator,
        random_timeline,
    )

    instance = _build_instance(args)
    print(instance)
    rng = np.random.default_rng(args.seed)
    timeline = random_timeline(instance, rng, horizon=args.horizon)
    simulator = Simulator(instance, timeline)
    policies = {
        "greedy-arrival": GreedyArrivalPolicy(),
        "rebatch": RebatchPolicy(solver=args.rebatch_solver),
    }
    for name in args.policies:
        result = simulator.run(policies[name])
        print(result.summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.exceptions import JournalError
    from repro.service.frontend import ArrangementService
    from repro.service.http import make_server
    from repro.service.sharding import ShardCoordinator
    from repro.service.store import StoreConfig

    config = StoreConfig(dimension=args.dimension, t=args.t, metric=args.metric)
    try:
        if args.shards:
            # --shards N: args.journal names the shard root directory
            # (manifest + one journal/snapshot dir per shard).
            service = ShardCoordinator.open(
                args.journal,
                config,
                shards=args.shards,
                retain=args.retain,
                compact_bytes=args.compact_bytes or None,
                batch_ms=args.batch_ms,
                solve_timeout=args.timeout,
                max_pending=args.max_pending,
                ladder=tuple(args.ladder),
            )
        else:
            snapshot_dir = args.snapshot_dir or f"{args.journal}.snapshots"
            service = ArrangementService.open(
                args.journal,
                config,
                snapshot_dir=snapshot_dir,
                retain=args.retain,
                compact_bytes=args.compact_bytes or None,
                batch_ms=args.batch_ms,
                solve_timeout=args.timeout,
                max_pending=args.max_pending,
                ladder=tuple(args.ladder),
            )
    except JournalError as exc:
        print(f"geacc serve: cannot recover: {exc}", file=sys.stderr)
        return 2
    if not args.shards:
        service._crash_after_snapshot = args.crash_after_snapshot
    server = make_server(service, host=args.host, port=args.port)
    summary = service.state_summary()
    recovery = summary.get("last_recovery")
    print(
        f"geacc serve: journal={args.journal} seq={summary['seq']} "
        f"|V|={summary['n_events']} |U|={summary['n_users']} "
        f"|M|={summary['n_assignments']}"
        + (f" recovery={recovery['rung']}" if recovery else ""),
        flush=True,
    )
    topology = summary.get("sharding")
    if topology:
        per_shard = " ".join(
            f"s{row['shard']}:|V|={row['n_events']},|U|={row['n_users']},"
            f"seq={row['seq']}"
            for row in topology["per_shard"]
        )
        print(
            f"geacc serve: sharding shards={topology['shards']} "
            f"components={topology['components']} "
            f"rebalances={topology['rebalances']} {per_shard}",
            flush=True,
        )
    # The smoke driver and scripts parse this exact line for the port.
    print(f"listening on http://{args.host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.service.loadgen import replay_timeline, replay_timeline_sharded
    from repro.service.sharding import shardable_instance, shardable_timeline
    from repro.simulation import random_timeline

    from repro.exceptions import JournalError

    if args.components:
        # A clustered, partition-respecting universe sized from the
        # standard instance flags (|V| and |U| split across components).
        instance = shardable_instance(
            args.components,
            max(1, args.events // args.components),
            max(1, args.users // args.components),
            dimension=args.dimension,
            seed=args.seed,
        )
        timeline = shardable_timeline(instance)
    else:
        instance = _build_instance(args)
        rng = np.random.default_rng(args.seed)
        timeline = random_timeline(instance, rng, horizon=args.horizon)
    print(instance)
    try:
        if args.shards:
            with tempfile.TemporaryDirectory() as tmp:
                report = replay_timeline_sharded(
                    instance,
                    timeline,
                    Path(args.journal) if args.journal else Path(tmp) / "fleet",
                    shards=args.shards,
                    solve_timeout=args.timeout,
                    ladder=tuple(args.ladder),
                    bound=args.bound,
                )
        elif args.journal:
            report = replay_timeline(
                instance,
                timeline,
                Path(args.journal),
                batch_ms=args.batch_ms,
                solve_timeout=args.timeout,
                ladder=tuple(args.ladder),
                bound=args.bound,
            )
        else:
            with tempfile.TemporaryDirectory() as tmp:
                report = replay_timeline(
                    instance,
                    timeline,
                    Path(tmp) / "replay.jsonl",
                    batch_ms=args.batch_ms,
                    solve_timeout=args.timeout,
                    ladder=tuple(args.ladder),
                    bound=args.bound,
                )
    except JournalError as exc:
        print(f"geacc replay: journal error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ratio >= report.baseline_ratio else 1


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.exceptions import JournalError
    from repro.service.journal import Journal
    from repro.service.snapshot import compact

    snapshot_dir = args.snapshot_dir or f"{args.journal}.snapshots"
    try:
        journal, store = Journal.recover(args.journal, snapshot_dir=snapshot_dir)
    except JournalError as exc:
        print(f"geacc compact: cannot recover: {exc}", file=sys.stderr)
        return 2
    with journal:
        stats = compact(journal, store, snapshot_dir, retain=args.retain)
    print(
        f"geacc compact: snapshot seq={stats.snapshot_seq} "
        f"journal {stats.journal_bytes_before} -> {stats.journal_bytes_after} "
        f"bytes (base seq {stats.base_seq}, "
        f"retained {len(stats.retained)}, pruned {len(stats.pruned)})"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    argv: list[str] = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.list_rules:
        argv.append("--list-rules")
    if args.statistics:
        argv.append("--statistics")
    if args.format != "text":
        argv += ["--format", args.format]
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    for pattern in args.exclude or ():
        argv += ["--exclude", pattern]
    return lint_main(argv)


def _cmd_info(_: argparse.Namespace) -> int:
    print("solvers:    " + ", ".join(sorted(SOLVERS)))
    print("figures:    " + ", ".join(sorted(ALL_FIGURES)))
    print("scales:     " + ", ".join(sorted(SCALES)))
    print("cities:     " + ", ".join(sorted(CITIES)))
    print("scenarios:  " + ", ".join(sorted(SCENARIOS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="geacc",
        description="Conflict-aware event-participant arrangement (ICDE 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve one instance")
    _add_instance_arguments(solve)
    solve.add_argument(
        "--algorithms",
        nargs="+",
        default=["greedy"],
        choices=sorted(SOLVERS),
    )
    solve.add_argument(
        "--memory", action="store_true", help="also measure peak memory"
    )
    solve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per algorithm (anytime: best-so-far on expiry; "
        "exit 124 when any algorithm only reached its budgeted best)",
    )
    solve.add_argument(
        "--node-budget",
        type=int,
        default=None,
        metavar="N",
        help="cap on checkpointed work units per algorithm",
    )
    solve.add_argument(
        "--input", default=None, help="load the instance from a .json/.npz file"
    )
    solve.add_argument(
        "--output", default=None, help="write the best arrangement to a JSON file"
    )
    solve.set_defaults(func=_cmd_solve)

    generate = subparsers.add_parser(
        "generate", help="generate an instance and save it to a file"
    )
    _add_instance_arguments(generate)
    generate.add_argument(
        "--output", required=True, help="target path (.json or .npz)"
    )
    generate.set_defaults(func=_cmd_generate)

    experiment = subparsers.add_parser(
        "experiment", help="run one of the paper's figures"
    )
    experiment.add_argument("figure", choices=sorted(ALL_FIGURES))
    experiment.add_argument(
        "--scale", choices=sorted(SCALES), default=None, help="parameter scale"
    )
    experiment.add_argument(
        "--chart",
        action="store_true",
        help="render bar charts instead of tables (sweep figures only)",
    )
    experiment.set_defaults(func=_cmd_experiment)

    sweep = subparsers.add_parser(
        "sweep", help="run a figure sweep with crash-safe checkpointing"
    )
    sweep.add_argument("figure", choices=sorted(ALL_FIGURES))
    sweep.add_argument(
        "--checkpoint",
        required=True,
        metavar="PATH",
        help="JSONL file that records every finished cell",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already completed in the checkpoint file",
    )
    sweep.add_argument(
        "--scale", choices=sorted(SCALES), default=None, help="parameter scale"
    )
    sweep.add_argument(
        "--solvers",
        nargs="+",
        default=None,
        choices=sorted(SOLVERS),
        help="override the figure's solver set",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run sweep cells on N worker processes "
        "(0 = all cores; default 1 = serial)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sweep-wide wall-clock budget; cells that do not start in "
        "time are left to a later --resume (exit 124)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    bench = subparsers.add_parser(
        "bench", help="time every solver and write BENCH_solvers.json"
    )
    bench.add_argument(
        "--output",
        default="BENCH_solvers.json",
        metavar="PATH",
        help="where to write the JSON report (default: BENCH_solvers.json)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="one repeat per solver on the same reference instance -- fast "
        "enough for CI, still comparable against a full baseline",
    )
    bench.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="timing repeats per solver (default: 5, or 1 with --quick)",
    )
    bench.add_argument(
        "--solvers",
        nargs="+",
        default=None,
        choices=sorted(SOLVERS),
        help="solvers to benchmark (default: the Fig. 3/4 algorithm set)",
    )
    bench.add_argument(
        "--scale",
        choices=sorted((*SCALES, "xl")),
        default=None,
        help="bench tier: a parameter scale, or 'xl' for the kernel "
        "stress tier (matrix-free 1000x100000 streaming plus a "
        "200x10000 dense-flow workload)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="exit 1 if any solver regressed more than --max-regression "
        "times against this baseline report",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        metavar="FACTOR",
        help="slowdown factor tolerated by --compare (default: 2.0)",
    )
    bench.add_argument(
        "--no-service",
        action="store_true",
        help="skip the serving-path scenario (journal-append throughput "
        "and request latency)",
    )
    bench.set_defaults(func=_cmd_bench)

    reproduce = subparsers.add_parser(
        "reproduce", help="run every table/figure and write one report"
    )
    reproduce.add_argument(
        "--scale", choices=sorted(SCALES), default=None, help="parameter scale"
    )
    reproduce.add_argument(
        "--figures",
        nargs="+",
        default=None,
        choices=sorted(ALL_FIGURES),
        help="subset of figures (default: all)",
    )
    reproduce.add_argument(
        "--output", default=None, help="write the markdown report here"
    )
    reproduce.set_defaults(func=_cmd_reproduce)

    simulate = subparsers.add_parser(
        "simulate", help="replay a dynamic-platform timeline"
    )
    _add_instance_arguments(simulate)
    simulate.add_argument("--horizon", type=float, default=100.0)
    simulate.add_argument(
        "--policies",
        nargs="+",
        default=["greedy-arrival", "rebatch"],
        choices=["greedy-arrival", "rebatch"],
    )
    simulate.add_argument(
        "--rebatch-solver", default="greedy", choices=sorted(SOLVERS)
    )
    simulate.set_defaults(func=_cmd_simulate)

    serve = subparsers.add_parser(
        "serve", help="run the journaled online arrangement service"
    )
    serve.add_argument(
        "--journal",
        required=True,
        metavar="PATH",
        help="write-ahead journal (recovered if it already exists)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8527, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--batch-ms",
        type=float,
        default=25.0,
        metavar="MS",
        help="micro-batch coalescing window (default: 25ms)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="per-batch solve deadline; on expiry the engine falls down "
        "the degradation ladder (default: 0.25s)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="N",
        help="admission-control queue bound (503 beyond it)",
    )
    serve.add_argument(
        "--ladder",
        nargs="+",
        default=["greedy", "random-u"],
        choices=sorted(SOLVERS),
        help="batch-solve degradation ladder, best first",
    )
    serve.add_argument(
        "--dimension", type=int, default=20,
        help="attribute dimensionality (new journals only)",
    )
    serve.add_argument(
        "--t", type=float, default=10_000.0,
        help="attribute bound T (new journals only)",
    )
    serve.add_argument(
        "--metric", default="euclidean",
        help="similarity metric (new journals only)",
    )
    serve.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="snapshot/compaction directory (default: <journal>.snapshots)",
    )
    serve.add_argument(
        "--compact-bytes", type=int, default=1 << 20, metavar="BYTES",
        help="auto-compact when the journal exceeds this size "
        "(0 disables; default: 1 MiB)",
    )
    serve.add_argument(
        "--retain", type=int, default=2, metavar="N",
        help="snapshots kept after a compaction (default: 2)",
    )
    serve.add_argument(
        # Test hook: hard-exit between snapshot write and journal trim on
        # the next compaction (the kill-mid-compaction smoke scenario).
        "--crash-after-snapshot", action="store_true", help=argparse.SUPPRESS,
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="shard the service by conflict-graph components; --journal "
        "then names the shard root directory (0 = unsharded)",
    )
    serve.set_defaults(func=_cmd_serve)

    compact = subparsers.add_parser(
        "compact", help="snapshot a service journal and trim it to the tail"
    )
    compact.add_argument(
        "--journal", required=True, metavar="PATH",
        help="write-ahead journal to compact (recovered first)",
    )
    compact.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="snapshot directory (default: <journal>.snapshots)",
    )
    compact.add_argument(
        "--retain", type=int, default=2, metavar="N",
        help="snapshots kept after the compaction (default: 2)",
    )
    compact.set_defaults(func=_cmd_compact)

    replay = subparsers.add_parser(
        "replay",
        help="drive a simulated timeline through the service (load generator)",
    )
    _add_instance_arguments(replay)
    replay.add_argument("--horizon", type=float, default=100.0)
    replay.add_argument(
        "--batch-ms", type=float, default=10.0, metavar="MS",
        help="engine coalescing window during the replay",
    )
    replay.add_argument(
        "--timeout", type=float, default=0.25, metavar="SECONDS",
        help="per-batch solve deadline",
    )
    replay.add_argument(
        "--ladder",
        nargs="+",
        default=["greedy", "random-u"],
        choices=sorted(SOLVERS),
        help="batch-solve degradation ladder, best first",
    )
    replay.add_argument(
        "--bound",
        choices=["relaxation", "nn"],
        default="relaxation",
        help="clairvoyant bound to score against (default: relaxation)",
    )
    replay.add_argument(
        "--journal", default=None, metavar="PATH",
        help="keep the run's journal here (default: a temp file); with "
        "--shards this is the shard root directory",
    )
    replay.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="replay through a shard fleet driven synchronously; compare "
        "--shards 1 vs --shards 8 for the scaling story (0 = classic "
        "threaded single service)",
    )
    replay.add_argument(
        "--components", type=int, default=0, metavar="K",
        help="use a clustered shardable workload with K conflict "
        "components instead of the uniform synthetic instance",
    )
    replay.set_defaults(func=_cmd_replay)

    lint = subparsers.add_parser(
        "lint", help="run the GEACC-aware static-analysis pass"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument("--select", default=None, metavar="IDS")
    lint.add_argument("--ignore", default=None, metavar="IDS")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--statistics", action="store_true")
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--jobs", type=int, default=1, metavar="N")
    lint.add_argument("--exclude", action="append", default=None, metavar="GLOB")
    lint.set_defaults(func=_cmd_lint)

    info = subparsers.add_parser("info", help="list solvers/figures/scales")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
