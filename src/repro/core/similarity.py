"""Similarity functions between event and user attribute vectors.

The paper measures a user's interest in an event with Eq. (1):

    sim(l_v, l_u) = 1 - ||l_v - l_u||_2 / sqrt(d * T^2)

where attributes live in ``[0, T]^d`` and ``sqrt(d * T^2)`` is the largest
possible Euclidean distance, so sim is always in ``[0, 1]``. The paper
notes other similarity functions are applicable; we also ship cosine and
(negated, rescaled) dot-product similarities for the extension benchmarks.

All functions here are vectorised: given event attributes ``(|V|, d)`` and
user attributes ``(|U|, d)`` they return the full ``(|V|, |U|)`` matrix.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

SimilarityFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _pairwise_euclidean(event_attrs: np.ndarray, user_attrs: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances, shape ``(|V|, |U|)``.

    Uses the expanded form ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b so the
    whole matrix is three BLAS calls instead of a Python loop.
    """
    ev_sq = np.einsum("ij,ij->i", event_attrs, event_attrs)
    us_sq = np.einsum("ij,ij->i", user_attrs, user_attrs)
    sq = ev_sq[:, None] + us_sq[None, :] - 2.0 * (event_attrs @ user_attrs.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def euclidean_similarity(
    event_attrs: np.ndarray, user_attrs: np.ndarray, t: float
) -> np.ndarray:
    """The paper's Eq. (1) similarity for attributes in ``[0, T]^d``.

    Args:
        event_attrs: Array of shape ``(|V|, d)``.
        user_attrs: Array of shape ``(|U|, d)``.
        t: The attribute range bound ``T`` (> 0).

    Returns:
        Matrix of shape ``(|V|, |U|)`` with values in ``[0, 1]``.
    """
    if t <= 0:
        raise ValueError(f"attribute bound T must be positive, got {t}")
    d = event_attrs.shape[1]
    max_dist = np.sqrt(d * t * t)
    sims = 1.0 - _pairwise_euclidean(event_attrs, user_attrs) / max_dist
    return np.clip(sims, 0.0, 1.0)


def cosine_similarity(event_attrs: np.ndarray, user_attrs: np.ndarray) -> np.ndarray:
    """Cosine similarity clipped to ``[0, 1]``.

    Zero vectors get similarity 0 against everything (an entity with no
    attributes expresses no interest).
    """
    ev_norm = np.linalg.norm(event_attrs, axis=1)
    us_norm = np.linalg.norm(user_attrs, axis=1)
    denom = ev_norm[:, None] * us_norm[None, :]
    dots = event_attrs @ user_attrs.T
    with np.errstate(divide="ignore", invalid="ignore"):
        sims = np.where(denom > 0, dots / np.where(denom > 0, denom, 1.0), 0.0)
    return np.clip(sims, 0.0, 1.0)


def scaled_dot_similarity(event_attrs: np.ndarray, user_attrs: np.ndarray) -> np.ndarray:
    """Dot product rescaled by its maximum so values land in ``[0, 1]``."""
    dots = event_attrs @ user_attrs.T
    peak = dots.max() if dots.size else 0.0
    if peak <= 0:
        return np.zeros_like(dots)
    return np.clip(dots / peak, 0.0, 1.0)


def similarity_matrix(
    event_attrs: np.ndarray,
    user_attrs: np.ndarray,
    t: float,
    metric: str = "euclidean",
) -> np.ndarray:
    """Dispatch to a named similarity metric.

    Args:
        metric: ``euclidean`` (the paper's Eq. 1), ``cosine``, or ``dot``.
    """
    event_attrs = np.asarray(event_attrs, dtype=np.float64)
    user_attrs = np.asarray(user_attrs, dtype=np.float64)
    if metric == "euclidean":
        return euclidean_similarity(event_attrs, user_attrs, t)
    if metric == "cosine":
        return cosine_similarity(event_attrs, user_attrs)
    if metric == "dot":
        return scaled_dot_similarity(event_attrs, user_attrs)
    raise ValueError(f"unknown similarity metric {metric!r}")
