"""Similarity functions between event and user attribute vectors.

The paper measures a user's interest in an event with Eq. (1):

    sim(l_v, l_u) = 1 - ||l_v - l_u||_2 / sqrt(d * T^2)

where attributes live in ``[0, T]^d`` and ``sqrt(d * T^2)`` is the largest
possible Euclidean distance, so sim is always in ``[0, 1]``. The paper
notes other similarity functions are applicable; we also ship cosine and
(negated, rescaled) dot-product similarities for the extension benchmarks.

All functions here are vectorised: given event attributes ``(|V|, d)`` and
user attributes ``(|U|, d)`` they return the full ``(|V|, |U|)`` matrix.
:func:`similarity_tiles` computes one rectangular block of that matrix
bit-identically (the tile kernel every array-backed solver substrate pulls
cache-friendly blocks through), and :class:`SimilarityRowCache` memoises
per-event rows over an append-only user set for the service path.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable

import numpy as np

SimilarityFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _pairwise_euclidean(event_attrs: np.ndarray, user_attrs: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances, shape ``(|V|, |U|)``.

    Uses the expanded form ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b so the
    whole matrix is three vectorised contractions instead of a Python
    loop. The cross term deliberately uses ``einsum`` rather than ``@``:
    BLAS matmul picks its accumulation order per matrix *shape*, which
    breaks the tiling contract (a tile must equal the same block of the
    full matrix bit-for-bit), while einsum's fixed contraction order is
    shape-independent.
    """
    ev_sq = np.einsum("ij,ij->i", event_attrs, event_attrs)
    us_sq = np.einsum("ij,ij->i", user_attrs, user_attrs)
    sq = ev_sq[:, None] + us_sq[None, :] - 2.0 * np.einsum(
        "id,jd->ij", event_attrs, user_attrs
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def euclidean_similarity(
    event_attrs: np.ndarray, user_attrs: np.ndarray, t: float
) -> np.ndarray:
    """The paper's Eq. (1) similarity for attributes in ``[0, T]^d``.

    Args:
        event_attrs: Array of shape ``(|V|, d)``.
        user_attrs: Array of shape ``(|U|, d)``.
        t: The attribute range bound ``T`` (> 0).

    Returns:
        Matrix of shape ``(|V|, |U|)`` with values in ``[0, 1]``.
    """
    if t <= 0:
        raise ValueError(f"attribute bound T must be positive, got {t}")
    d = event_attrs.shape[1]
    max_dist = np.sqrt(d * t * t)
    sims = 1.0 - _pairwise_euclidean(event_attrs, user_attrs) / max_dist
    return np.clip(sims, 0.0, 1.0)


def cosine_similarity(event_attrs: np.ndarray, user_attrs: np.ndarray) -> np.ndarray:
    """Cosine similarity clipped to ``[0, 1]``.

    Zero vectors get similarity 0 against everything (an entity with no
    attributes expresses no interest).
    """
    ev_norm = np.linalg.norm(event_attrs, axis=1)
    us_norm = np.linalg.norm(user_attrs, axis=1)
    denom = ev_norm[:, None] * us_norm[None, :]
    # einsum, not @: shape-independent accumulation keeps tiles
    # bit-identical to full-matrix blocks (see _pairwise_euclidean).
    dots = np.einsum("id,jd->ij", event_attrs, user_attrs)
    with np.errstate(divide="ignore", invalid="ignore"):
        sims = np.where(denom > 0, dots / np.where(denom > 0, denom, 1.0), 0.0)
    return np.clip(sims, 0.0, 1.0)


def scaled_dot_similarity(event_attrs: np.ndarray, user_attrs: np.ndarray) -> np.ndarray:
    """Dot product rescaled by its maximum so values land in ``[0, 1]``."""
    dots = event_attrs @ user_attrs.T
    peak = dots.max() if dots.size else 0.0
    if peak <= 0:
        return np.zeros_like(dots)
    return np.clip(dots / peak, 0.0, 1.0)


def similarity_matrix(
    event_attrs: np.ndarray,
    user_attrs: np.ndarray,
    t: float,
    metric: str = "euclidean",
) -> np.ndarray:
    """Dispatch to a named similarity metric.

    Args:
        metric: ``euclidean`` (the paper's Eq. 1), ``cosine``, or ``dot``.
    """
    event_attrs = np.asarray(event_attrs, dtype=np.float64)
    user_attrs = np.asarray(user_attrs, dtype=np.float64)
    if metric == "euclidean":
        return euclidean_similarity(event_attrs, user_attrs, t)
    if metric == "cosine":
        return cosine_similarity(event_attrs, user_attrs)
    if metric == "dot":
        return scaled_dot_similarity(event_attrs, user_attrs)
    raise ValueError(f"unknown similarity metric {metric!r}")


#: Metrics whose entries depend only on the one (event, user) pair, so a
#: tile equals the same block of the full matrix bit-for-bit. ``dot``
#: normalises by the *global* matrix peak and is excluded.
TILEABLE_METRICS = frozenset({"euclidean", "cosine"})


def similarity_tiles(
    event_attrs: np.ndarray,
    user_attrs: np.ndarray,
    t: float,
    events_slice: slice | np.ndarray,
    users_slice: slice | np.ndarray,
    metric: str = "euclidean",
) -> np.ndarray:
    """One rectangular block of the similarity matrix.

    Returns ``similarity_matrix(event_attrs, user_attrs, ...)`` restricted
    to ``[events_slice, users_slice]`` without materialising the rest.
    Because the supported metrics are per-pair local, the block is
    bit-identical to slicing the full matrix -- the property the kernel
    equivalence suite pins down.

    Args:
        events_slice: A slice or integer index array over events.
        users_slice: A slice or integer index array over users.
        metric: One of :data:`TILEABLE_METRICS` (``dot`` rescales by the
            global peak and cannot be tiled).
    """
    if metric not in TILEABLE_METRICS:
        raise ValueError(
            f"metric {metric!r} is not tileable (entries depend on the "
            f"whole matrix); tileable metrics: {sorted(TILEABLE_METRICS)}"
        )
    event_attrs = np.asarray(event_attrs, dtype=np.float64)
    user_attrs = np.asarray(user_attrs, dtype=np.float64)
    return similarity_matrix(
        event_attrs[events_slice], user_attrs[users_slice], t, metric
    )


class SimilarityRowCache:
    """Memoised per-event similarity rows over an append-only user set.

    The serving path recomputes one event's row against every registered
    user on each solve batch; users are only ever *appended*, so a cached
    row stays valid as a prefix and only the new suffix needs computing.
    This cache keeps up to ``max_rows`` event rows (LRU) and extends them
    incrementally with :func:`similarity_tiles` suffix calls.

    The caller owns the attribute arrays and must pass the event's
    attributes consistently (event attributes are immutable in the store);
    rows are keyed by event index. :meth:`invalidate` drops state when an
    event is replaced wholesale.
    """

    def __init__(self, t: float, metric: str = "euclidean", max_rows: int = 256) -> None:
        if max_rows < 1:
            raise ValueError(f"max_rows must be positive, got {max_rows}")
        if metric not in TILEABLE_METRICS:
            raise ValueError(
                f"row caching requires a tileable metric, got {metric!r}"
            )
        self.t = t
        self.metric = metric
        self.max_rows = max_rows
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def row(
        self,
        event: int,
        event_attrs: np.ndarray,
        user_attrs: np.ndarray,
    ) -> np.ndarray:
        """The event's similarity row against ``user_attrs`` (read-only).

        Args:
            event: Cache key (the event's index in the store).
            event_attrs: ``(1, d)`` or ``(d,)`` attributes of that event.
            user_attrs: ``(|U|, d)`` attributes of *all* current users;
                ``|U|`` may only grow between calls for the same key.
        """
        user_attrs = np.asarray(user_attrs, dtype=np.float64)
        n_users = user_attrs.shape[0]
        event_attrs = np.asarray(event_attrs, dtype=np.float64).reshape(1, -1)
        cached = self._rows.get(event)
        if cached is not None and cached.shape[0] == n_users:
            self._rows.move_to_end(event)
            self.hits += 1
            return cached
        if cached is not None and cached.shape[0] < n_users:
            # Append-only user set: compute just the new suffix.
            suffix = similarity_tiles(
                event_attrs,
                user_attrs,
                self.t,
                slice(None),
                slice(cached.shape[0], n_users),
                self.metric,
            )[0]
            row = np.concatenate([cached, suffix])
        else:
            # Miss, or the user set shrank (not append-only): recompute.
            self.misses += 1
            row = similarity_matrix(event_attrs, user_attrs, self.t, self.metric)[0]
        row.flags.writeable = False
        self._rows[event] = row
        self._rows.move_to_end(event)
        while len(self._rows) > self.max_rows:
            self._rows.popitem(last=False)
        return row

    def invalidate(self, event: int | None = None) -> None:
        """Forget one event's row, or everything when ``event`` is None."""
        if event is None:
            self._rows.clear()
        else:
            self._rows.pop(event, None)


def top_k_descending(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest values, ordered by (value desc, index asc).

    Exactly the first ``k`` entries of ``np.argsort(-values,
    kind="stable")`` -- including under ties -- but computed with an O(n)
    ``argpartition`` plus an O(k log k) sort, so consumers that only ever
    look at a prefix (Greedy-GEACC's candidate cursors) never pay for the
    full sort. Ties *at the selection boundary* are repaired explicitly:
    a plain argpartition may keep an arbitrary subset of boundary-tied
    entries, which would break digest-identity with the scalar path.
    """
    n = values.shape[0]
    if k >= n:
        return np.argsort(-values, kind="stable")
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    part = np.argpartition(-values, k - 1)[:k]
    boundary = values[part].min()
    strict = part[values[part] > boundary]
    # Fill remaining slots with the *lowest-index* boundary-tied entries.
    tied = np.flatnonzero(values == boundary)
    take = k - strict.shape[0]
    chosen = np.concatenate([strict, tied[:take]])
    # Order by (value desc, original index asc); a stable sort over the
    # argpartition output would tie-break by partition order instead.
    order = np.lexsort((chosen, -values[chosen]))
    return chosen[order]
