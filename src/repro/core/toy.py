"""The paper's Table I running example.

Three events, five users, explicit interestingness values, events
``v1``/``v3`` conflicting, capacities ``c_v = (5, 3, 2)`` and
``c_u = (3, 1, 1, 2, 3)``. The paper reports:

* optimal ``MaxSum`` = 4.39 (Table I, bold entries);
* MinCostFlow-GEACC returns 4.13 (Example 2);
* Greedy-GEACC returns 4.28 (Example 3).

These three numbers are the tightest regression oracle the paper offers
and are pinned in ``tests/core/test_toy_example.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance

TOY_SIMS = np.array(
    [
        [0.93, 0.43, 0.84, 0.64, 0.65],
        [0.00, 0.35, 0.19, 0.21, 0.40],
        [0.86, 0.57, 0.78, 0.79, 0.68],
    ]
)
TOY_EVENT_CAPACITIES = np.array([5, 3, 2])
TOY_USER_CAPACITIES = np.array([3, 1, 1, 2, 3])
TOY_CONFLICTS = [(0, 2)]

OPTIMAL_MAXSUM = 4.39
MINCOSTFLOW_MAXSUM = 4.13
GREEDY_MAXSUM = 4.28


def toy_instance() -> Instance:
    """Build the Table I instance."""
    conflicts = ConflictGraph(3, TOY_CONFLICTS)
    return Instance.from_matrix(
        TOY_SIMS.copy(), TOY_EVENT_CAPACITIES.copy(), TOY_USER_CAPACITIES.copy(), conflicts
    )
