"""Upper bounds on the GEACC optimum.

Exact optima are only computable for tiny instances (Prune-GEACC), so
tests and experiments use these certified upper bounds to sandwich
approximation quality on instances of any size:

* :func:`nn_capacity_bound` -- the Lemma 6-style bound: every event v can
  contribute at most ``s_v * c_v`` (its best similarity times its
  capacity), and symmetrically every user u at most the sum of their
  ``c_u`` best similarities. The minimum of the two sides is an upper
  bound on ``MaxSum(M_OPT)``.
* :func:`relaxation_bound` -- ``MaxSum(M_0)``, the optimum of the
  conflict-free relaxation (Corollary 1). Tighter, costs a min-cost-flow
  solve.
* :func:`lp_bound` -- LP relaxation including per-user conflict
  constraints; the tightest of the three. Requires scipy and is meant for
  small/medium instances.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import Instance


def nn_capacity_bound(instance: Instance) -> float:
    """min(event-side, user-side) capacity-weighted top-k bound."""
    if instance.n_events == 0 or instance.n_users == 0:
        return 0.0
    sims = instance.sims
    event_side = float(
        (sims.max(axis=1) * instance.event_capacities).sum()
    )
    sorted_cols = np.sort(sims, axis=0)[::-1]  # each column descending
    user_side = 0.0
    for u in range(instance.n_users):
        k = int(min(instance.user_capacities[u], instance.n_events))
        user_side += float(sorted_cols[:k, u].sum())
    return min(event_side, user_side)


def relaxation_bound(instance: Instance) -> float:
    """``MaxSum(M_0)``: the conflict-free optimum (Corollary 1)."""
    from repro.core.algorithms.mincostflow import MinCostFlowGEACC

    solver = MinCostFlowGEACC()
    pairs = solver.solve_relaxation(instance)
    return float(sum(instance.sim(v, u) for v, u in pairs))


def lp_bound(instance: Instance) -> float:
    """LP relaxation bound with pairwise conflict constraints.

    Variables ``x[v, u] in [0, 1]`` for pairs with positive similarity;
    constraints: event capacities, user capacities, and
    ``x[vi, u] + x[vj, u] <= 1`` for every conflicting pair (vi, vj) and
    user u. Maximises ``sum sim * x``.

    Raises:
        ImportError: If scipy is unavailable.
    """
    from scipy.optimize import linprog
    from scipy.sparse import lil_matrix

    sims = instance.sims
    pos_pairs = [(v, u) for v, u in zip(*np.nonzero(sims > 0))]
    if not pos_pairs:
        return 0.0
    var_index = {pair: i for i, pair in enumerate(pos_pairs)}
    n_vars = len(pos_pairs)
    conflict_pairs = list(instance.conflicts.pairs)
    n_rows = instance.n_events + instance.n_users + len(conflict_pairs) * instance.n_users
    a_ub = lil_matrix((n_rows, n_vars))
    b_ub = np.zeros(n_rows)
    for i, (v, u) in enumerate(pos_pairs):
        a_ub[v, i] = 1.0
        a_ub[instance.n_events + u, i] = 1.0
    b_ub[: instance.n_events] = instance.event_capacities
    b_ub[instance.n_events : instance.n_events + instance.n_users] = (
        instance.user_capacities
    )
    row = instance.n_events + instance.n_users
    for vi, vj in conflict_pairs:
        for u in range(instance.n_users):
            present = False
            for v in (vi, vj):
                i = var_index.get((v, u))
                if i is not None:
                    a_ub[row, i] = 1.0
                    present = True
            b_ub[row] = 1.0
            if present:
                row += 1
    a_ub = a_ub[:row].tocsr()
    b_ub = b_ub[:row]
    c = -np.array([float(sims[v, u]) for v, u in pos_pairs])
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=(0.0, 1.0), method="highs")
    if not result.success:
        raise RuntimeError(f"LP bound failed: {result.message}")
    return float(-result.fun)
