"""Feasibility validation for arrangements (Definition 5's constraints).

Every algorithm's output, in every test and benchmark, passes through
:func:`validate_arrangement`. The checks are exactly the constraints of
the GEACC definition:

1. ``sim(l_v, l_u) > 0`` for every matched pair;
2. no event exceeds its capacity ``c_v``;
3. no user exceeds their capacity ``c_u``;
4. no user is matched to two conflicting events.
"""

from __future__ import annotations

from repro.core.model import Arrangement, Instance
from repro.exceptions import InfeasibleArrangementError


def validate_arrangement(arrangement: Arrangement, instance: Instance | None = None) -> None:
    """Raise :class:`InfeasibleArrangementError` on the first violation.

    Args:
        arrangement: The matching to check.
        instance: Optionally override the instance to validate against
            (defaults to ``arrangement.instance``).
    """
    instance = instance or arrangement.instance
    for event in range(instance.n_events):
        users = arrangement.users_of(event)
        if len(users) > instance.event_capacities[event]:
            raise InfeasibleArrangementError(
                f"event {event} has {len(users)} attendees, capacity "
                f"{instance.event_capacities[event]}"
            )
        for user in users:
            sim = instance.sim(event, user)
            if sim <= 0:
                raise InfeasibleArrangementError(
                    f"pair ({event}, {user}) matched with sim {sim} <= 0"
                )
    for user in range(instance.n_users):
        events = sorted(arrangement.events_of(user))
        if len(events) > instance.user_capacities[user]:
            raise InfeasibleArrangementError(
                f"user {user} has {len(events)} events, capacity "
                f"{instance.user_capacities[user]}"
            )
        for a in range(len(events)):
            for b in range(a + 1, len(events)):
                if instance.conflicts.are_conflicting(events[a], events[b]):
                    raise InfeasibleArrangementError(
                        f"user {user} matched to conflicting events "
                        f"{events[a]} and {events[b]}"
                    )


def is_feasible(arrangement: Arrangement, instance: Instance | None = None) -> bool:
    """Boolean wrapper around :func:`validate_arrangement`."""
    try:
        validate_arrangement(arrangement, instance)
    except InfeasibleArrangementError:
        return False
    return True
