"""Conflict graphs over events (Definition 3).

Two events conflict when no user can attend both -- overlapping time
slots, or venues too far apart to travel between. A
:class:`ConflictGraph` stores the symmetric pair set ``CF`` plus an
adjacency structure for O(1) "does v conflict with any of these events"
checks, which every algorithm in the paper performs in its inner loop.

Constructors cover the paper's experimental setting (a random fraction of
all event pairs) and the two real-world mechanisms its introduction
motivates (overlapping intervals; travel-time infeasibility).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError


class DisjointSet:
    """Union-find over integer keys with path compression and union by size.

    The substrate for conflict-component tracking: events are keys, a
    conflict edge is a union, and a component is everything sharing a
    root. Roots are canonicalised to the *smallest* member key so that
    component identity is stable under insertion order -- two traversals
    of the same edge set always name a component by the same id.
    """

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}

    def __contains__(self, key: int) -> bool:
        return key in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def add(self, key: int) -> None:
        """Register ``key`` as a singleton component (idempotent)."""
        if key not in self._parent:
            self._parent[key] = key
            self._size[key] = 1

    def find(self, key: int) -> int:
        """The component id (smallest member) of ``key``'s component."""
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``.

        Returns True when the union actually merged two distinct
        components (the signal component-merge detection keys on).
        """
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        # Keep the smaller key as the surviving root so component ids
        # are insertion-order independent; size-weighting is secondary.
        if ra > rb:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size.pop(rb)
        return True

    def component_sizes(self) -> dict[int, int]:
        """Map of component id -> member count."""
        return {self.find(root): size for root, size in self._size.items()}

    def members(self) -> dict[int, list[int]]:
        """Map of component id -> sorted member keys."""
        grouped: dict[int, list[int]] = {}
        for key in self._parent:
            grouped.setdefault(self.find(key), []).append(key)
        for component in grouped.values():
            component.sort()
        return grouped


class ConflictGraph:
    """Symmetric conflict relation over ``n_events`` events."""

    def __init__(self, n_events: int, pairs: Iterable[tuple[int, int]] = ()) -> None:
        if n_events < 0:
            raise InvalidInstanceError(f"n_events must be >= 0, got {n_events}")
        self._n_events = n_events
        self._neighbors: list[set[int]] = [set() for _ in range(n_events)]
        self._pairs: set[tuple[int, int]] = set()
        for i, j in pairs:
            self.add_pair(i, j)

    @property
    def n_events(self) -> int:
        return self._n_events

    @property
    def pairs(self) -> frozenset[tuple[int, int]]:
        """The conflict set CF as canonical ``(min, max)`` pairs."""
        return frozenset(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def add_pair(self, i: int, j: int) -> None:
        """Register events ``i`` and ``j`` as conflicting."""
        self._check_event(i)
        self._check_event(j)
        if i == j:
            raise InvalidInstanceError(f"event {i} cannot conflict with itself")
        self._pairs.add((min(i, j), max(i, j)))
        self._neighbors[i].add(j)
        self._neighbors[j].add(i)

    def are_conflicting(self, i: int, j: int) -> bool:
        """True if events ``i`` and ``j`` are a conflicting pair."""
        self._check_event(i)
        self._check_event(j)
        return j in self._neighbors[i]

    def conflicts_with(self, event: int) -> frozenset[int]:
        """All events conflicting with ``event``."""
        self._check_event(event)
        return frozenset(self._neighbors[event])

    def conflicts_with_any(self, event: int, others: Iterable[int]) -> bool:
        """True if ``event`` conflicts with any event in ``others``.

        This is the hot-path check of Algorithms 1, 2 and 4 ("v does not
        conflict with u's matched events").
        """
        neighbors = self._neighbors[event]
        return any(other in neighbors for other in others)

    def independence_upper_bound(self) -> int:
        """An upper bound on the maximum independent set of events.

        Any feasible per-user event set is an independent set in the
        conflict graph, so this bounds how many events one user can ever
        attend. Computed as the size of a greedy clique partition: each
        clique contributes at most one vertex to any independent set.
        Exact on cliques and empty graphs, O(|V| * degree) in general.
        """
        unassigned = set(range(self._n_events))
        cliques = 0
        while unassigned:
            seed = min(unassigned)  # deterministic
            clique = {seed}
            # Grow a maximal clique among unassigned conflict-neighbours.
            candidates = self._neighbors[seed] & unassigned
            for vertex in sorted(candidates):
                if all(vertex in self._neighbors[member] for member in clique):
                    clique.add(vertex)
            unassigned -= clique
            cliques += 1
        return cliques

    def greedy_coloring(self) -> list[int]:
        """Assign each event a slot so conflicting events differ.

        Greedy Welsh-Powell colouring (highest conflict degree first,
        smallest available colour). Useful for turning a conflict graph
        back into a feasible timetable: events sharing a colour are
        mutually non-conflicting and can run in parallel. The number of
        colours used is an upper bound on the chromatic number and the
        assignment is deterministic.
        """
        order = sorted(
            range(self._n_events),
            key=lambda v: (-len(self._neighbors[v]), v),
        )
        colors = [-1] * self._n_events
        for vertex in order:
            taken = {colors[w] for w in self._neighbors[vertex] if colors[w] >= 0}
            color = 0
            while color in taken:
                color += 1
            colors[vertex] = color
        return colors

    def density(self) -> float:
        """|CF| divided by the number of event pairs (the paper's x-axis)."""
        if self._n_events < 2:
            return 0.0
        return len(self._pairs) / (self._n_events * (self._n_events - 1) / 2)

    def _check_event(self, event: int) -> None:
        if not 0 <= event < self._n_events:
            raise InvalidInstanceError(
                f"event {event} out of range [0, {self._n_events})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, n_events: int) -> "ConflictGraph":
        """No conflicts (CF = empty set); GEACC becomes polynomial."""
        return cls(n_events)

    @classmethod
    def complete(cls, n_events: int) -> "ConflictGraph":
        """Every pair conflicts; each user attends at most one event."""
        pairs = [
            (i, j) for i in range(n_events) for j in range(i + 1, n_events)
        ]
        return cls(n_events, pairs)

    @classmethod
    def random(
        cls, n_events: int, ratio: float, rng: np.random.Generator
    ) -> "ConflictGraph":
        """Sample ``ratio`` of all event pairs uniformly (Table II/III).

        Args:
            ratio: |CF| / (|V| (|V|-1) / 2), in [0, 1].
            rng: Numpy random generator (callers own the seed).
        """
        if not 0.0 <= ratio <= 1.0:
            raise InvalidInstanceError(f"conflict ratio must be in [0,1], got {ratio}")
        all_pairs = [
            (i, j) for i in range(n_events) for j in range(i + 1, n_events)
        ]
        count = round(ratio * len(all_pairs))
        if count == 0:
            return cls(n_events)
        chosen = rng.choice(len(all_pairs), size=count, replace=False)
        return cls(n_events, (all_pairs[k] for k in chosen))

    @classmethod
    def from_intervals(
        cls, intervals: Sequence[tuple[float, float]]
    ) -> "ConflictGraph":
        """Conflicts from overlapping time intervals.

        Args:
            intervals: One ``(start, end)`` per event, end > start. Two
                events conflict iff their intervals overlap (shared
                endpoints do not count as overlap: back-to-back events are
                attendable).
        """
        n = len(intervals)
        for start, end in intervals:
            if end <= start:
                raise InvalidInstanceError(
                    f"interval ({start}, {end}) must have end > start"
                )
        graph = cls(n)
        order = sorted(range(n), key=lambda k: intervals[k][0])
        for a in range(n):
            i = order[a]
            for b in range(a + 1, n):
                j = order[b]
                if intervals[j][0] >= intervals[i][1]:
                    break  # sorted by start; no later event can overlap i
                graph.add_pair(i, j)
        return graph

    @classmethod
    def from_schedule(
        cls,
        intervals: Sequence[tuple[float, float]],
        locations: Sequence[tuple[float, float]],
        travel_speed: float,
    ) -> "ConflictGraph":
        """Conflicts from overlap *or* infeasible travel time.

        Two non-overlapping events also conflict when the gap between them
        is shorter than the straight-line travel time between their venues
        (the paper's basketball-court example).
        """
        if travel_speed <= 0:
            raise InvalidInstanceError("travel_speed must be positive")
        if len(intervals) != len(locations):
            raise InvalidInstanceError("intervals and locations must align")
        graph = cls.from_intervals(intervals)
        n = len(intervals)
        for i in range(n):
            for j in range(i + 1, n):
                if graph.are_conflicting(i, j):
                    continue
                first, second = (i, j) if intervals[i][0] <= intervals[j][0] else (j, i)
                gap = intervals[second][0] - intervals[first][1]
                dx = locations[i][0] - locations[j][0]
                dy = locations[i][1] - locations[j][1]
                travel_time = (dx * dx + dy * dy) ** 0.5 / travel_speed
                if travel_time > gap:
                    graph.add_pair(i, j)
        return graph
