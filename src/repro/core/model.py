"""GEACC problem model: events, users, instances and arrangements.

An :class:`Instance` bundles everything Definition 5 of the paper needs:
events with capacities, users with capacities, the conflict set CF, and a
similarity oracle. Two construction paths are supported:

* :meth:`Instance.from_attributes` -- entities carry d-dimensional
  attribute vectors in ``[0, T]^d`` and similarity is computed by the
  paper's Eq. (1) (or another named metric). This is the path all
  experiments use. The full ``(|V|, |U|)`` similarity matrix is
  materialised lazily so scalability-scale instances (|U| in the tens of
  thousands) can be solved through index-backed neighbour streams without
  ever allocating it.
* :meth:`Instance.from_matrix` -- an explicit ``(|V|, |U|)`` similarity
  matrix, used by the paper's Table I toy example and by the Theorem 1
  reduction, where interestingness values are prescribed directly.

An :class:`Arrangement` is a mutable many-to-many matching ``M`` with both
directions indexed, tracking remaining capacities so the feasibility
checks of Algorithms 1, 2 and 4 are O(1) amortised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.similarity import similarity_matrix
from repro.exceptions import InvalidInstanceError

DEFAULT_T = 10_000.0


@dataclass(frozen=True)
class Event:
    """An event (Definition 1): attributes and a participant capacity."""

    index: int
    capacity: int
    attributes: tuple[float, ...] | None = None
    name: str | None = None


@dataclass(frozen=True)
class User:
    """A user (Definition 2): attributes and an assigned-event capacity."""

    index: int
    capacity: int
    attributes: tuple[float, ...] | None = None
    name: str | None = None


class Instance:
    """One GEACC problem instance (Definition 5).

    Prefer the :meth:`from_attributes` / :meth:`from_matrix` constructors.
    Either ``sims`` or both attribute arrays must be provided.
    """

    def __init__(
        self,
        event_capacities: np.ndarray,
        user_capacities: np.ndarray,
        conflicts: ConflictGraph | None = None,
        sims: np.ndarray | None = None,
        event_attributes: np.ndarray | None = None,
        user_attributes: np.ndarray | None = None,
        t: float = DEFAULT_T,
        metric: str = "euclidean",
        event_names: list[str] | None = None,
        user_names: list[str] | None = None,
        *,
        validate: bool = True,
    ) -> None:
        """``validate=False`` skips the O(|V|*|U|) value scans.

        Shape and capacity checks (cheap, and load-bearing for every
        solver) always run; only the finiteness/range scans over the
        similarity matrix and attribute arrays are elided. Reserved for
        arrays that already passed validation in this process tree --
        e.g. rehydrating shared-memory views in sweep workers
        (:mod:`repro.parallel.sharedmem`).
        """
        if sims is not None:
            sims = np.asarray(sims, dtype=np.float64)
            if sims.ndim != 2:
                raise InvalidInstanceError(f"sims must be 2-D, got shape {sims.shape}")
            if validate:
                if not np.all(np.isfinite(sims)):
                    raise InvalidInstanceError(
                        "similarities must be finite (no NaN/inf)"
                    )
                if np.any(sims < 0) or np.any(sims > 1):
                    raise InvalidInstanceError("similarities must lie in [0, 1]")
            n_events, n_users = sims.shape
        elif event_attributes is not None and user_attributes is not None:
            event_attributes = np.asarray(event_attributes, dtype=np.float64)
            user_attributes = np.asarray(user_attributes, dtype=np.float64)
            if event_attributes.ndim != 2 or user_attributes.ndim != 2:
                raise InvalidInstanceError("attribute arrays must be 2-D")
            if validate and (
                not np.all(np.isfinite(event_attributes))
                or not np.all(np.isfinite(user_attributes))
            ):
                raise InvalidInstanceError("attributes must be finite (no NaN/inf)")
            if event_attributes.shape[1] != user_attributes.shape[1]:
                raise InvalidInstanceError(
                    "event and user attributes must share dimensionality; got "
                    f"{event_attributes.shape[1]} vs {user_attributes.shape[1]}"
                )
            n_events = event_attributes.shape[0]
            n_users = user_attributes.shape[0]
        else:
            raise InvalidInstanceError(
                "provide either a similarity matrix or both attribute arrays"
            )
        self._sims = sims
        self.event_attributes = event_attributes
        self.user_attributes = user_attributes
        self.t = t
        self.metric = metric
        self._event_capacities = self._check_capacities(
            event_capacities, n_events, "event"
        )
        self._user_capacities = self._check_capacities(user_capacities, n_users, "user")
        if conflicts is None:
            conflicts = ConflictGraph.empty(n_events)
        if conflicts.n_events != n_events:
            raise InvalidInstanceError(
                f"conflict graph covers {conflicts.n_events} events, "
                f"instance has {n_events}"
            )
        self.conflicts = conflicts
        self._n_events = n_events
        self._n_users = n_users
        self._event_names = event_names
        self._user_names = user_names

    @staticmethod
    def _check_capacities(capacities, expected: int, kind: str) -> np.ndarray:
        raw = np.asarray(capacities)
        if raw.dtype.kind == "f":
            if not np.all(np.isfinite(raw)):
                raise InvalidInstanceError(
                    f"{kind} capacities must be finite (no NaN/inf)"
                )
            # Exact comparison on purpose: 3.0 is an integer count spelled
            # as a float and is accepted; 2.5 is a modelling error and must
            # not be silently truncated to 2.
            if np.any(raw != np.floor(raw)):  # geacc-lint: disable=R2 reason=integrality check; floor is exact for every float, tolerance would accept 2.5
                raise InvalidInstanceError(
                    f"{kind} capacities must be integral, got {raw!r}"
                )
        elif raw.dtype.kind not in "iub":
            raise InvalidInstanceError(
                f"{kind} capacities must be numeric, got dtype {raw.dtype}"
            )
        capacities = raw.astype(np.int64)
        if capacities.shape != (expected,):
            raise InvalidInstanceError(
                f"{kind} capacities must have shape ({expected},), "
                f"got {capacities.shape}"
            )
        if np.any(capacities < 0):
            raise InvalidInstanceError(f"{kind} capacities must be non-negative")
        return capacities

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_attributes(
        cls,
        event_attributes: np.ndarray,
        user_attributes: np.ndarray,
        event_capacities: np.ndarray,
        user_capacities: np.ndarray,
        conflicts: ConflictGraph | None = None,
        t: float = DEFAULT_T,
        metric: str = "euclidean",
    ) -> "Instance":
        """Build an instance from attribute vectors (the paper's setting).

        Args:
            event_attributes: ``(|V|, d)`` array in ``[0, T]^d``.
            user_attributes: ``(|U|, d)`` array in ``[0, T]^d``.
            t: The attribute bound ``T`` of Definitions 1-2.
            metric: Similarity metric name (``euclidean`` = Eq. 1).
        """
        return cls(
            event_capacities,
            user_capacities,
            conflicts,
            event_attributes=event_attributes,
            user_attributes=user_attributes,
            t=t,
            metric=metric,
        )

    @classmethod
    def from_matrix(
        cls,
        sims: np.ndarray,
        event_capacities: np.ndarray,
        user_capacities: np.ndarray,
        conflicts: ConflictGraph | None = None,
    ) -> "Instance":
        """Build an instance from an explicit interestingness matrix."""
        return cls(event_capacities, user_capacities, conflicts, sims=sims)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n_events(self) -> int:
        return self._n_events

    @property
    def n_users(self) -> int:
        return self._n_users

    @property
    def has_matrix(self) -> bool:
        """True once the similarity matrix has been materialised."""
        return self._sims is not None

    @property
    def sims(self) -> np.ndarray:
        """The full ``(|V|, |U|)`` similarity matrix (materialised lazily).

        On attribute-backed instances this allocates ``|V| * |U|`` floats;
        scalability-scale callers should prefer :meth:`sim` /
        :meth:`sim_row` / :meth:`sim_col`, which stay O(|V| + |U|).
        """
        if self._sims is None:
            self._sims = similarity_matrix(
                self.event_attributes, self.user_attributes, self.t, self.metric
            )
        return self._sims

    def attach_sims(self, sims: np.ndarray, *, validate: bool = True) -> None:
        """Adopt a pre-computed similarity matrix instead of materialising.

        The sharing hook: a sweep parent that already paid for the
        matrix (or mapped it from shared memory) attaches it so every
        solver on this instance reuses one physical array. With
        ``validate=False`` the O(|V|*|U|) value scans are skipped; the
        shape check always runs.
        """
        sims = np.asarray(sims, dtype=np.float64)
        if sims.shape != (self._n_events, self._n_users):
            raise InvalidInstanceError(
                f"sims shape {sims.shape} does not match instance "
                f"({self._n_events}, {self._n_users})"
            )
        if validate:
            if not np.all(np.isfinite(sims)):
                raise InvalidInstanceError("similarities must be finite (no NaN/inf)")
            if np.any(sims < 0) or np.any(sims > 1):
                raise InvalidInstanceError("similarities must lie in [0, 1]")
        self._sims = sims

    def sim(self, event: int, user: int) -> float:
        """Interestingness value of one (event, user) pair."""
        if self._sims is not None:
            return float(self._sims[event, user])
        row = similarity_matrix(
            self.event_attributes[event : event + 1],
            self.user_attributes[user : user + 1],
            self.t,
            self.metric,
        )
        return float(row[0, 0])

    def sim_row(self, event: int) -> np.ndarray:
        """Similarities of one event against all users, shape ``(|U|,)``."""
        if self._sims is not None:
            return self._sims[event]
        return similarity_matrix(
            self.event_attributes[event : event + 1],
            self.user_attributes,
            self.t,
            self.metric,
        )[0]

    def sim_col(self, user: int) -> np.ndarray:
        """Similarities of one user against all events, shape ``(|V|,)``."""
        if self._sims is not None:
            return self._sims[:, user]
        return similarity_matrix(
            self.event_attributes,
            self.user_attributes[user : user + 1],
            self.t,
            self.metric,
        )[:, 0]

    @property
    def event_capacities(self) -> np.ndarray:
        return self._event_capacities

    @property
    def user_capacities(self) -> np.ndarray:
        return self._user_capacities

    def event(self, index: int) -> Event:
        """Materialise one event as a dataclass (public API convenience)."""
        attrs = (
            tuple(self.event_attributes[index])
            if self.event_attributes is not None
            else None
        )
        name = self._event_names[index] if self._event_names else None
        return Event(index, int(self._event_capacities[index]), attrs, name)

    def user(self, index: int) -> User:
        """Materialise one user as a dataclass."""
        attrs = (
            tuple(self.user_attributes[index])
            if self.user_attributes is not None
            else None
        )
        name = self._user_names[index] if self._user_names else None
        return User(index, int(self._user_capacities[index]), attrs, name)

    def events(self) -> list[Event]:
        return [self.event(i) for i in range(self.n_events)]

    def users(self) -> list[User]:
        return [self.user(i) for i in range(self.n_users)]

    @property
    def max_user_capacity(self) -> int:
        """``max c_u`` -- the alpha of both approximation ratios."""
        if self._n_users == 0:
            return 0
        return int(self._user_capacities.max())

    @property
    def max_event_capacity(self) -> int:
        if self._n_events == 0:
            return 0
        return int(self._event_capacities.max())

    def delta_max(self) -> int:
        """``Delta_max = min(sum c_v, sum c_u)`` of Algorithm 1's sweep."""
        return int(min(self._event_capacities.sum(), self._user_capacities.sum()))

    def __repr__(self) -> str:
        return (
            f"Instance(|V|={self.n_events}, |U|={self.n_users}, "
            f"|CF|={len(self.conflicts)}, "
            f"max c_v={self.max_event_capacity}, max c_u={self.max_user_capacity})"
        )


class Arrangement:
    """A mutable event-participant matching ``M``.

    Tracks both directions plus remaining capacities. Mutators enforce
    nothing by themselves -- feasibility checking lives in
    :mod:`repro.core.validation` and in the algorithms' own guard
    conditions -- but :meth:`can_add` implements the exact guard the
    paper's pseudo-code repeats (capacity left on both sides, no conflict
    with the user's matched events).
    """

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self._events_of_user: list[set[int]] = [set() for _ in range(instance.n_users)]
        self._users_of_event: list[set[int]] = [
            set() for _ in range(instance.n_events)
        ]
        self._event_remaining = instance.event_capacities.copy()
        self._user_remaining = instance.user_capacities.copy()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, pair: tuple[int, int]) -> bool:
        event, user = pair
        return user in self._users_of_event[event]

    def events_of(self, user: int) -> frozenset[int]:
        """Events currently assigned to ``user``."""
        return frozenset(self._events_of_user[user])

    def users_of(self, event: int) -> frozenset[int]:
        """Users currently assigned to ``event``."""
        return frozenset(self._users_of_event[event])

    def event_remaining(self, event: int) -> int:
        """Remaining capacity of ``event``."""
        return int(self._event_remaining[event])

    def user_remaining(self, user: int) -> int:
        """Remaining capacity of ``user``."""
        return int(self._user_remaining[user])

    def pairs(self) -> list[tuple[int, int]]:
        """All matched ``(event, user)`` pairs, sorted for determinism."""
        return sorted(
            (event, user)
            for event, users in enumerate(self._users_of_event)
            for user in users
        )

    def can_add(self, event: int, user: int) -> bool:
        """The paper's feasibility guard for adding ``{v, u}``.

        True iff both sides have capacity left, the pair is unmatched, and
        ``event`` does not conflict with any event already matched to
        ``user``. (The ``sim > 0`` requirement is checked by callers since
        baselines and tests sometimes probe zero-sim pairs explicitly.)
        """
        if self._event_remaining[event] <= 0 or self._user_remaining[user] <= 0:
            return False
        if user in self._users_of_event[event]:
            return False
        return not self.instance.conflicts.conflicts_with_any(
            event, self._events_of_user[user]
        )

    def add(self, event: int, user: int) -> None:
        """Match ``{event, user}``; assumes the caller checked feasibility."""
        self._users_of_event[event].add(user)
        self._events_of_user[user].add(event)
        self._event_remaining[event] -= 1
        self._user_remaining[user] -= 1
        self._size += 1

    def remove(self, event: int, user: int) -> None:
        """Unmatch ``{event, user}``.

        Raises:
            KeyError: If the pair is not currently matched.
        """
        self._users_of_event[event].remove(user)
        self._events_of_user[user].remove(event)
        self._event_remaining[event] += 1
        self._user_remaining[user] += 1
        self._size -= 1

    def max_sum(self) -> float:
        """The objective ``MaxSum(M)`` (Definition 5)."""
        instance = self.instance
        if instance.has_matrix:
            sims = instance.sims
            return float(
                sum(
                    sims[event, user]
                    for event, users in enumerate(self._users_of_event)
                    for user in users
                )
            )
        return float(
            sum(
                instance.sim(event, user)
                for event, users in enumerate(self._users_of_event)
                for user in users
            )
        )

    def copy(self) -> "Arrangement":
        """Deep copy sharing the (immutable) instance."""
        clone = Arrangement(self.instance)
        for event, users in enumerate(self._users_of_event):
            for user in users:
                clone.add(event, user)
        return clone

    def __repr__(self) -> str:
        return f"Arrangement(|M|={self._size}, MaxSum={self.max_sum():.4f})"
