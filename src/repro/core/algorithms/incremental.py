"""Online (incremental) arrangement -- a dynamic-EBSN extension.

The paper arranges a static snapshot; real EBSNs see users arrive over
time and want an assignment *at registration time*. This extension
processes users in arrival order: each arriving user immediately receives
their best feasible events (greedy by similarity, respecting remaining
event capacities and conflicts), and assignments are never revoked.

This is the natural online counterpart of Greedy-GEACC and gives a
measurable "price of online-ness": the ablation benchmark
(``benchmarks/test_ablation_online.py``) compares it against the offline
algorithms on identical instances.

:class:`OnlineArranger` also exposes the streaming API directly
(:meth:`arrive`) so applications can interleave arrivals with queries.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.algorithms.base import Solver, register_solver
from repro.core.model import Arrangement, Instance
from repro.exceptions import BudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.budget import Budget


class OnlineArranger:
    """Streaming user-arrival arranger over a fixed event set.

    Args:
        instance: The full instance; only the *user* side is streamed.
            (Events, capacities and conflicts are known upfront, as they
            are on a real EBSN where organisers post events in advance.)
    """

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.arrangement = Arrangement(instance)
        self._arrived: set[int] = set()

    @property
    def arrived_users(self) -> frozenset[int]:
        return frozenset(self._arrived)

    def arrive(self, user: int) -> list[int]:
        """Process one user's arrival; returns the events assigned.

        The user greedily receives their most similar feasible events
        until their capacity is exhausted or no feasible event remains.

        Raises:
            ValueError: If the user already arrived.
        """
        if user in self._arrived:
            raise ValueError(f"user {user} already arrived")
        self._arrived.add(user)
        sims = self.instance.sim_col(user)
        assigned: list[int] = []
        for v in np.argsort(-sims, kind="stable"):
            v = int(v)
            if sims[v] <= 0:
                break
            if self.arrangement.user_remaining(user) <= 0:
                break
            if self.arrangement.can_add(v, user):
                self.arrangement.add(v, user)
                assigned.append(v)
        return assigned

    def max_sum(self) -> float:
        return self.arrangement.max_sum()


@register_solver("online-greedy")
class OnlineGreedyGEACC(Solver):
    """Batch wrapper: stream all users through an :class:`OnlineArranger`.

    Args:
        arrival_order: Permutation of user indices (default: index
            order). Pass a shuffled order to study arrival-order
            sensitivity.
    """

    def __init__(self, arrival_order: Sequence[int] | None = None) -> None:
        self._arrival_order = arrival_order

    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        order = (
            self._arrival_order
            if self._arrival_order is not None
            else range(instance.n_users)
        )
        arranger = OnlineArranger(instance)
        # One checkpoint per arrival; assignments are never revoked, so
        # on exhaustion the arrangement over the arrived prefix is the
        # (feasible) anytime answer.
        try:
            for user in order:
                if budget is not None:
                    budget.checkpoint()
                arranger.arrive(int(user))
        except BudgetExceededError:
            pass
        return arranger.arrangement
