"""GEACC solvers.

* :class:`~repro.core.algorithms.greedy.GreedyGEACC` -- Algorithm 2,
  ``1/(1 + max c_u)``-approximation, the paper's recommended method.
* :class:`~repro.core.algorithms.mincostflow.MinCostFlowGEACC` --
  Algorithm 1, ``1/max c_u``-approximation via a min-cost-flow sweep.
* :class:`~repro.core.algorithms.prune.PruneGEACC` -- Algorithms 3-4,
  exact branch-and-bound with the Lemma 6 pruning rule.
* :class:`~repro.core.algorithms.prune.ExhaustiveGEACC` -- the same
  search with pruning disabled (the Fig. 6 baseline).
* :class:`~repro.core.algorithms.random_baselines.RandomV` /
  :class:`~repro.core.algorithms.random_baselines.RandomU` -- the
  Section V random baselines.
* :class:`~repro.core.algorithms.local_search.LocalSearchGEACC` -- an
  extension: swap-based post-improvement over any base solver.

Use :func:`get_solver` / :data:`SOLVERS` to address solvers by name (the
experiment harness and CLI do).
"""

from repro.core.algorithms.base import SOLVERS, Solver, get_solver, register_solver
from repro.core.algorithms.greedy import GreedyGEACC
from repro.core.algorithms.mincostflow import MinCostFlowGEACC
from repro.core.algorithms.prune import ExhaustiveGEACC, PruneGEACC, SearchStats
from repro.core.algorithms.random_baselines import RandomU, RandomV
from repro.core.algorithms.local_search import LocalSearchGEACC
from repro.core.algorithms.incremental import OnlineArranger, OnlineGreedyGEACC
from repro.core.algorithms.ilp import ILPGEACC
from repro.core.algorithms.fair_greedy import FairGreedyGEACC

__all__ = [
    "SOLVERS",
    "Solver",
    "get_solver",
    "register_solver",
    "GreedyGEACC",
    "MinCostFlowGEACC",
    "PruneGEACC",
    "ExhaustiveGEACC",
    "SearchStats",
    "RandomV",
    "RandomU",
    "LocalSearchGEACC",
    "OnlineArranger",
    "OnlineGreedyGEACC",
    "ILPGEACC",
    "FairGreedyGEACC",
]
