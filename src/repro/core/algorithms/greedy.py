"""Greedy-GEACC (Algorithm 2): the paper's scalable approximation.

The algorithm maintains a heap ``H`` of candidate (event, user) pairs --
at most one "frontier" pair per unfinished node -- and repeatedly pops the
globally most similar pair, adding it to the matching when feasible. After
every pop, the popped pair's event and user each advance to their *next
feasible unvisited nearest neighbour* and push that pair into H unless it
is already there. Conflicts are avoided from the start (unlike
MinCostFlow-GEACC, which repairs them afterwards).

Guarantee: ``MaxSum(M) >= MaxSum(M_OPT) / (1 + max c_u)`` (Theorem 3).

Two monotonicity facts keep the neighbour scan amortised-linear:
capacities only decrease and matched-event sets only grow, so a pair that
is infeasible now is infeasible forever and can be skipped permanently.
Pairs currently sitting in H, however, must *not* be skipped -- the paper
keeps the node's frontier pointing at them until they are popped
(Example 3) -- so each cursor distinguishes "advance past" from "hold".
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import islice
from typing import TYPE_CHECKING

from repro.core.algorithms.base import Solver, register_solver
from repro.core.algorithms.neighbors import NeighborOrders, neighbor_orders_for
from repro.core.model import Arrangement, Instance
from repro.exceptions import BudgetExceededError
from repro.index.pairheap import CandidatePairHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.budget import Budget


class _Cursor:
    """Frontier over one node's descending-similarity neighbour stream.

    Candidates are pulled from the stream in geometrically growing
    chunks (1, 4, 16, then 64 at a time) instead of one ``next()`` per
    peek: a node whose neighbourhood is dense with visited/infeasible
    pairs skips through them on a plain list walk instead of resuming a
    generator per pair. The first pull is deliberately a single item --
    :meth:`IndexNeighborOrders.user_stream` serves its first neighbour
    from one argmax and only pays the argsort when a second is demanded,
    and Algorithm 2's initialisation peeks *every* user's cursor once.
    """

    __slots__ = ("_stream", "_buffer", "_pos", "_chunk", "current", "done")

    #: Largest single pull; bounds per-cursor buffer memory.
    CHUNK_CAP = 64

    def __init__(self, stream: Iterator[tuple[int, float]]) -> None:
        self._stream = stream
        self._buffer: list[tuple[int, float]] = []
        self._pos = 0
        self._chunk = 1
        self.current: tuple[int, float] | None = None
        self.done = False

    def peek(self) -> tuple[int, float] | None:
        """Current candidate, pulling a chunk from the stream when empty."""
        if self.done:
            return None
        if self.current is None:
            if self._pos >= len(self._buffer):
                self._buffer = list(islice(self._stream, self._chunk))
                self._pos = 0
                self._chunk = min(self._chunk * 4, self.CHUNK_CAP)
                if not self._buffer:
                    self.finish()  # releases the exhausted stream's state
                    return None
            self.current = self._buffer[self._pos]
            self._pos += 1
        return self.current

    def skip(self) -> None:
        """Advance permanently past the current candidate."""
        self.current = None

    def finish(self) -> None:
        """Mark the stream exhausted and release its resources."""
        self.current = None
        self.done = True
        self._stream = iter(())
        self._buffer = []
        self._pos = 0


@register_solver("greedy")
class GreedyGEACC(Solver):
    """Algorithm 2 of the paper.

    Args:
        index_kind: Force index-backed neighbour streams of this
            :mod:`repro.index` kind; None auto-selects (similarity-matrix
            argsort for ordinary sizes, chunked index streams for
            scalability-scale attribute instances).
    """

    def __init__(self, index_kind: str | None = None) -> None:
        self._index_kind = index_kind

    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        orders = neighbor_orders_for(instance, self._index_kind, budget=budget)
        return self._run(instance, orders, budget)

    def solve_with_orders(
        self,
        instance: Instance,
        orders: NeighborOrders,
        budget: "Budget | None" = None,
    ) -> Arrangement:
        """Solve with a caller-provided neighbour-order provider.

        Prune-GEACC reuses this to share one provider between its greedy
        warm start and its own NN scans.
        """
        return self._run(instance, orders, budget)

    def _run(
        self,
        instance: Instance,
        orders: NeighborOrders,
        budget: "Budget | None" = None,
    ) -> Arrangement:
        arrangement = Arrangement(instance)
        heap = CandidatePairHeap()
        visited: set[tuple[int, int]] = set()
        event_cursors = [
            _Cursor(orders.event_stream(v)) for v in range(instance.n_events)
        ]
        user_cursors = [_Cursor(orders.user_stream(u)) for u in range(instance.n_users)]

        # Candidate generation itself may hold a zero-weight handle on the
        # budget (chunked matrix streams probe the deadline per chunk), so
        # every refill below can raise; any whole arrangement state is
        # feasible, making "return what we have" correct everywhere.
        try:
            # Initialisation (Algorithm 2, lines 1-9): each side's first NN.
            for v in range(instance.n_events):
                if instance.event_capacities[v] > 0:
                    self._refill_event(v, arrangement, heap, visited, event_cursors)
            for u in range(instance.n_users):
                if instance.user_capacities[u] > 0:
                    self._refill_user(u, arrangement, heap, visited, user_cursors)

            # Iteration (lines 11-23). Saturated nodes' cursors are closed
            # eagerly so their stream state (index scans, sorted columns) is
            # released -- at scalability sizes that is most of the footprint.
            # One checkpoint per pop; every intermediate arrangement is
            # feasible, so on exhaustion the current matching is the answer.
            while heap:
                if budget is not None:
                    budget.checkpoint()
                v, u, sim = heap.pop()
                visited.add((v, u))
                if sim > 0 and arrangement.can_add(v, u):
                    arrangement.add(v, u)
                if arrangement.event_remaining(v) > 0:
                    self._refill_event(v, arrangement, heap, visited, event_cursors)
                else:
                    event_cursors[v].finish()
                if arrangement.user_remaining(u) > 0:
                    self._refill_user(u, arrangement, heap, visited, user_cursors)
                else:
                    user_cursors[u].finish()
        except BudgetExceededError:
            return arrangement
        return arrangement

    def _refill_event(
        self,
        v: int,
        arrangement: Arrangement,
        heap: CandidatePairHeap,
        visited: set[tuple[int, int]],
        cursors: list[_Cursor],
    ) -> None:
        """Push {v, v's next feasible unvisited NN} into H if not present."""
        cursor = cursors[v]
        if cursor.done:
            return  # v is a finished node; don't touch heap or conflicts
        conflicts = arrangement.instance.conflicts
        while True:
            candidate = cursor.peek()
            if candidate is None:
                return  # v is a finished node
            u, sim = candidate
            if sim <= 0:
                cursor.finish()
                return
            if (v, u) in visited:
                cursor.skip()
                continue
            if arrangement.user_remaining(u) <= 0 or conflicts.conflicts_with_any(
                v, arrangement.events_of(u)
            ):
                # Infeasible now implies infeasible forever; skip for good.
                cursor.skip()
                continue
            # A pair ever pushed and no longer in H was popped, and every
            # popped pair is in `visited` -- so reaching here, push() only
            # dedups against pairs still sitting in H, which is exactly
            # the old contains() pre-check in one heap probe. Whether
            # pushed or already present, the frontier stays here until
            # the pair is popped.
            heap.push(v, u, sim)
            return

    def _refill_user(
        self,
        u: int,
        arrangement: Arrangement,
        heap: CandidatePairHeap,
        visited: set[tuple[int, int]],
        cursors: list[_Cursor],
    ) -> None:
        """Push {u's next feasible unvisited NN, u} into H if not present."""
        cursor = cursors[u]
        if cursor.done:
            return
        conflicts = arrangement.instance.conflicts
        matched: frozenset[int] | None = None
        while True:
            candidate = cursor.peek()
            if candidate is None:
                return
            v, sim = candidate
            if sim <= 0:
                cursor.finish()
                return
            if (v, u) in visited:
                cursor.skip()
                continue
            if matched is None:
                # Deferred past the peek: an exhausted stream never pays
                # for u's matched-event snapshot. The arrangement is
                # frozen for the duration of the call, so once is enough.
                matched = arrangement.events_of(u)
            if arrangement.event_remaining(v) <= 0 or conflicts.conflicts_with_any(
                v, matched
            ):
                cursor.skip()
                continue
            heap.push(v, u, sim)
            return
