"""Fairness-aware greedy arrangement (extension beyond the paper).

MaxSum can concentrate value on a few lucky users: the globally most
similar pairs often involve the same well-positioned users, leaving the
tail unmatched. This extension trades a little MaxSum for coverage by
discounting a candidate pair's priority by how much the user already
received:

    priority(v, u) = sim(v, u) / (1 + fairness * satisfaction(u))

With ``fairness = 0`` this is exactly Greedy-GEACC's selection rule; as
``fairness`` grows, users with assignments are deprioritised and coverage
(matched users, satisfaction Gini) improves. The ablation benchmark
``benchmarks/test_ablation_fairness.py`` traces that frontier.

Implementation note: priorities change whenever a user receives an
event, so the single-pass heap of Algorithm 2 no longer applies; this
solver instead runs rounds of a priority queue with lazy re-validation
(pop, recompute priority, re-push if stale) -- the standard pattern for
greedy with decaying keys. It remains deterministic.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.core.algorithms.base import Solver, register_solver
from repro.core.model import Arrangement, Instance
from repro.exceptions import BudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.budget import Budget


@register_solver("fair-greedy")
class FairGreedyGEACC(Solver):
    """Greedy arrangement with satisfaction-discounted priorities.

    Args:
        fairness: Discount strength (>= 0). 0 reproduces plain greedy
            selection; 1-5 noticeably flattens the satisfaction
            distribution.
    """

    def __init__(self, fairness: float = 1.0) -> None:
        if fairness < 0:
            raise ValueError(f"fairness must be >= 0, got {fairness}")
        self._fairness = fairness

    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        arrangement = Arrangement(instance)
        if instance.n_events == 0 or instance.n_users == 0:
            return arrangement
        satisfaction = np.zeros(instance.n_users)

        # Seed the queue with every positive pair at its initial priority.
        # Entries carry the satisfaction level they were computed at; a
        # popped entry whose user satisfaction moved on is stale and gets
        # re-pushed at its current priority instead of being applied.
        heap: list[tuple[float, int, int, float]] = []
        sims = instance.sims
        for v in range(instance.n_events):
            row = sims[v]
            for u in np.nonzero(row > 0)[0]:
                u = int(u)
                heapq.heappush(heap, (-row[u], v, u, 0.0))

        fairness = self._fairness
        # One checkpoint per pop; the arrangement grows monotonically and
        # is feasible after every add, so exhaustion returns it as-is.
        while heap:
            if budget is not None:
                try:
                    budget.checkpoint()
                except BudgetExceededError:
                    return arrangement
            neg_priority, v, u, seen_satisfaction = heapq.heappop(heap)
            if arrangement.event_remaining(v) <= 0:
                continue
            if arrangement.user_remaining(u) <= 0:
                continue
            # Exact inequality is intended: seen_satisfaction is a
            # bit-for-bit copy of satisfaction[u] at push time, so any
            # difference -- however small -- means the entry is stale.
            if satisfaction[u] != seen_satisfaction:  # geacc-lint: disable=R2 reason=staleness probe against a bit-for-bit copy; any difference means stale
                # Stale priority: recompute and re-queue.
                priority = float(sims[v, u]) / (1.0 + fairness * satisfaction[u])
                heapq.heappush(heap, (-priority, v, u, float(satisfaction[u])))
                continue
            if not arrangement.can_add(v, u):
                continue
            arrangement.add(v, u)
            satisfaction[u] += float(sims[v, u])
        return arrangement
