"""Prune-GEACC (Algorithms 3-4): exact branch-and-bound search.

The search enumerates the matched/unmatched state of every (event, user)
pair, visiting events in non-increasing ``s_v * c_v`` order (``s_v`` = the
event's best similarity) and, within an event, users in non-increasing
similarity. Lemma 6 gives the pruning rule: a partial matching cannot beat
the incumbent when

    MaxSum(M_visited) + sum_remain + sim(v, u) * c_v_remaining
        <= MaxSum(M_best)

where ``sum_remain`` upper-bounds everything later events can contribute
(``sum of s_v * c_v``). The incumbent is warm-started with Greedy-GEACC so
pruning bites from the first recursion levels.

:class:`ExhaustiveGEACC` is the same recursion with the bound checks (and
by default the warm start) disabled -- the "exhaustive search without
pruning" baseline of Fig. 6. Both record the instrumentation the paper
plots: number of Search invocations, number of complete searches, and the
depths at which pruning fired.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.algorithms.base import Solver, register_solver
from repro.core.algorithms.greedy import GreedyGEACC
from repro.core.model import Arrangement, Instance
from repro.exceptions import BudgetExceededError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.budget import Budget

_EPS = 1e-12


@dataclass
class SearchStats:
    """Instrumentation for one Prune-GEACC / exhaustive run (Fig. 6)."""

    invocations: int = 0
    complete_searches: int = 0
    prune_depths: list[int] = field(default_factory=list)
    max_depth: int = 0

    @property
    def prune_count(self) -> int:
        return len(self.prune_depths)

    @property
    def average_prune_depth(self) -> float:
        """Average recursion depth at which pruning fired (Fig. 6a)."""
        if not self.prune_depths:
            return 0.0
        return sum(self.prune_depths) / len(self.prune_depths)


@register_solver("prune")
class PruneGEACC(Solver):
    """Exact GEACC solver (Algorithms 3-4).

    Args:
        greedy_seed: Warm-start the incumbent with Greedy-GEACC (the
            paper's line 1; the ablation benchmark turns this off).
        prune: Apply the Lemma 6 bound (False = exhaustive search).
        bound: ``paper`` (the literal Lemma 6 bound: each remaining event
            contributes at most ``s_v * c_v``) or ``tight``, an extension
            that strengthens the bound two ways while remaining
            admissible: (1) event-side terms become top-k prefix sums (a
            remaining event contributes at most the sum of its ``c_v``
            best similarities; the current event at most its next
            ``c_v_remaining`` unvisited similarities), and (2) the whole
            remaining contribution is additionally capped user-side by
            ``sum_u remaining_capacity(u) * s_u`` with ``s_u`` the user's
            best similarity (maintained O(1) per match). The optimum is
            unchanged; ``tight`` prunes far more aggressively (see
            ``benchmarks/test_ablation_bound.py``).
        invocation_limit: Optional hard cap on Search invocations;
            exceeding it raises :class:`ReproError`. A guard for property
            tests on instances that turn out to be too big.

    After :meth:`solve`, :attr:`stats` holds the last run's counters.
    """

    def __init__(
        self,
        greedy_seed: bool = True,
        prune: bool = True,
        bound: str = "paper",
        invocation_limit: int | None = None,
    ) -> None:
        if bound not in ("paper", "tight"):
            raise ValueError(f"unknown bound {bound!r}; expected paper or tight")
        self._greedy_seed = greedy_seed
        self._prune = prune
        self._bound = bound
        self._invocation_limit = invocation_limit
        self.stats = SearchStats()

    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        self.stats = SearchStats()
        n_events, n_users = instance.n_events, instance.n_users
        if n_events == 0 or n_users == 0:
            return Arrangement(instance)

        sims = instance.sims
        # Per-event neighbour lists: users in non-increasing similarity.
        nn_order = np.argsort(-sims, axis=1, kind="stable")
        nn_sims = np.take_along_axis(sims, nn_order, axis=1)
        s_v = nn_sims[:, 0]  # similarity to each event's 1-NN

        # L: events in non-increasing s_v * c_v (index tie-break). The
        # visit order follows the paper in both bound modes.
        paper_weights = s_v * instance.event_capacities
        order = sorted(range(n_events), key=lambda v: (-paper_weights[v], v))

        # Prefix sums of each event's sorted similarities; prefix[v, k] is
        # the sum of v's k best sims. Used by the "tight" bound.
        prefix = np.concatenate(
            [np.zeros((n_events, 1)), np.cumsum(nn_sims, axis=1)], axis=1
        )
        if self._bound == "tight":
            top_k = np.minimum(instance.event_capacities, n_users)
            weights = prefix[np.arange(n_events), top_k]
        else:
            weights = paper_weights

        if self._greedy_seed:
            best = GreedyGEACC().solve(instance)
        else:
            best = Arrangement(instance)
        best_sum = best.max_sum()

        state = _SearchState(
            instance=instance,
            order=order,
            nn_order=nn_order,
            nn_sims=nn_sims,
            weights=weights,
            prefix=prefix,
            tight=self._bound == "tight",
            prune=self._prune,
            invocation_limit=self._invocation_limit,
            stats=self.stats,
            best=best,
            best_sum=best_sum,
            budget=budget,
        )
        state.sum_remain = float(sum(weights[v] for v in order[1:]))

        needed = n_events * n_users * 2 + 1000
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        try:
            state.search(0, 0, depth=1)
        except BudgetExceededError:
            # Anytime semantics: the incumbent is feasible at every node
            # (it only ever changes on complete searches), and with the
            # warm start it is never worse than the Greedy seed -- the
            # degradation floor the harness advertises.
            pass
        return state.best


@register_solver("exhaustive")
class ExhaustiveGEACC(PruneGEACC):
    """Exhaustive state enumeration -- Fig. 6's no-pruning baseline."""

    def __init__(self, invocation_limit: int | None = None) -> None:
        super().__init__(
            greedy_seed=False, prune=False, invocation_limit=invocation_limit
        )


class _SearchState:
    """Mutable recursion state shared across Search-GEACC levels."""

    def __init__(
        self,
        instance: Instance,
        order: list[int],
        nn_order: np.ndarray,
        nn_sims: np.ndarray,
        weights: np.ndarray,
        prefix: np.ndarray,
        tight: bool,
        prune: bool,
        invocation_limit: int | None,
        stats: SearchStats,
        best: Arrangement,
        best_sum: float,
        budget: "Budget | None" = None,
    ) -> None:
        self.instance = instance
        self.order = order
        self.nn_order = nn_order
        self.nn_sims = nn_sims
        self.weights = weights
        self.prefix = prefix
        self.tight = tight
        self.prune = prune
        self.invocation_limit = invocation_limit
        self.stats = stats
        self.budget = budget
        self.best = best
        self.best_sum = best_sum
        self.current = Arrangement(instance)
        self.current_sum = 0.0
        self.sum_remain = 0.0
        self.n_events = instance.n_events
        self.n_users = instance.n_users
        # User-side cap for the tight bound: remaining matching value is
        # at most sum_u realizable_remaining(u) * (u's best sim anywhere),
        # where a user's realizable event count is capped both by c_u and
        # by the conflict graph's independence bound (their events must
        # form an independent set).
        sims = instance.sims
        self.user_best = sims.max(axis=0) if self.n_events else np.zeros(0)
        if self.tight:
            independence_cap = instance.conflicts.independence_upper_bound()
            effective = np.minimum(instance.user_capacities, independence_cap)
        else:
            effective = instance.user_capacities
        self.user_term = float((effective * self.user_best).sum())

    def search(self, v_pos: int, u_pos: int, depth: int) -> None:
        """Algorithm 4: enumerate both states of pair (L[v_pos], u_pos-NN)."""
        stats = self.stats
        stats.invocations += 1
        if self.budget is not None:
            # Raises BudgetExceededError; caught in PruneGEACC.solve,
            # which returns the incumbent (anytime best-so-far).
            self.budget.checkpoint()
        if self.invocation_limit is not None and stats.invocations > self.invocation_limit:
            raise ReproError(
                f"Search-GEACC exceeded invocation limit {self.invocation_limit}"
            )
        stats.max_depth = max(stats.max_depth, depth)
        v = self.order[v_pos]
        u = int(self.nn_order[v, u_pos])
        sim = float(self.nn_sims[v, u_pos])

        # Matched branch (lines 3-19).
        if sim > 0 and self.current.can_add(v, u):
            self.current.add(v, u)
            self.current_sum += sim
            self.user_term -= self.user_best[u]
            self._advance(v_pos, u_pos, depth)
            self.current.remove(v, u)
            self.current_sum -= sim
            self.user_term += self.user_best[u]

        # Unmatched branch (line 20).
        self._advance(v_pos, u_pos, depth)

    def _advance(self, v_pos: int, u_pos: int, depth: int) -> None:
        """Lines 6-17: move to the next pair, checking the Lemma 6 bound."""
        v = self.order[v_pos]
        if u_pos == self.n_users - 1 or self.current.event_remaining(v) == 0:
            if v_pos == self.n_events - 1:
                self.stats.complete_searches += 1
                if self.current_sum > self.best_sum + _EPS:
                    self.best = self.current.copy()
                    self.best_sum = self.current_sum
                return
            next_weight = float(self.weights[self.order[v_pos + 1]])
            event_side = self.sum_remain
            if self.tight:
                event_side = min(event_side, self.user_term)
            if not self.prune or self.current_sum + event_side > self.best_sum + _EPS:
                self.sum_remain -= next_weight
                self.search(v_pos + 1, 0, depth + 1)
                self.sum_remain += next_weight
            else:
                self.stats.prune_depths.append(depth)
            return
        remaining = self.current.event_remaining(v)
        if self.tight:
            # Sum of the next `remaining` unvisited sims of v -- a valid
            # and strictly tighter cap on v's future contribution -- and
            # the user-side capacity cap on everything still to come.
            start = u_pos + 1
            stop = min(start + remaining, self.n_users)
            event_term = float(self.prefix[v, stop] - self.prefix[v, start])
            future = min(self.sum_remain + event_term, self.user_term)
        else:
            future = self.sum_remain + float(self.nn_sims[v, u_pos + 1]) * remaining
        bound = self.current_sum + future
        if not self.prune or bound > self.best_sum + _EPS:
            self.search(v_pos, u_pos + 1, depth + 1)
        else:
            self.stats.prune_depths.append(depth)
