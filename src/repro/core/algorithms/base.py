"""Solver interface and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import Any

from repro.core.model import Arrangement, Instance

SOLVERS: dict[str, type["Solver"]] = {}


def register_solver(name: str) -> Callable[[type["Solver"]], type["Solver"]]:
    """Class decorator adding a solver to the global registry."""

    def decorate(cls: type["Solver"]) -> type["Solver"]:
        if name in SOLVERS:
            raise ValueError(f"solver name {name!r} already registered")
        SOLVERS[name] = cls
        cls.name = name
        return cls

    return decorate


def get_solver(name: str, **kwargs: Any) -> "Solver":
    """Instantiate a registered solver by name.

    Args:
        name: Registry key (e.g. ``greedy``, ``mincostflow``, ``prune``).
        **kwargs: Forwarded to the solver constructor.
    """
    try:
        cls = SOLVERS[name]
    except KeyError:
        known = ", ".join(sorted(SOLVERS))
        raise ValueError(f"unknown solver {name!r}; registered: {known}")
    return cls(**kwargs)


class Solver(ABC):
    """A GEACC solver: turns an :class:`Instance` into an arrangement.

    Solvers are stateless across calls (construct once, solve many
    instances); any per-solve state lives inside :meth:`solve`.
    """

    name: str = "abstract"

    @abstractmethod
    def solve(self, instance: Instance) -> Arrangement:
        """Return a feasible arrangement for ``instance``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
