"""Solver interface and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.core.model import Arrangement, Instance

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime cycle)
    from repro.robustness.budget import Budget

SOLVERS: dict[str, type["Solver"]] = {}


def register_solver(name: str) -> Callable[[type["Solver"]], type["Solver"]]:
    """Class decorator adding a solver to the global registry."""

    def decorate(cls: type["Solver"]) -> type["Solver"]:
        if name in SOLVERS:
            raise ValueError(f"solver name {name!r} already registered")
        SOLVERS[name] = cls
        cls.name = name
        return cls

    return decorate


def get_solver(name: str, **kwargs: Any) -> "Solver":
    """Instantiate a registered solver by name.

    Args:
        name: Registry key (e.g. ``greedy``, ``mincostflow``, ``prune``).
        **kwargs: Forwarded to the solver constructor.
    """
    try:
        cls = SOLVERS[name]
    except KeyError:
        known = ", ".join(sorted(SOLVERS))
        raise ValueError(f"unknown solver {name!r}; registered: {known}")
    return cls(**kwargs)


class Solver(ABC):
    """A GEACC solver: turns an :class:`Instance` into an arrangement.

    Solvers are stateless across calls (construct once, solve many
    instances); any per-solve state lives inside :meth:`solve`.

    **Budget contract (anytime semantics).** ``solve`` accepts an
    optional cooperative :class:`~repro.robustness.budget.Budget`. A
    budget-aware solver must (a) call ``budget.checkpoint()`` once per
    unit of work in its hot loop, (b) catch the resulting
    :class:`~repro.exceptions.BudgetExceededError` *inside* ``solve``,
    and (c) return its feasible best-so-far arrangement instead of
    raising. The solver's intermediate state must therefore stay
    feasible at every checkpoint. Solvers that ignore the budget remain
    correct -- they just cannot be preempted; the harness
    (:mod:`repro.robustness.harness`) degrades an escaped exhaustion to
    the empty arrangement.
    """

    name: str = "abstract"

    @abstractmethod
    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        """Return a feasible arrangement for ``instance``.

        Args:
            instance: The GEACC instance.
            budget: Optional cooperative execution budget; on exhaustion
                the solver returns its feasible best-so-far (see class
                docstring).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
