"""Neighbour-order providers for Greedy-GEACC and Prune-GEACC.

Both algorithms consume, per event and per user, the counterpart side in
non-increasing similarity order ("find its next feasible unvisited NN").
The paper abstracts this as a k-NN oracle with per-query cost sigma(S) and
names iDistance / VA-file as candidate indexes.

Two providers implement the oracle:

* :class:`MatrixNeighborOrders` -- argsorts rows/columns of the
  materialised similarity matrix lazily (one sort per node, on first
  use). Exact and fastest at benchmark scales.
* :class:`IndexNeighborOrders` -- wraps a :mod:`repro.index` structure
  over the raw attribute vectors and converts ascending-distance streams
  to descending-similarity streams via the monotone Eq. (1) map. Never
  materialises the |V| x |U| matrix, which is what makes the Fig. 5
  scalability runs possible.

:func:`neighbor_orders_for` picks a sensible default for an instance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

import numpy as np

from repro.core.model import Instance
from repro.index import make_index

# Above this many cells, prefer index streams over materialising the matrix.
_MATRIX_CELL_LIMIT = 20_000_000


class NeighborOrders(ABC):
    """Produces per-node descending-similarity neighbour streams."""

    @abstractmethod
    def event_stream(self, event: int) -> Iterator[tuple[int, float]]:
        """Yield ``(user, sim)`` for one event, sim non-increasing."""

    @abstractmethod
    def user_stream(self, user: int) -> Iterator[tuple[int, float]]:
        """Yield ``(event, sim)`` for one user, sim non-increasing."""


class MatrixNeighborOrders(NeighborOrders):
    """Argsort-based provider over the instance's similarity matrix."""

    def __init__(self, instance: Instance) -> None:
        self._sims = instance.sims

    def event_stream(self, event: int) -> Iterator[tuple[int, float]]:
        row = self._sims[event]
        for user in np.argsort(-row, kind="stable"):
            yield int(user), float(row[user])

    def user_stream(self, user: int) -> Iterator[tuple[int, float]]:
        col = self._sims[:, user]
        for event in np.argsort(-col, kind="stable"):
            yield int(event), float(col[event])


class IndexNeighborOrders(NeighborOrders):
    """Index-backed provider over attribute vectors (matrix-free).

    The *user* side of an instance is typically two to three orders of
    magnitude larger than the event side, so the two stream directions
    get different machinery: event streams (over the big user set) come
    from a lazy :mod:`repro.index` structure, while user streams (over
    the small event set) simply materialise one similarity column with a
    vectorised pass plus argsort -- O(|V|) memory per live stream and far
    less per-item overhead than a generator chain. Both remain
    matrix-free.

    Args:
        instance: Must be attribute-backed with the Euclidean metric --
            the distance-to-similarity conversion relies on Eq. (1)'s
            monotonicity.
        index_kind: A :mod:`repro.index` kind name (for event streams).
    """

    def __init__(self, instance: Instance, index_kind: str = "chunked") -> None:
        if instance.event_attributes is None or instance.user_attributes is None:
            raise ValueError("IndexNeighborOrders requires attribute-backed instances")
        if instance.metric != "euclidean":
            raise ValueError(
                "index-backed neighbour streams require the Euclidean metric, "
                f"instance uses {instance.metric!r}"
            )
        self._instance = instance
        d = instance.event_attributes.shape[1]
        self._max_dist = float(np.sqrt(d) * instance.t)
        self._user_index = make_index(index_kind, instance.user_attributes)
        self._event_attrs = instance.event_attributes

    def _to_sim(self, dist: float) -> float:
        return max(0.0, min(1.0, 1.0 - dist / self._max_dist))

    def event_stream(self, event: int) -> Iterator[tuple[int, float]]:
        for user, dist in self._user_index.stream(self._event_attrs[event]):
            yield user, self._to_sim(dist)

    def user_stream(self, user: int) -> Iterator[tuple[int, float]]:
        # Algorithm 2's initialisation touches *every* user's stream for
        # its first NN, so the first item must be cheap: one vectorised
        # column + argmax. The full sorted order is only built if the
        # consumer comes back for a second neighbour (argmax and stable
        # argsort break ties identically: lowest index first).
        instance = self._instance

        def generate() -> Iterator[tuple[int, float]]:
            sims = instance.sim_col(user)
            if sims.shape[0] == 0:
                return
            best = int(np.argmax(sims))
            yield best, float(sims[best])
            # Compact int32/float64 arrays, not Python lists: thousands of
            # these generators are alive at once at scalability sizes.
            order = np.argsort(-sims, kind="stable").astype(np.int32)
            ordered_sims = sims[order]
            for position in range(1, order.shape[0]):
                yield int(order[position]), float(ordered_sims[position])

        return generate()


def neighbor_orders_for(
    instance: Instance, index_kind: str | None = None
) -> NeighborOrders:
    """Choose a provider for ``instance``.

    Args:
        index_kind: Force an index-backed provider of this kind; None
            picks the matrix provider unless the matrix would be huge and
            the instance is attribute-backed.
    """
    if index_kind is not None:
        return IndexNeighborOrders(instance, index_kind)
    cells = instance.n_events * instance.n_users
    attribute_backed = (
        instance.event_attributes is not None
        and instance.user_attributes is not None
        and instance.metric == "euclidean"
    )
    if attribute_backed and not instance.has_matrix and cells > _MATRIX_CELL_LIMIT:
        return IndexNeighborOrders(instance, "chunked")
    return MatrixNeighborOrders(instance)
