"""Neighbour-order providers for Greedy-GEACC and Prune-GEACC.

Both algorithms consume, per event and per user, the counterpart side in
non-increasing similarity order ("find its next feasible unvisited NN").
The paper abstracts this as a k-NN oracle with per-query cost sigma(S) and
names iDistance / VA-file as candidate indexes.

Two providers implement the oracle:

* :class:`MatrixNeighborOrders` -- chunked vectorised top-k over
  rows/columns of the materialised similarity matrix (geometrically
  growing blocks, computed on demand). Exact and fastest at benchmark
  scales.
* :class:`IndexNeighborOrders` -- wraps a :mod:`repro.index` structure
  over the raw attribute vectors and converts ascending-distance streams
  to descending-similarity streams via the monotone Eq. (1) map. Never
  materialises the |V| x |U| matrix, which is what makes the Fig. 5
  scalability runs possible.

:func:`neighbor_orders_for` picks a sensible default for an instance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

import numpy as np

from typing import TYPE_CHECKING

from repro.core.model import Instance
from repro.core.similarity import top_k_descending
from repro.index import make_index

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.budget import Budget

# Above this many cells, prefer index streams over materialising the matrix.
_MATRIX_CELL_LIMIT = 20_000_000

#: Chunk growth for :func:`_chunked_descending`: first pull is a single
#: argpartition (Algorithm 2's initialisation peeks every cursor once),
#: later pulls grow geometrically so a deeply-consumed stream converges
#: to one stable argsort's worth of work.
_FIRST_CHUNK = 1
_CHUNK_GROWTH = 8
_CHUNK_FLOOR = 64


def _chunked_descending(
    values: np.ndarray, budget: "Budget | None" = None
) -> Iterator[tuple[int, float]]:
    """Yield ``(index, value)`` by non-increasing value, index tie-break.

    The order is exactly ``np.argsort(-values, kind="stable")`` --
    :func:`top_k_descending` guarantees every prefix matches it, ties
    included -- but it is computed in geometrically growing chunks, so a
    consumer that stops after a few items pays O(n) argpartitions instead
    of a full O(n log n) sort, and each chunk is one vectorised top-k over
    the whole row rather than per-element Python work.

    Args:
        budget: Optional solver budget; probed (at zero node weight) once
            per chunk so anytime semantics reach into candidate
            generation on wide rows.
    """
    n = int(values.shape[0])
    served = 0
    k = _FIRST_CHUNK
    while served < n:
        if budget is not None and served:
            budget.checkpoint(weight=0)
        k = min(n, k)
        order = top_k_descending(values, k)
        chunk = order[served:]
        # One C-level conversion per chunk; yielding stays scalar only at
        # the generator boundary, never in the scoring.
        yield from zip(chunk.tolist(), values[chunk].tolist())
        served = k
        k = max(_CHUNK_FLOOR, served * _CHUNK_GROWTH)


class NeighborOrders(ABC):
    """Produces per-node descending-similarity neighbour streams."""

    @abstractmethod
    def event_stream(self, event: int) -> Iterator[tuple[int, float]]:
        """Yield ``(user, sim)`` for one event, sim non-increasing."""

    @abstractmethod
    def user_stream(self, user: int) -> Iterator[tuple[int, float]]:
        """Yield ``(event, sim)`` for one user, sim non-increasing."""


class MatrixNeighborOrders(NeighborOrders):
    """Chunked top-k provider over the instance's similarity matrix.

    Streams are produced by :func:`_chunked_descending`: identical order
    to a stable argsort of the row/column (value desc, index asc under
    ties) but computed as vectorised top-k blocks, so Greedy-GEACC's
    candidate generation scores whole user chunks per event instead of
    walking a fully sorted permutation it mostly never consumes.

    Args:
        budget: Optional solver budget threaded into chunk computation
            (zero-weight deadline probes; node accounting is untouched).
    """

    def __init__(self, instance: Instance, budget: "Budget | None" = None) -> None:
        self._sims = instance.sims
        self._budget = budget

    def event_stream(self, event: int) -> Iterator[tuple[int, float]]:
        return _chunked_descending(self._sims[event], self._budget)

    def user_stream(self, user: int) -> Iterator[tuple[int, float]]:
        return _chunked_descending(self._sims[:, user], self._budget)


class IndexNeighborOrders(NeighborOrders):
    """Index-backed provider over attribute vectors (matrix-free).

    The *user* side of an instance is typically two to three orders of
    magnitude larger than the event side, so the two stream directions
    get different machinery: event streams (over the big user set) come
    from a lazy :mod:`repro.index` structure, while user streams (over
    the small event set) simply materialise one similarity column with a
    vectorised pass plus argsort -- O(|V|) memory per live stream and far
    less per-item overhead than a generator chain. Both remain
    matrix-free.

    Args:
        instance: Must be attribute-backed with the Euclidean metric --
            the distance-to-similarity conversion relies on Eq. (1)'s
            monotonicity.
        index_kind: A :mod:`repro.index` kind name (for event streams).
    """

    def __init__(self, instance: Instance, index_kind: str = "chunked") -> None:
        if instance.event_attributes is None or instance.user_attributes is None:
            raise ValueError("IndexNeighborOrders requires attribute-backed instances")
        if instance.metric != "euclidean":
            raise ValueError(
                "index-backed neighbour streams require the Euclidean metric, "
                f"instance uses {instance.metric!r}"
            )
        self._instance = instance
        d = instance.event_attributes.shape[1]
        self._max_dist = float(np.sqrt(d) * instance.t)
        self._user_index = make_index(index_kind, instance.user_attributes)
        self._event_attrs = instance.event_attributes

    def _to_sim(self, dist: float) -> float:
        return max(0.0, min(1.0, 1.0 - dist / self._max_dist))

    def event_stream(self, event: int) -> Iterator[tuple[int, float]]:
        for user, dist in self._user_index.stream(self._event_attrs[event]):
            yield user, self._to_sim(dist)

    def user_stream(self, user: int) -> Iterator[tuple[int, float]]:
        # Algorithm 2's initialisation touches *every* user's stream for
        # its first NN, so the first item must be cheap: one vectorised
        # column + argmax. Deeper consumption hands off to the chunked
        # top-k stream (argmax and its first chunk break ties
        # identically: lowest index first).
        instance = self._instance

        def generate() -> Iterator[tuple[int, float]]:
            sims = instance.sim_col(user)
            if sims.shape[0] == 0:
                return
            best = int(np.argmax(sims))
            yield best, float(sims[best])
            rest = _chunked_descending(sims)
            next(rest)  # the argmax item, already served
            yield from rest

        return generate()


def neighbor_orders_for(
    instance: Instance,
    index_kind: str | None = None,
    budget: "Budget | None" = None,
) -> NeighborOrders:
    """Choose a provider for ``instance``.

    Args:
        index_kind: Force an index-backed provider of this kind; None
            picks the matrix provider unless the matrix would be huge and
            the instance is attribute-backed.
        budget: Optional solver budget threaded into the matrix
            provider's chunked candidate generation.
    """
    if index_kind is not None:
        return IndexNeighborOrders(instance, index_kind)
    cells = instance.n_events * instance.n_users
    attribute_backed = (
        instance.event_attributes is not None
        and instance.user_attributes is not None
        and instance.metric == "euclidean"
    )
    if attribute_backed and not instance.has_matrix and cells > _MATRIX_CELL_LIMIT:
        return IndexNeighborOrders(instance, "chunked")
    return MatrixNeighborOrders(instance, budget)
