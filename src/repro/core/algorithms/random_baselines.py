"""The paper's Section V random baselines.

Random-V iterates over events and offers each (v, u) pair membership with
probability ``c_v / |U|``; Random-U iterates over users with probability
``c_u / |V|``. Both only add a pair when it satisfies every GEACC
constraint at that moment (including ``sim > 0``, since matched pairs must
have positive interestingness).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.algorithms.base import Solver, register_solver
from repro.core.model import Arrangement, Instance
from repro.exceptions import BudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.budget import Budget


@register_solver("random-v")
class RandomV(Solver):
    """Event-major random arrangement baseline.

    Args:
        seed: Seed for the baseline's own generator (runs are
            reproducible per seed).
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        rng = np.random.default_rng(self._seed)
        arrangement = Arrangement(instance)
        n_users = instance.n_users
        if n_users == 0:
            return arrangement
        # One checkpoint per event row; the partial arrangement is
        # feasible at every checkpoint, so exhaustion returns it.
        try:
            for v in range(instance.n_events):
                if budget is not None:
                    budget.checkpoint()
                probability = instance.event_capacities[v] / n_users
                accept = rng.random(n_users) < probability
                sims = instance.sim_row(v)
                for u in np.nonzero(accept)[0]:
                    if sims[u] > 0 and arrangement.can_add(v, int(u)):
                        arrangement.add(v, int(u))
        except BudgetExceededError:
            pass
        return arrangement


@register_solver("random-u")
class RandomU(Solver):
    """User-major random arrangement baseline."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        rng = np.random.default_rng(self._seed)
        arrangement = Arrangement(instance)
        n_events = instance.n_events
        if n_events == 0:
            return arrangement
        try:
            for u in range(instance.n_users):
                if budget is not None:
                    budget.checkpoint()
                probability = instance.user_capacities[u] / n_events
                accept = rng.random(n_events) < probability
                sims = instance.sim_col(u)
                for v in np.nonzero(accept)[0]:
                    if sims[v] > 0 and arrangement.can_add(int(v), u):
                        arrangement.add(int(v), u)
        except BudgetExceededError:
            pass
        return arrangement
