"""Exact GEACC via integer linear programming (optimum oracle).

Not part of the paper -- the paper's exact method is Prune-GEACC -- but a
library this size needs a *reliable* optimum oracle: branch-and-bound
with the Lemma 6 bound is extremely seed-sensitive (some |V|=5, |U|=12
instances need >10^7 search nodes), whereas the MILP formulation below is
solved by HiGHS (via :func:`scipy.optimize.milp`) in milliseconds at
those sizes.

Formulation: binary ``x[v, u]`` for every pair with ``sim > 0``;

* maximise ``sum sim[v, u] * x[v, u]``
* ``sum_u x[v, u] <= c_v`` for every event,
* ``sum_v x[v, u] <= c_u`` for every user,
* ``x[vi, u] + x[vj, u] <= 1`` for every conflicting pair and user.

Tests cross-check this solver against Prune-GEACC / exhaustive search;
the Fig. 5c optimum series uses it as the oracle (with Prune-GEACC's
timing reported separately), as recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import Solver, register_solver
from repro.core.model import Arrangement, Instance
from repro.exceptions import ReproError


@register_solver("ilp")
class ILPGEACC(Solver):
    """Exact GEACC solver on top of scipy's HiGHS MILP backend.

    Requires scipy (a test-extra dependency). Intended for small and
    medium instances where an exact optimum is needed reliably.
    """

    def solve(self, instance: Instance) -> Arrangement:
        try:
            from scipy.optimize import Bounds, LinearConstraint, milp
            from scipy.sparse import lil_matrix
        except ImportError as exc:  # pragma: no cover - scipy is installed here
            raise ReproError("ILPGEACC requires scipy") from exc

        arrangement = Arrangement(instance)
        sims = instance.sims
        events, users = np.nonzero(sims > 0)
        n_vars = events.shape[0]
        if n_vars == 0:
            return arrangement
        var_of = {
            (int(v), int(u)): i for i, (v, u) in enumerate(zip(events, users))
        }

        conflict_pairs = sorted(instance.conflicts.pairs)
        n_rows = (
            instance.n_events
            + instance.n_users
            + len(conflict_pairs) * instance.n_users
        )
        matrix = lil_matrix((n_rows, n_vars))
        upper = np.zeros(n_rows)
        for i, (v, u) in enumerate(zip(events, users)):
            matrix[v, i] = 1.0
            matrix[instance.n_events + u, i] = 1.0
        upper[: instance.n_events] = instance.event_capacities
        upper[instance.n_events : instance.n_events + instance.n_users] = (
            instance.user_capacities
        )
        row = instance.n_events + instance.n_users
        for vi, vj in conflict_pairs:
            for u in range(instance.n_users):
                hit = False
                for v in (vi, vj):
                    i = var_of.get((v, u))
                    if i is not None:
                        matrix[row, i] = 1.0
                        hit = True
                if hit:
                    upper[row] = 1.0
                    row += 1
        matrix = matrix[:row].tocsc()
        upper = upper[:row]

        result = milp(
            c=-sims[events, users],
            constraints=LinearConstraint(matrix, ub=upper),
            integrality=np.ones(n_vars),
            bounds=Bounds(0, 1),
        )
        if not result.success:
            raise ReproError(f"MILP solve failed: {result.message}")
        chosen = np.round(result.x).astype(bool)
        for v, u in zip(events[chosen], users[chosen]):
            arrangement.add(int(v), int(u))
        return arrangement
