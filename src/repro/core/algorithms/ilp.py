"""Exact GEACC via integer linear programming (optimum oracle).

Not part of the paper -- the paper's exact method is Prune-GEACC -- but a
library this size needs a *reliable* optimum oracle: branch-and-bound
with the Lemma 6 bound is extremely seed-sensitive (some |V|=5, |U|=12
instances need >10^7 search nodes), whereas the MILP formulation below is
solved by HiGHS (via :func:`scipy.optimize.milp`) in milliseconds at
those sizes.

Formulation: binary ``x[v, u]`` for every pair with ``sim > 0``;

* maximise ``sum sim[v, u] * x[v, u]``
* ``sum_u x[v, u] <= c_v`` for every event,
* ``sum_v x[v, u] <= c_u`` for every user,
* ``x[vi, u] + x[vj, u] <= 1`` for every conflicting pair and user.

Tests cross-check this solver against Prune-GEACC / exhaustive search;
the Fig. 5c optimum series uses it as the oracle (with Prune-GEACC's
timing reported separately), as recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.algorithms.base import Solver, register_solver
from repro.core.model import Arrangement, Instance
from repro.exceptions import BudgetExceededError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.budget import Budget

#: Smallest time limit handed to HiGHS; 0 would mean "unlimited" there.
_MIN_TIME_LIMIT = 1e-3


@register_solver("ilp")
class ILPGEACC(Solver):
    """Exact GEACC solver on top of scipy's HiGHS MILP backend.

    Requires scipy (a test-extra dependency). Intended for small and
    medium instances where an exact optimum is needed reliably.

    Budgets are honoured two ways: cooperative checkpoints while the
    constraint matrix is built (one per conflict row), and the remaining
    deadline forwarded to HiGHS as its ``time_limit`` option. When HiGHS
    stops on the limit its integral incumbent (if any) is returned as
    the best-so-far; pairs are re-checked with ``can_add`` so the
    reported arrangement is feasible even if the incumbent is not.
    """

    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        try:
            from scipy.optimize import Bounds, LinearConstraint, milp
            from scipy.sparse import lil_matrix
        except ImportError as exc:  # pragma: no cover - scipy is installed here
            raise ReproError("ILPGEACC requires scipy") from exc

        arrangement = Arrangement(instance)
        sims = instance.sims
        events, users = np.nonzero(sims > 0)
        n_vars = events.shape[0]
        if n_vars == 0:
            return arrangement
        var_of = {
            (int(v), int(u)): i for i, (v, u) in enumerate(zip(events, users))
        }

        conflict_pairs = sorted(instance.conflicts.pairs)
        n_rows = (
            instance.n_events
            + instance.n_users
            + len(conflict_pairs) * instance.n_users
        )
        matrix = lil_matrix((n_rows, n_vars))
        upper = np.zeros(n_rows)
        try:
            for i, (v, u) in enumerate(zip(events, users)):
                matrix[v, i] = 1.0
                matrix[instance.n_events + u, i] = 1.0
            upper[: instance.n_events] = instance.event_capacities
            upper[instance.n_events : instance.n_events + instance.n_users] = (
                instance.user_capacities
            )
            row = instance.n_events + instance.n_users
            for vi, vj in conflict_pairs:
                if budget is not None:
                    budget.checkpoint()
                for u in range(instance.n_users):
                    hit = False
                    for v in (vi, vj):
                        i = var_of.get((v, u))
                        if i is not None:
                            matrix[row, i] = 1.0
                            hit = True
                    if hit:
                        upper[row] = 1.0
                        row += 1
        except BudgetExceededError:
            # Out of budget before the model even existed: the empty
            # arrangement is the only feasible best-so-far available.
            return arrangement
        matrix = matrix[:row].tocsc()
        upper = upper[:row]

        options: dict[str, float] = {}
        if budget is not None:
            remaining = budget.remaining_seconds()
            if remaining is not None:
                options["time_limit"] = max(remaining, _MIN_TIME_LIMIT)
        result = milp(
            c=-sims[events, users],
            constraints=LinearConstraint(matrix, ub=upper),
            integrality=np.ones(n_vars),
            bounds=Bounds(0, 1),
            options=options,
        )
        if not result.success:
            timed_out = result.status == 1  # iteration / time limit reached
            if timed_out and budget is not None:
                budget.mark_exhausted("HiGHS time_limit reached")
            if not timed_out:
                raise ReproError(f"MILP solve failed: {result.message}")
            if result.x is None:
                return arrangement  # no incumbent: empty feasible floor
        chosen = np.round(result.x).astype(bool)
        for v, u in zip(events[chosen], users[chosen]):
            v, u = int(v), int(u)
            if result.success or arrangement.can_add(v, u):
                arrangement.add(v, u)
        return arrangement
