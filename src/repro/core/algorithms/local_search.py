"""Local-search post-improvement (an extension beyond the paper).

Wraps any base solver and improves its arrangement to a local optimum
under two moves, iterated to a fixed point (or ``max_rounds``):

* **add** -- insert any currently-feasible unmatched pair with positive
  similarity (Lemma 5 guarantees Greedy leaves none, but MinCostFlow's
  conflict-resolution step and the random baselines often do);
* **swap** -- for one user, replace a matched event by an unmatched one
  of higher similarity when the replacement is feasible.

Each accepted move strictly increases MaxSum, and MaxSum is bounded, so
the search terminates. The ablation benchmark
(``benchmarks/test_ablation_local_search.py``) measures how much headroom
each base solver leaves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.algorithms.base import Solver, get_solver, register_solver
from repro.core.model import Arrangement, Instance
from repro.exceptions import BudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.budget import Budget


@register_solver("local-search")
class LocalSearchGEACC(Solver):
    """Improve a base solver's arrangement with add/swap moves.

    Args:
        base: A :class:`Solver` instance or registry name (default
            ``greedy``).
        max_rounds: Safety cap on full improvement sweeps.
    """

    def __init__(self, base: Solver | str = "greedy", max_rounds: int = 50) -> None:
        self._base = get_solver(base) if isinstance(base, str) else base
        self._max_rounds = max_rounds

    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        return self.improve(self._base.solve(instance, budget), budget)

    def improve(
        self, arrangement: Arrangement, budget: "Budget | None" = None
    ) -> Arrangement:
        """Run add/swap sweeps on a copy of ``arrangement`` to a fixed point.

        Every accepted move preserves feasibility, so on budget
        exhaustion the partially-improved copy is returned as-is (its
        MaxSum is monotonically non-decreasing in the number of moves).
        """
        current = arrangement.copy()
        try:
            for _ in range(self._max_rounds):
                improved = self._sweep_adds(current, budget)
                improved |= self._sweep_swaps(current, budget)
                if not improved:
                    break
        except BudgetExceededError:
            pass
        return current

    def _sweep_adds(
        self, arrangement: Arrangement, budget: "Budget | None" = None
    ) -> bool:
        instance = arrangement.instance
        improved = False
        for u in range(instance.n_users):
            if budget is not None:
                budget.checkpoint()
            if arrangement.user_remaining(u) <= 0:
                continue
            sims = instance.sim_col(u)
            # Best-first so each user's spare capacity goes to its best events.
            for v in np.argsort(-sims, kind="stable"):
                if sims[v] <= 0:
                    break
                if arrangement.user_remaining(u) <= 0:
                    break
                if arrangement.can_add(int(v), u):
                    arrangement.add(int(v), u)
                    improved = True
        return improved

    def _sweep_swaps(
        self, arrangement: Arrangement, budget: "Budget | None" = None
    ) -> bool:
        instance = arrangement.instance
        conflicts = instance.conflicts
        improved = False
        for u in range(instance.n_users):
            if budget is not None:
                budget.checkpoint()
            matched = sorted(arrangement.events_of(u))
            if not matched:
                continue
            sims = instance.sim_col(u)
            for old in matched:
                if old not in arrangement.events_of(u):
                    continue  # already swapped away this sweep
                others = arrangement.events_of(u) - {old}
                for v in np.argsort(-sims, kind="stable"):
                    v = int(v)
                    if sims[v] <= sims[old]:
                        break  # no better replacement exists
                    if v in arrangement.events_of(u):
                        continue
                    if arrangement.event_remaining(v) <= 0:
                        continue
                    if conflicts.conflicts_with_any(v, others):
                        continue
                    arrangement.remove(old, u)
                    arrangement.add(v, u)
                    improved = True
                    break
        return improved
