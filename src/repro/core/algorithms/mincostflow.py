"""MinCostFlow-GEACC (Algorithm 1).

Step 1 ignores conflicts: the relaxed GEACC instance (CF = empty) is a
minimum-cost-flow problem on the network of Fig. 1a -- source -> events
(capacity ``c_v``), complete bipartite events x users (capacity 1, cost
``1 - sim``), users -> sink (capacity ``c_u``). Sweeping the flow amount
Delta and keeping the matching with the largest MaxSum yields the optimal
conflict-free matching ``M_0`` (Lemma 1).

Step 2 repairs conflicts per user: among the events assigned to a user,
greedily keep the most similar event that does not conflict with the ones
already kept (a greedy maximum-weight independent set).

Guarantee: ``MaxSum(M) >= MaxSum(M_OPT) / max c_u`` (Theorem 2).

Because successive-shortest-path augmentations have non-decreasing unit
cost, ``MaxSum(M_0^Delta) = Delta - cost(Delta)`` is concave in Delta and
the sweep's argmax is the first Delta where the marginal path cost reaches
1. The default engine exploits this and stops there; ``full_sweep=True``
runs the literal Delta_min..Delta_max sweep of Algorithm 1 (the ablation
benchmark compares the two).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.algorithms.base import Solver, register_solver
from repro.core.model import Arrangement, Instance
from repro.exceptions import BudgetExceededError
from repro.flow.dense_bipartite import DenseBipartiteMinCostFlow
from repro.flow.network import FlowNetwork
from repro.flow.sspa import SuccessiveShortestPaths

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.budget import Budget

_COST_EPS = 1e-12


@register_solver("mincostflow")
class MinCostFlowGEACC(Solver):
    """Algorithm 1 of the paper.

    Args:
        engine: ``dense`` (vectorised SSP specialised to the tripartite
            network; default) or ``generic`` (the heap-based
            :mod:`repro.flow.sspa` solver on an explicit
            :class:`FlowNetwork`; used for cross-checks).
        full_sweep: Run the literal Delta sweep to ``Delta_max`` instead
            of stopping at the concavity argmax. Same result, more work.
    """

    def __init__(self, engine: str = "dense", full_sweep: bool = False) -> None:
        if engine not in ("dense", "generic"):
            raise ValueError(f"unknown engine {engine!r}; expected dense or generic")
        self._engine = engine
        self._full_sweep = full_sweep

    def solve(self, instance: Instance, budget: "Budget | None" = None) -> Arrangement:
        relaxed_pairs = self.solve_relaxation(instance, budget)
        return self._resolve_conflicts(instance, relaxed_pairs)

    # ------------------------------------------------------------------
    # Step 1: optimal matching for the conflict-free relaxation
    # ------------------------------------------------------------------

    def solve_relaxation(
        self, instance: Instance, budget: "Budget | None" = None
    ) -> list[tuple[int, int]]:
        """Return ``M_0``: the optimal conflict-free matching's pairs.

        Only pairs with ``sim > 0`` are reported (flow routed through
        zero-similarity arcs pads Delta without contributing to MaxSum).

        Anytime: one budget checkpoint per Delta-sweep augmentation. On
        exhaustion the flow routed so far is returned -- a prefix of the
        sweep, i.e. the optimal conflict-free matching at a smaller
        Delta -- and step 2 repairs it into a feasible arrangement.
        """
        if self._engine == "dense":
            return self._relaxation_dense(instance, budget)
        return self._relaxation_generic(instance, budget)

    def _relaxation_dense(
        self, instance: Instance, budget: "Budget | None" = None
    ) -> list[tuple[int, int]]:
        sims = instance.sims
        solver = DenseBipartiteMinCostFlow(
            1.0 - sims, instance.event_capacities, instance.user_capacities
        )
        try:
            # One unit per iteration (the per-Delta sweep of Algorithm 1)
            # so the budget is consulted between augmentations.
            while True:
                if budget is not None:
                    budget.checkpoint()
                if solver.run(amount=1, stop_cost=1.0 - _COST_EPS) == 0:
                    break
            if self._full_sweep:
                # Literal Algorithm 1: keep sweeping to Delta_max. Marginal
                # costs are non-decreasing, so every further unit has cost
                # >= 1 and cannot improve MaxSum; we verify that by tracking
                # the best prefix, which provably is where we already stopped.
                best_delta = solver.total_flow
                best_maxsum = best_delta - solver.total_cost
                while True:
                    if budget is not None:
                        budget.checkpoint()
                    cost = solver.augment()
                    if cost is None:
                        break
                    maxsum = solver.total_flow - solver.total_cost
                    if maxsum > best_maxsum + _COST_EPS:
                        best_maxsum = maxsum
                        best_delta = solver.total_flow
                if best_delta != solver.total_flow:
                    # Re-route exactly best_delta units on a fresh network.
                    solver = DenseBipartiteMinCostFlow(
                        1.0 - sims, instance.event_capacities, instance.user_capacities
                    )
                    solver.run(amount=best_delta)
        except BudgetExceededError:
            # The flow matrix after any whole augmentation is a valid
            # integral flow; fall through and report it.
            pass
        events, users = np.nonzero(solver.flow & (sims > 0))
        return list(zip(events.tolist(), users.tolist()))

    def _relaxation_generic(
        self, instance: Instance, budget: "Budget | None" = None
    ) -> list[tuple[int, int]]:
        sims = instance.sims
        network = FlowNetwork()
        source = network.add_node()
        event_nodes = network.add_nodes(instance.n_events)
        user_nodes = network.add_nodes(instance.n_users)
        sink = network.add_node()
        for v in range(instance.n_events):
            network.add_arc(source, event_nodes[v], int(instance.event_capacities[v]))
        middle_arcs: dict[int, tuple[int, int]] = {}
        for v in range(instance.n_events):
            for u in range(instance.n_users):
                arc = network.add_arc(
                    event_nodes[v], user_nodes[u], 1, 1.0 - float(sims[v, u])
                )
                middle_arcs[arc] = (v, u)
        for u in range(instance.n_users):
            network.add_arc(user_nodes[u], sink, int(instance.user_capacities[u]))
        solver = SuccessiveShortestPaths(network, source, sink)

        def stop_when(cost: float) -> bool:
            # Called once before each augmentation: exactly the per-Delta
            # checkpoint cadence the budget contract asks for.
            if budget is not None:
                budget.checkpoint()
            return cost >= 1.0 - _COST_EPS

        try:
            solver.run(stop_when=stop_when)
        except BudgetExceededError:
            pass  # arcs hold a valid partial flow (a sweep prefix)
        return [
            (v, u)
            for arc, (v, u) in middle_arcs.items()
            if network.flow_on(arc) > 0 and sims[v, u] > 0
        ]

    # ------------------------------------------------------------------
    # Step 2: per-user greedy conflict resolution (lines 8-14)
    # ------------------------------------------------------------------

    def _resolve_conflicts(
        self, instance: Instance, relaxed_pairs: list[tuple[int, int]]
    ) -> Arrangement:
        by_user: dict[int, list[int]] = {}
        for event, user in relaxed_pairs:
            by_user.setdefault(user, []).append(event)
        arrangement = Arrangement(instance)
        conflicts = instance.conflicts
        for user, events in by_user.items():
            # Non-increasing similarity, index tie-break for determinism.
            events.sort(key=lambda v: (-instance.sim(v, user), v))
            kept: list[int] = []
            for event in events:
                if not conflicts.conflicts_with_any(event, kept):
                    kept.append(event)
                    arrangement.add(event, user)
        return arrangement
