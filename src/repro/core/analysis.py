"""Arrangement analysis: the quantities an EBSN operator would report.

Beyond the paper's MaxSum objective, operators care how an arrangement
*distributes* value: how full events are, how satisfied users are, and
how fairly interest is spread. These are used by the examples and by the
local-search ablation to explain where each algorithm's MaxSum comes
from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Arrangement


@dataclass(frozen=True)
class ArrangementStats:
    """Summary statistics of one arrangement."""

    max_sum: float
    n_pairs: int
    event_fill_mean: float
    event_fill_min: float
    empty_events: int
    users_matched: int
    users_unmatched: int
    user_satisfaction_mean: float
    satisfaction_gini: float
    mean_pair_similarity: float

    def render(self) -> str:
        """Multi-line human-readable report."""
        return "\n".join(
            [
                f"MaxSum                {self.max_sum:.3f}",
                f"matched pairs         {self.n_pairs}",
                f"event fill (mean/min) {self.event_fill_mean:.1%} / "
                f"{self.event_fill_min:.1%}",
                f"empty events          {self.empty_events}",
                f"users matched         {self.users_matched} "
                f"(unmatched {self.users_unmatched})",
                f"user satisfaction     {self.user_satisfaction_mean:.3f} mean, "
                f"Gini {self.satisfaction_gini:.3f}",
                f"mean pair similarity  {self.mean_pair_similarity:.3f}",
            ]
        )


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative value vector (0 = equal)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = values.shape[0]
    if n == 0:
        return 0.0
    total = values.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def analyze(arrangement: Arrangement) -> ArrangementStats:
    """Compute :class:`ArrangementStats` for an arrangement."""
    instance = arrangement.instance
    n_events, n_users = instance.n_events, instance.n_users

    fills = []
    empty = 0
    for v in range(n_events):
        capacity = instance.event_capacities[v]
        attendees = len(arrangement.users_of(v))
        if attendees == 0:
            empty += 1
        if capacity > 0:
            fills.append(attendees / capacity)
    fill_mean = float(np.mean(fills)) if fills else 0.0
    fill_min = float(np.min(fills)) if fills else 0.0

    satisfaction = np.zeros(n_users)
    pair_sims = []
    for u in range(n_users):
        for v in arrangement.events_of(u):
            sim = instance.sim(v, u)
            satisfaction[u] += sim
            pair_sims.append(sim)
    matched = int(np.count_nonzero(satisfaction > 0))

    return ArrangementStats(
        max_sum=arrangement.max_sum(),
        n_pairs=len(arrangement),
        event_fill_mean=fill_mean,
        event_fill_min=fill_min,
        empty_events=empty,
        users_matched=matched,
        users_unmatched=n_users - matched,
        user_satisfaction_mean=float(satisfaction.mean()) if n_users else 0.0,
        satisfaction_gini=gini(satisfaction),
        mean_pair_similarity=float(np.mean(pair_sims)) if pair_sims else 0.0,
    )


def compare(arrangements: dict[str, Arrangement]) -> str:
    """Side-by-side stats table for several arrangements."""
    from repro.experiments.reporting import format_table

    headers = ["metric", *arrangements]
    stats = {name: analyze(a) for name, a in arrangements.items()}
    metrics = [
        ("MaxSum", "max_sum"),
        ("pairs", "n_pairs"),
        ("event fill mean", "event_fill_mean"),
        ("empty events", "empty_events"),
        ("users matched", "users_matched"),
        ("satisfaction Gini", "satisfaction_gini"),
        ("mean pair sim", "mean_pair_similarity"),
    ]
    rows = [
        [label, *(getattr(stats[name], attr) for name in arrangements)]
        for label, attr in metrics
    ]
    return format_table(headers, rows)
