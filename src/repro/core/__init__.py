"""The GEACC problem and its solvers (the paper's core contribution)."""

from repro.core.conflicts import ConflictGraph
from repro.core.model import Arrangement, Event, Instance, User
from repro.core.similarity import (
    cosine_similarity,
    euclidean_similarity,
    similarity_matrix,
)
from repro.core.validation import is_feasible, validate_arrangement
from repro.core.toy import toy_instance

__all__ = [
    "Arrangement",
    "ConflictGraph",
    "Event",
    "Instance",
    "User",
    "cosine_similarity",
    "euclidean_similarity",
    "similarity_matrix",
    "is_feasible",
    "validate_arrangement",
    "toy_instance",
]
