"""Tolerance-aware float comparisons for objective/similarity values.

MaxSum objectives and cosine similarities are sums of float products:
their exact bit patterns depend on summation order, BLAS kernels and
FMA availability, so ``a == b`` on two "equal" objectives is a
platform lottery.  Lint rule R2 bans exact equality in ``core/`` and
``flow/``; these helpers are the sanctioned replacement.

The default tolerances are far below any similarity gap the paper's
instances produce (similarities live in [0, 1] with gaps >> 1e-9) and
far above accumulated rounding noise for the sizes we solve.
"""

from __future__ import annotations

#: Default relative tolerance for objective comparisons.
REL_TOL = 1e-9
#: Default absolute tolerance (matters near 0, e.g. zero-similarity pairs).
ABS_TOL = 1e-12


def close(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """True if ``a`` and ``b`` are equal within tolerance.

    Mirrors :func:`math.isclose` semantics (symmetric relative check
    plus an absolute floor) with project-wide defaults.
    """
    return abs(a - b) <= max(rel_tol * max(abs(a), abs(b)), abs_tol)


def strictly_less(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """True if ``a < b`` by more than the comparison tolerance.

    Use for "does this candidate strictly improve the objective?"
    checks: improvements below tolerance are rounding noise and must
    not flip tie-breaks.
    """
    return b - a > max(rel_tol * max(abs(a), abs(b)), abs_tol)


def strictly_greater(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """True if ``a > b`` by more than the comparison tolerance."""
    return strictly_less(b, a, rel_tol=rel_tol, abs_tol=abs_tol)
