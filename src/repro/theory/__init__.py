"""Theory machinery: the NP-hardness reduction of Theorem 1."""

from repro.theory.reduction import (
    MFCGSInstance,
    mfcgs_max_flow,
    reduce_to_geacc,
)

__all__ = ["MFCGSInstance", "mfcgs_max_flow", "reduce_to_geacc"]
