"""Theorem 1: reduction from MFCGS to GEACC.

MFCGS is the maximum-flow problem on disjoint length-3 paths
``s -> p_i1 -> p_i2 -> t`` with a conflict graph over arcs (at most one of
two conflicting arcs may carry flow). It is NP-hard [Pferschy & Schauer],
and the paper reduces it to GEACC:

1. each middle node ``p_i2`` becomes an event with capacity 1;
2. events of conflicting paths become conflicting events;
3. nodes ``p_i1`` of mutually conflicting paths are merged into one user
   whose capacity is the number of merged nodes; non-conflicting paths
   get their own capacity-1 user;
4. the (event, user) interestingness is ``r_Pi / R`` on path pairs
   (``r_Pi`` = the path's bottleneck capacity, ``R`` = sum of bottlenecks)
   and 0 elsewhere.

Then MFCGS admits a flow of value k iff the GEACC instance admits a
matching with MaxSum = k / R.

This module builds that construction (so the equivalence can be verified
end-to-end in tests against brute-force MFCGS) and provides
:func:`mfcgs_max_flow`, a reference MFCGS solver that enumerates maximal
conflict-respecting path subsets and routes flow with
:func:`repro.flow.maxflow.max_flow` -- exponential, fine for test sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.exceptions import ReductionError


@dataclass
class MFCGSInstance:
    """Disjoint length-3 paths with arc conflicts.

    Attributes:
        path_capacities: Per path, the capacities of its three arcs
            ``(s -> p_i1, p_i1 -> p_i2, p_i2 -> t)``.
        conflicts: Pairs ``((i, a), (j, b))``: arc ``a`` (0..2) of path i
            conflicts with arc ``b`` of path j. The paper WLOG requires
            ``i != j`` (conflicting arcs on one path make it unusable and
            the path would simply be dropped).
    """

    path_capacities: list[tuple[int, int, int]]
    conflicts: list[tuple[tuple[int, int], tuple[int, int]]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        for i, caps in enumerate(self.path_capacities):
            if len(caps) != 3 or any(c < 0 for c in caps):
                raise ReductionError(f"path {i} needs three non-negative capacities")
        for (i, a), (j, b) in self.conflicts:
            if i == j:
                raise ReductionError(
                    f"conflict within path {i}; drop the path instead (paper's WLOG)"
                )
            for path, arc in ((i, a), (j, b)):
                if not 0 <= path < len(self.path_capacities):
                    raise ReductionError(f"conflict references unknown path {path}")
                if arc not in (0, 1, 2):
                    raise ReductionError(f"arc position {arc} not in 0..2")

    @property
    def n_paths(self) -> int:
        return len(self.path_capacities)

    def bottleneck(self, path: int) -> int:
        """``r_Pi = min`` of the path's three arc capacities."""
        return min(self.path_capacities[path])

    def conflicting_paths(self) -> set[tuple[int, int]]:
        """Path-level conflict pairs implied by arc conflicts."""
        return {
            (min(i, j), max(i, j)) for (i, _), (j, _) in self.conflicts
        }


def mfcgs_max_flow(mfcgs: MFCGSInstance) -> int:
    """Reference MFCGS optimum by enumerating conflict-free path subsets.

    A feasible solution routes flow only on a set of paths that is an
    independent set in the path-level conflict graph; on such a set the
    max flow is simply the sum of path bottlenecks (paths are disjoint).
    Exponential in the number of *conflicted* paths only.
    """
    conflict_pairs = mfcgs.conflicting_paths()
    conflicted = sorted({p for pair in conflict_pairs for p in pair})
    free_paths = [p for p in range(mfcgs.n_paths) if p not in conflicted]
    base = sum(mfcgs.bottleneck(p) for p in free_paths)
    best_extra = 0
    for size in range(len(conflicted) + 1):
        for subset in combinations(conflicted, size):
            chosen = set(subset)
            if any(
                (min(i, j), max(i, j)) in conflict_pairs
                for i, j in combinations(chosen, 2)
            ):
                continue
            extra = sum(mfcgs.bottleneck(p) for p in chosen)
            best_extra = max(best_extra, extra)
    return base + best_extra


def reduce_to_geacc(mfcgs: MFCGSInstance) -> tuple[Instance, float]:
    """Build the Theorem 1 GEACC instance.

    Returns:
        ``(instance, r_total)`` where a target flow ``k`` corresponds to
        the GEACC decision threshold ``MaxSum >= k / r_total``.

    Raises:
        ReductionError: If every path has zero bottleneck (R would be 0).
    """
    n = mfcgs.n_paths
    r = [mfcgs.bottleneck(i) for i in range(n)]
    r_total = sum(r)
    if r_total == 0:
        raise ReductionError("all path bottlenecks are zero; R = 0")

    # (1)-(2): one capacity-1 event per path; conflicts follow paths.
    conflict_pairs = mfcgs.conflicting_paths()
    conflicts = ConflictGraph(n, conflict_pairs)

    # (3): merge p_i1 nodes of mutually conflicting paths into one user.
    # Connected components of the path-level conflict graph share a user.
    component = list(range(n))

    def find(x: int) -> int:
        while component[x] != x:
            component[x] = component[component[x]]
            x = component[x]
        return x

    for i, j in conflict_pairs:
        component[find(i)] = find(j)
    roots = sorted({find(i) for i in range(n)})
    user_of_path = {i: roots.index(find(i)) for i in range(n)}
    user_capacities = np.zeros(len(roots), dtype=np.int64)
    for i in range(n):
        user_capacities[user_of_path[i]] += 1

    # (4): interestingness r_Pi / R on each path's (event, user) pair.
    sims = np.zeros((n, len(roots)))
    for i in range(n):
        sims[i, user_of_path[i]] = r[i] / r_total

    event_capacities = np.ones(n, dtype=np.int64)
    instance = Instance.from_matrix(sims, event_capacities, user_capacities, conflicts)
    return instance, float(r_total)
