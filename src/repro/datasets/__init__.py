"""Dataset builders: simulated Meetup cities and structured scenarios."""

from repro.datasets.meetup import CITIES, MERGED_TAGS, MeetupCityConfig, meetup_city
from repro.datasets.scenarios import SCENARIOS, Scenario, build_scenario

__all__ = [
    "CITIES",
    "MERGED_TAGS",
    "MeetupCityConfig",
    "meetup_city",
    "SCENARIOS",
    "Scenario",
    "build_scenario",
]
