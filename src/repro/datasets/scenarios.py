"""Named scenario workloads: GEACC instances with *structured* conflicts.

The paper's experiments draw CF uniformly at random. Real deployments
have structure: sessions in the same slot always conflict, festival sets
overlap by stage schedule, course meetings clash across a week. These
generators build such instances so the algorithms can be exercised (and
demonstrated) on recognisable problems. Each returns
``(instance, metadata)`` where metadata carries the human-readable
structure (slot maps, timetables) for reporting.

All scenarios are deterministic per seed and sized by arguments, so they
double as integration-test fixtures and benchmark case studies
(``benchmarks/test_case_studies.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance


@dataclass(frozen=True)
class Scenario:
    """One generated case study."""

    name: str
    instance: Instance
    metadata: dict = field(default_factory=dict)


def conference(
    n_slots: int = 4,
    sessions_per_slot: int = 3,
    n_attendees: int = 120,
    topic_dim: int = 8,
    seed: int = 0,
) -> Scenario:
    """Parallel conference sessions; same-slot sessions conflict.

    Attendees can attend one session per slot (enforced by conflicts) up
    to a personal budget of slots.
    """
    rng = np.random.default_rng(seed)
    n_sessions = n_slots * sessions_per_slot
    slots = [
        list(range(s * sessions_per_slot, (s + 1) * sessions_per_slot))
        for s in range(n_slots)
    ]
    conflicts = ConflictGraph(n_sessions)
    for slot in slots:
        for i, a in enumerate(slot):
            for b in slot[i + 1 :]:
                conflicts.add_pair(a, b)
    session_topics = rng.dirichlet(np.full(topic_dim, 0.4), n_sessions)
    attendee_topics = rng.dirichlet(np.full(topic_dim, 0.8), n_attendees)
    instance = Instance.from_attributes(
        session_topics,
        attendee_topics,
        rng.integers(15, 60, n_sessions),           # room sizes
        rng.integers(1, n_slots + 1, n_attendees),  # slots attended
        conflicts,
        t=1.0,
    )
    return Scenario("conference", instance, {"slots": slots})


def festival(
    n_stages: int = 4,
    n_timeslots: int = 6,
    n_fans: int = 400,
    genre_dim: int = 10,
    seed: int = 0,
) -> Scenario:
    """Festival acts on stages x timeslots; same-slot acts conflict.

    Additionally, consecutive-slot acts on *distant* stages conflict
    (you cannot cross the grounds in time) -- a structured version of the
    paper's travel-time motivation. Stage distance = index distance;
    stages further than 1 apart are unreachable between adjacent slots.
    """
    rng = np.random.default_rng(seed)
    n_acts = n_stages * n_timeslots

    def stage_of(act: int) -> int:
        return act % n_stages

    def slot_of(act: int) -> int:
        return act // n_stages

    conflicts = ConflictGraph(n_acts)
    for a in range(n_acts):
        for b in range(a + 1, n_acts):
            same_slot = slot_of(a) == slot_of(b)
            adjacent_far = (
                abs(slot_of(a) - slot_of(b)) == 1
                and abs(stage_of(a) - stage_of(b)) > 1
            )
            if same_slot or adjacent_far:
                conflicts.add_pair(a, b)
    act_genres = rng.dirichlet(np.full(genre_dim, 0.3), n_acts)
    fan_genres = rng.dirichlet(np.full(genre_dim, 0.6), n_fans)
    instance = Instance.from_attributes(
        act_genres,
        fan_genres,
        rng.integers(50, 200, n_acts),              # stage-front capacity
        rng.integers(1, n_timeslots + 1, n_fans),   # sets a fan will catch
        conflicts,
        t=1.0,
    )
    return Scenario(
        "festival",
        instance,
        {"n_stages": n_stages, "n_timeslots": n_timeslots},
    )


def course_allocation(
    n_courses: int = 20,
    n_students: int = 250,
    interest_dim: int = 12,
    seed: int = 0,
) -> Scenario:
    """University course allocation with weekly-timetable conflicts.

    Each course meets in one or two weekly (day, hour-block) cells;
    courses sharing a cell conflict. Capacities: room size per course,
    course load per student.
    """
    rng = np.random.default_rng(seed)
    days, blocks = 5, 4
    meetings: list[set[tuple[int, int]]] = []
    for _ in range(n_courses):
        count = int(rng.integers(1, 3))
        cells = {
            (int(rng.integers(0, days)), int(rng.integers(0, blocks)))
            for _ in range(count)
        }
        meetings.append(cells)
    conflicts = ConflictGraph(n_courses)
    for a in range(n_courses):
        for b in range(a + 1, n_courses):
            if meetings[a] & meetings[b]:
                conflicts.add_pair(a, b)
    course_profiles = rng.dirichlet(np.full(interest_dim, 0.5), n_courses)
    student_profiles = rng.dirichlet(np.full(interest_dim, 0.9), n_students)
    instance = Instance.from_attributes(
        course_profiles,
        student_profiles,
        rng.integers(20, 80, n_courses),        # room sizes
        rng.integers(3, 6, n_students),         # course load
        conflicts,
        t=1.0,
    )
    return Scenario("course-allocation", instance, {"meetings": meetings})


def volunteer_shifts(
    n_shifts: int = 24,
    n_volunteers: int = 150,
    skill_dim: int = 6,
    seed: int = 0,
) -> Scenario:
    """Volunteer shift staffing; overlapping shifts conflict.

    Shifts are intervals over a week (hours 0..168); similarity is a
    skill match between shift requirements and volunteer skills.
    """
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, 160, n_shifts)
    durations = rng.uniform(3, 8, n_shifts)
    intervals = [(float(s), float(s + d)) for s, d in zip(starts, durations)]
    conflicts = ConflictGraph.from_intervals(intervals)
    shift_skills = rng.dirichlet(np.full(skill_dim, 0.5), n_shifts)
    volunteer_skills = rng.dirichlet(np.full(skill_dim, 0.8), n_volunteers)
    instance = Instance.from_attributes(
        shift_skills,
        volunteer_skills,
        rng.integers(3, 10, n_shifts),           # staffing need
        rng.integers(1, 5, n_volunteers),        # shifts per volunteer
        conflicts,
        t=1.0,
    )
    return Scenario("volunteer-shifts", instance, {"intervals": intervals})


SCENARIOS = {
    "conference": conference,
    "festival": festival,
    "course-allocation": course_allocation,
    "volunteer-shifts": volunteer_shifts,
}


def build_scenario(name: str, seed: int = 0, **kwargs) -> Scenario:
    """Build a named scenario with default sizing.

    Raises:
        ValueError: On an unknown scenario name.
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r}; known: {known}")
    return factory(seed=seed, **kwargs)
