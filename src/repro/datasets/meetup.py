"""Meetup-like city datasets (the paper's Table II real data, simulated).

The paper evaluates on the Meetup crawl of Liu et al. (KDD'12), which is
not redistributable. Its preprocessing pipeline is, however, fully
specified: merge misspelled/duplicate tags, keep the 20 most popular
merged tags as attributes, set each entity's attribute value to the count
of its original tags mapping to that merged tag normalised by its total
tag count, cluster by city, and generate capacities (Uniform or Normal per
Table II) and conflicts (random ratio) synthetically -- capacities and
conflicts are synthetic even in the paper.

This module reproduces that *distributional* shape: a Zipf popularity law
over 20 merged tags, entities adopting a handful of tags each (events
inherit the tag profile of their organising group, so event profiles are
slightly more concentrated), attribute values normalised to sum to at
most 1 per entity, exactly the per-city cardinalities of Table II. The
preserved behaviours are what the experiments exercise: sparse, skewed,
cluster-structured similarity at the stated |V|/|U| scales.

Note the attribute range: normalised tag counts live in [0, 1], so these
instances use ``T = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.model import Instance
from repro.datagen.distributions import sample_capacities

#: The 20 merged tags used as attribute dimensions (Section V).
MERGED_TAGS = [
    "outdoor", "technology", "social", "fitness", "language", "career",
    "music", "photography", "food", "travel", "books", "games",
    "wellness", "parenting", "arts", "film", "pets", "dance",
    "spirituality", "volunteering",
]

#: Table II cardinalities: city -> (|V|, |U|).
CITIES = {
    "vancouver": (225, 2012),
    "auckland": (37, 569),
    "singapore": (87, 1500),
}


@dataclass(frozen=True)
class MeetupCityConfig:
    """Configuration of one simulated city extraction.

    Attributes:
        city: Key into :data:`CITIES`.
        capacity_distribution: ``uniform`` (c_v in [1, 50], c_u in [1, 4])
            or ``normal`` (c_v ~ N(25, 12.5), c_u ~ N(2, 1)) per Table II.
        conflict_ratio: |CF| / (|V| (|V|-1) / 2), Table II's grid is
            {0, 0.25, 0.5, 0.75, 1}.
        tags_low / tags_high: Range of original-tag counts per entity.
    """

    city: str = "auckland"
    capacity_distribution: str = "uniform"
    conflict_ratio: float = 0.25
    tags_low: int = 3
    tags_high: int = 12


def _tag_profiles(
    rng: np.random.Generator,
    count: int,
    popularity: np.ndarray,
    tags_low: int,
    tags_high: int,
    concentration: float,
) -> np.ndarray:
    """Sample normalised tag-count attribute vectors.

    Each entity draws ``n_tags`` original tags from the merged-tag
    popularity law (with replacement -- several original tags map to one
    merged tag, exactly the paper's "outdoor-activities" example), then
    normalises counts by ``n_tags``. ``concentration`` > 1 sharpens the
    popularity law (event/group profiles are more focused than users').
    """
    weights = popularity**concentration
    weights = weights / weights.sum()
    d = popularity.shape[0]
    profiles = np.zeros((count, d))
    n_tags = rng.integers(tags_low, tags_high + 1, size=count)
    for i in range(count):
        draws = rng.choice(d, size=n_tags[i], p=weights)
        counts = np.bincount(draws, minlength=d).astype(np.float64)
        profiles[i] = counts / n_tags[i]
    return profiles


def meetup_city(
    config: MeetupCityConfig = MeetupCityConfig(), seed: int | None = 0
) -> Instance:
    """Build one simulated Meetup city instance (Table II).

    Raises:
        ValueError: On an unknown city or capacity distribution.
    """
    if config.city not in CITIES:
        known = ", ".join(sorted(CITIES))
        raise ValueError(f"unknown city {config.city!r}; known: {known}")
    rng = np.random.default_rng(seed)
    n_events, n_users = CITIES[config.city]
    d = len(MERGED_TAGS)

    # Zipf-like popularity over merged tags ("20 most popular tags").
    popularity = 1.0 / np.arange(1, d + 1) ** 1.1
    popularity = popularity / popularity.sum()

    event_attrs = _tag_profiles(
        rng, n_events, popularity, config.tags_low, config.tags_high, 1.5
    )
    user_attrs = _tag_profiles(
        rng, n_users, popularity, config.tags_low, config.tags_high, 1.0
    )

    if config.capacity_distribution == "uniform":
        event_capacities = sample_capacities(rng, n_events, "uniform", low=1, high=50)
        user_capacities = sample_capacities(rng, n_users, "uniform", low=1, high=4)
    elif config.capacity_distribution == "normal":
        event_capacities = sample_capacities(
            rng, n_events, "normal", mu=25.0, sigma=12.5
        )
        user_capacities = sample_capacities(rng, n_users, "normal", mu=2.0, sigma=1.0)
    else:
        raise ValueError(
            f"unknown capacity distribution {config.capacity_distribution!r}"
        )

    conflicts = ConflictGraph.random(n_events, config.conflict_ratio, rng)
    return Instance.from_attributes(
        event_attrs,
        user_attrs,
        event_capacities,
        user_capacities,
        conflicts,
        t=1.0,
    )
