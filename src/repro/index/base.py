"""Common interface for nearest-neighbour indexes."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

import numpy as np

from repro.exceptions import EmptyIndexError


class NNIndex(ABC):
    """Incremental nearest-neighbour index over a fixed point set.

    Subclasses index a ``(n, d)`` array of points once at construction and
    answer queries with :meth:`stream`, which yields ``(index, distance)``
    pairs in non-decreasing Euclidean distance until the point set is
    exhausted. :meth:`query` is a convenience wrapper for top-k queries.
    """

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        self._points = points

    @property
    def points(self) -> np.ndarray:
        """The indexed point array, shape ``(n, d)``."""
        return self._points

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self._points.shape[1]

    @abstractmethod
    def stream(self, query: np.ndarray) -> Iterator[tuple[int, float]]:
        """Yield ``(point_index, distance)`` in non-decreasing distance."""

    def query(self, query: np.ndarray, k: int = 1) -> list[tuple[int, float]]:
        """Return the ``k`` nearest points as ``(index, distance)`` pairs.

        Raises:
            EmptyIndexError: If the index contains no points.
        """
        if len(self) == 0:
            raise EmptyIndexError("cannot query an empty index")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        result = []
        for item in self.stream(query):
            result.append(item)
            if len(result) == k:
                break
        return result

    def _validate_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, index has {self.dim}"
            )
        return query
