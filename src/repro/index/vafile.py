"""VA-File index (Weber, Schek, Blott, VLDB'98) -- the paper's citation [8].

The Vector-Approximation File quantises every point into a few bits per
dimension (a grid cell). A nearest-neighbour query scans the *compact*
approximation table computing, per point, a lower and an upper bound on
its true distance from the cell geometry, and only fetches/verifies the
full vector of points whose lower bound beats the current k-th upper
bound. In its original setting this trades random I/O for a sequential
scan of a file ~10x smaller than the data; in-memory it trades full
distance evaluations for cheap vectorised bound computations.

The incremental stream interface re-runs the two-phase scan lazily: it
keeps a candidate heap ordered by lower bound and verifies true distances
on demand, so consuming only a prefix of the stream verifies only a
prefix of the points -- exactly the access pattern Greedy-GEACC's
"next feasible NN" calls generate.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

from repro.index.base import NNIndex

_DEFAULT_BITS = 4


class VAFileIndex(NNIndex):
    """Vector-approximation file over a fixed point set.

    Args:
        points: ``(n, d)`` array.
        bits: Bits per dimension (cells per axis = ``2**bits``). The
            approximation table costs ``n * d * bits`` bits versus
            ``n * d * 64`` for the raw data.
    """

    def __init__(self, points: np.ndarray, bits: int = _DEFAULT_BITS) -> None:
        super().__init__(points)
        if not 1 <= bits <= 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self._bits = bits
        self._cells_per_axis = 1 << bits
        n, d = self._points.shape
        if n == 0:
            self._cells = np.zeros((0, d), dtype=np.int64)
            self._lo = np.zeros(d)
            self._hi = np.ones(d)
            return
        self._lo = self._points.min(axis=0)
        self._hi = self._points.max(axis=0)
        span = np.where(self._hi > self._lo, self._hi - self._lo, 1.0)
        normalised = (self._points - self._lo) / span
        cells = np.floor(normalised * self._cells_per_axis).astype(np.int64)
        self._cells = np.clip(cells, 0, self._cells_per_axis - 1)
        self._span = span

    @property
    def bits(self) -> int:
        return self._bits

    def _bounds(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-point lower/upper squared-distance bounds from cells.

        For each dimension, a point inside cell ``c`` lies in
        ``[edge(c), edge(c + 1)]``; the per-dimension distance from the
        query coordinate is bounded below by the distance to the nearest
        cell edge (0 if the query falls inside the cell) and above by the
        distance to the farthest edge.
        """
        n, d = self._points.shape
        cell_width = self._span / self._cells_per_axis
        cell_low = self._lo + self._cells * cell_width
        cell_high = cell_low + cell_width
        below = np.maximum(cell_low - query, 0.0)
        above = np.maximum(query - cell_high, 0.0)
        lower = below + above  # one of the two is zero per coordinate
        upper = np.maximum(np.abs(query - cell_low), np.abs(query - cell_high))
        return (lower**2).sum(axis=1), (upper**2).sum(axis=1)

    def stream(self, query: np.ndarray) -> Iterator[tuple[int, float]]:
        query = self._validate_query(query)
        n = len(self)
        if n == 0:
            return
        lower_sq, _ = self._bounds(query)
        # Candidates ordered by lower bound; verified points by true
        # distance. A verified point is exact once its true distance is
        # <= the smallest unverified lower bound.
        order = np.argsort(lower_sq, kind="stable")
        lower_sorted = np.sqrt(lower_sq[order])
        verified: list[tuple[float, int]] = []
        cursor = 0
        emitted = 0
        while emitted < n:
            next_lower = lower_sorted[cursor] if cursor < n else np.inf
            if verified and verified[0][0] <= next_lower:
                dist, idx = heapq.heappop(verified)
                yield idx, dist
                emitted += 1
                continue
            # Verify the next candidate's true distance (the "fetch").
            idx = int(order[cursor])
            cursor += 1
            dist = float(np.linalg.norm(self._points[idx] - query))
            heapq.heappush(verified, (dist, idx))

    def selectivity(self, query: np.ndarray, k: int = 1) -> float:
        """Fraction of points whose full vector a k-NN query must fetch.

        The VA-File paper's headline metric: with good quantisation most
        points are filtered by their bounds alone. Runs the classic
        two-phase batch algorithm (phase 1: bound scan; phase 2: verify
        candidates whose lower bound beats the running k-th upper bound).
        """
        query = self._validate_query(query)
        n = len(self)
        if n == 0:
            return 0.0
        k = min(k, n)
        lower_sq, upper_sq = self._bounds(query)
        # Phase 1: the k-th smallest upper bound prunes by lower bound.
        kth_upper = np.partition(upper_sq, k - 1)[k - 1]
        candidates = np.nonzero(lower_sq <= kth_upper)[0]
        # Phase 2 visits candidates in lower-bound order, verifying until
        # the k-th true distance undercuts the next lower bound.
        order = candidates[np.argsort(lower_sq[candidates], kind="stable")]
        best: list[float] = []
        fetched = 0
        for idx in order:
            if len(best) == k and lower_sq[idx] > best[-1]:
                break
            fetched += 1
            dist_sq = float(((self._points[idx] - query) ** 2).sum())
            if len(best) < k:
                best.append(dist_sq)
                best.sort()
            elif dist_sq < best[-1]:
                best[-1] = dist_sq
                best.sort()
        return fetched / n
