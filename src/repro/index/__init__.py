"""Nearest-neighbour index substrate.

Greedy-GEACC and Prune-GEACC consume neighbours of each event/user in
non-increasing similarity order. The paper abstracts this as a k-NN oracle
with per-query cost ``sigma(S)`` and cites iDistance [7] and the VA-file
[8] as concrete indexes. Because the paper's similarity (Eq. 1) is a
monotone decreasing function of Euclidean distance, any ascending-distance
stream is a descending-similarity stream.

This subpackage implements the oracle three ways, all exposing the same
:class:`repro.index.base.NNIndex` interface with *incremental* streams:

* :class:`repro.index.linear.LinearScanIndex` -- exact argsort per query.
* :class:`repro.index.linear.ChunkedLinearScanIndex` -- amortised
  argpartition chunks; cheap when only a prefix of the stream is consumed
  (the common case inside Greedy-GEACC).
* :class:`repro.index.kdtree.KDTreeIndex` -- from-scratch kd-tree with
  best-first incremental traversal.
* :class:`repro.index.idistance.IDistanceIndex` -- the paper's cited
  iDistance scheme: reference-point partitions with sorted one-dimensional
  keys and an expanding search radius.

:class:`repro.index.pairheap.CandidatePairHeap` is the max-similarity heap
with membership tracking that Algorithm 2 maintains ("no pair is pushed
into H more than once").
"""

from repro.index.base import NNIndex
from repro.index.linear import ChunkedLinearScanIndex, LinearScanIndex
from repro.index.kdtree import KDTreeIndex
from repro.index.idistance import IDistanceIndex
from repro.index.vafile import VAFileIndex
from repro.index.pairheap import CandidatePairHeap

INDEX_CLASSES = {
    "linear": LinearScanIndex,
    "chunked": ChunkedLinearScanIndex,
    "kdtree": KDTreeIndex,
    "idistance": IDistanceIndex,
    "vafile": VAFileIndex,
}


def make_index(kind: str, points) -> NNIndex:
    """Build an index of the named kind over a 2-D point array.

    Args:
        kind: One of ``linear``, ``chunked``, ``kdtree``, ``idistance``.
        points: Array of shape ``(n, d)``.
    """
    try:
        cls = INDEX_CLASSES[kind]
    except KeyError:
        known = ", ".join(sorted(INDEX_CLASSES))
        raise ValueError(f"unknown index kind {kind!r}; expected one of: {known}")
    return cls(points)


__all__ = [
    "NNIndex",
    "LinearScanIndex",
    "ChunkedLinearScanIndex",
    "KDTreeIndex",
    "IDistanceIndex",
    "VAFileIndex",
    "CandidatePairHeap",
    "INDEX_CLASSES",
    "make_index",
]
