"""iDistance index (Jagadish et al., TODS'05) -- the paper's citation [7].

iDistance partitions the point set around a small number of reference
points and maps every point to the one-dimensional key ``distance to its
reference``. A range query with radius ``r`` around query ``q`` touches, in
each partition with centre ``c``, only the key annulus
``[d(q, c) - r, d(q, c) + r]`` (triangle inequality). k-NN search expands
``r`` geometrically, scanning each partition's sorted key array outward
from ``d(q, c)`` with two frontier pointers, and a candidate is *confirmed*
(safe to emit in ascending order) once its true distance is within the
fully-scanned radius.

The original paper stores keys in a B+-tree; sorted numpy arrays with
bisection give the same access pattern in-memory.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

from repro.index.base import NNIndex

_DEFAULT_REFS = 8
_KMEANS_ROUNDS = 4


def _choose_references(points: np.ndarray, n_refs: int, seed: int) -> np.ndarray:
    """Pick reference points with a few Lloyd iterations over a sample."""
    rng = np.random.default_rng(seed)
    n = points.shape[0]
    n_refs = min(n_refs, n)
    centers = points[rng.choice(n, size=n_refs, replace=False)].copy()
    for _ in range(_KMEANS_ROUNDS):
        # Assign every point to its nearest centre, then recentre.
        d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = d2.argmin(axis=1)
        for ref in range(n_refs):
            members = points[assign == ref]
            if members.shape[0] > 0:
                centers[ref] = members.mean(axis=0)
    return centers


class _Partition:
    """One reference point's sorted key list."""

    def __init__(self, center: np.ndarray, keys: np.ndarray, indices: np.ndarray):
        order = np.argsort(keys, kind="stable")
        self.center = center
        self.keys = keys[order]
        self.indices = indices[order]
        self.max_key = float(self.keys[-1]) if keys.shape[0] else 0.0


class _PartitionCursor:
    """Per-query scan state: two frontiers expanding from d(q, center)."""

    def __init__(self, partition: _Partition, query_to_center: float):
        self.partition = partition
        self.q2c = query_to_center
        anchor = int(np.searchsorted(partition.keys, query_to_center, side="left"))
        self.lo = anchor  # next position to scan moving left (lo - 1)
        self.hi = anchor  # next position to scan moving right (hi)

    def scan_to(self, radius: float) -> Iterator[int]:
        """Yield point indices whose keys enter the annulus at ``radius``."""
        keys = self.partition.keys
        low_bound = self.q2c - radius
        high_bound = self.q2c + radius
        while self.lo > 0 and keys[self.lo - 1] >= low_bound:
            self.lo -= 1
            yield int(self.partition.indices[self.lo])
        n = keys.shape[0]
        while self.hi < n and keys[self.hi] <= high_bound:
            yield int(self.partition.indices[self.hi])
            self.hi += 1

    @property
    def exhausted(self) -> bool:
        return self.lo == 0 and self.hi == self.partition.keys.shape[0]


class IDistanceIndex(NNIndex):
    """iDistance-style index with exact incremental neighbour streams."""

    def __init__(
        self, points: np.ndarray, n_refs: int = _DEFAULT_REFS, seed: int = 0
    ) -> None:
        super().__init__(points)
        self._partitions: list[_Partition] = []
        if len(self) == 0:
            return
        centers = _choose_references(self._points, n_refs, seed)
        d2 = ((self._points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = d2.argmin(axis=1)
        keys = np.sqrt(d2[np.arange(len(self)), assign])
        for ref in range(centers.shape[0]):
            mask = assign == ref
            if mask.any():
                self._partitions.append(
                    _Partition(centers[ref], keys[mask], np.nonzero(mask)[0])
                )

    def stream(self, query: np.ndarray) -> Iterator[tuple[int, float]]:
        query = self._validate_query(query)
        if not self._partitions:
            return
        cursors = [
            _PartitionCursor(p, float(np.linalg.norm(query - p.center)))
            for p in self._partitions
        ]
        # Initial radius: a small fraction of the widest partition radius,
        # so dense queries confirm neighbours without scanning everything.
        radius = max(p.max_key for p in self._partitions) / 64.0 or 1.0
        confirmed: list[tuple[float, int]] = []  # min-heap of (dist, idx)
        emitted = 0
        total = len(self)
        while emitted < total:
            for cursor in cursors:
                for idx in cursor.scan_to(radius):
                    dist = float(np.linalg.norm(self._points[idx] - query))
                    heapq.heappush(confirmed, (dist, idx))
            # Everything with true distance <= radius has been scanned in
            # every partition, so it is safe to emit in ascending order.
            while confirmed and confirmed[0][0] <= radius:
                dist, idx = heapq.heappop(confirmed)
                yield idx, dist
                emitted += 1
            if all(c.exhausted for c in cursors):
                while confirmed:
                    dist, idx = heapq.heappop(confirmed)
                    yield idx, dist
                    emitted += 1
                return
            radius *= 2.0
