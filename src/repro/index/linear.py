"""Linear-scan nearest-neighbour indexes.

Two variants: a full argsort per query (simplest possible exact oracle,
used as ground truth in tests) and a chunked variant that materialises the
sorted order lazily with ``numpy.argpartition``. Greedy-GEACC usually
consumes only a short prefix of each node's neighbour stream before the
node saturates, so the chunked variant avoids the O(n log n) full sort in
the common case.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.index.base import NNIndex


def _distances(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    diff = points - query
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


class LinearScanIndex(NNIndex):
    """Exact brute-force index: one vectorised distance pass + argsort."""

    def stream(self, query: np.ndarray) -> Iterator[tuple[int, float]]:
        query = self._validate_query(query)
        dists = _distances(self._points, query)
        order = np.argsort(dists, kind="stable")
        for idx in order:
            yield int(idx), float(dists[idx])


class ChunkedLinearScanIndex(NNIndex):
    """Brute-force index that defers the full sort until actually needed.

    Distances are computed once per query. The first ``chunk`` neighbours
    come from an O(n) ``argpartition`` -- the common case inside
    Greedy-GEACC, where most streams are consumed only a few entries
    deep. Only if a consumer drains past the chunk does the stream pay
    for one full O(n log n) argsort, then continues from it (skipping the
    already-emitted prefix, which keeps the sequence exact even under
    distance ties).
    """

    def __init__(self, points: np.ndarray, chunk: int = 64) -> None:
        super().__init__(points)
        if chunk < 1:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self._chunk = chunk

    def stream(self, query: np.ndarray) -> Iterator[tuple[int, float]]:
        query = self._validate_query(query)
        dists = _distances(self._points, query)
        n = dists.shape[0]
        emitted: set[int] = set()
        if self._chunk < n:
            prefix = np.argpartition(dists, self._chunk - 1)[: self._chunk]
            prefix = prefix[np.argsort(dists[prefix], kind="stable")]
            for idx in prefix:
                idx = int(idx)
                emitted.add(idx)
                yield idx, float(dists[idx])
        for idx in np.argsort(dists, kind="stable"):
            idx = int(idx)
            if idx in emitted:
                continue
            yield idx, float(dists[idx])
