"""Max-similarity candidate heap for Greedy-GEACC.

Algorithm 2 of the paper maintains a heap ``H`` of candidate
(event, user) pairs, popping the most similar pair each iteration, with
the invariant that **no pair is pushed into H more than once**. This class
packages the heap together with the membership bookkeeping that invariant
requires: ``contains`` answers "is this pair currently in H", and
``was_pushed`` answers "has this pair ever been in H".

Ties on similarity are broken deterministically by (event, user) index so
runs are reproducible.
"""

from __future__ import annotations

import heapq


class CandidatePairHeap:
    """Heap of (event, user) candidates ordered by non-increasing sim."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int]] = []
        self._in_heap: set[tuple[int, int]] = set()
        self._ever_pushed: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def contains(self, event: int, user: int) -> bool:
        """True if the pair is currently waiting in the heap."""
        return (event, user) in self._in_heap

    def was_pushed(self, event: int, user: int) -> bool:
        """True if the pair has ever been pushed (in heap or popped)."""
        return (event, user) in self._ever_pushed

    def push(self, event: int, user: int, sim: float) -> bool:
        """Push a pair unless it was ever pushed before.

        Returns True if the pair was actually added.
        """
        key = (event, user)
        if key in self._ever_pushed:
            return False
        self._ever_pushed.add(key)
        self._in_heap.add(key)
        heapq.heappush(self._heap, (-sim, event, user))
        return True

    def pop(self) -> tuple[int, int, float]:
        """Pop and return ``(event, user, sim)`` with the largest sim.

        Raises:
            IndexError: If the heap is empty.
        """
        neg_sim, event, user = heapq.heappop(self._heap)
        self._in_heap.discard((event, user))
        return event, user, -neg_sim

    def peek_sim(self) -> float | None:
        """Similarity of the top pair, or None when empty."""
        if not self._heap:
            return None
        return -self._heap[0][0]
