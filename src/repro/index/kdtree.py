"""From-scratch kd-tree with best-first incremental nearest-neighbour.

The tree splits on the widest-spread coordinate at the median, bottoming
out in small leaves. :meth:`KDTreeIndex.stream` runs the classic best-first
traversal with a priority queue mixing subtree lower bounds and concrete
points, so it yields neighbours one at a time in exact ascending distance
without computing all distances up front.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.index.base import NNIndex

_LEAF_SIZE = 16


@dataclass
class _Node:
    """One kd-tree node; a leaf iff ``indices`` is not None."""

    lo: np.ndarray
    hi: np.ndarray
    indices: np.ndarray | None = None
    axis: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None


def _build(points: np.ndarray, indices: np.ndarray, leaf_size: int) -> _Node:
    subset = points[indices]
    lo = subset.min(axis=0)
    hi = subset.max(axis=0)
    if indices.shape[0] <= leaf_size:
        return _Node(lo=lo, hi=hi, indices=indices)
    spread = hi - lo
    axis = int(np.argmax(spread))
    if spread[axis] == 0.0:
        # All points identical; keep them in one leaf regardless of size.
        return _Node(lo=lo, hi=hi, indices=indices)
    values = subset[:, axis]
    order = np.argsort(values, kind="stable")
    mid = indices.shape[0] // 2
    threshold = float(values[order[mid]])
    left_mask = values < threshold
    if not left_mask.any() or left_mask.all():
        # Degenerate split (many duplicates at the median); fall back to a
        # half/half partition by rank to guarantee progress.
        left_idx = indices[order[:mid]]
        right_idx = indices[order[mid:]]
    else:
        left_idx = indices[left_mask]
        right_idx = indices[~left_mask]
    node = _Node(lo=lo, hi=hi, axis=axis, threshold=threshold)
    node.left = _build(points, left_idx, leaf_size)
    node.right = _build(points, right_idx, leaf_size)
    return node


def _box_distance(node: _Node, query: np.ndarray) -> float:
    """Euclidean distance from ``query`` to the node's bounding box."""
    clipped = np.clip(query, node.lo, node.hi)
    diff = query - clipped
    return float(np.sqrt(diff @ diff))


class KDTreeIndex(NNIndex):
    """kd-tree index with exact incremental neighbour streams."""

    def __init__(self, points: np.ndarray, leaf_size: int = _LEAF_SIZE) -> None:
        super().__init__(points)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self._leaf_size = leaf_size
        if len(self) > 0:
            self._root = _build(self._points, np.arange(len(self)), leaf_size)
        else:
            self._root = None

    def stream(self, query: np.ndarray) -> Iterator[tuple[int, float]]:
        query = self._validate_query(query)
        if self._root is None:
            return
        # Heap entries: (distance, tiebreak, payload). Payload is either a
        # subtree (lower-bounded by its box distance) or a concrete point
        # index. A point is exact once it reaches the heap top because
        # every unexplored subtree there has a larger lower bound.
        counter = itertools.count()
        heap: list[tuple[float, int, int | None, _Node | None]] = [
            (_box_distance(self._root, query), next(counter), None, self._root)
        ]
        while heap:
            dist, _, point_index, node = heapq.heappop(heap)
            if node is None:
                yield point_index, dist
                continue
            if node.indices is not None:
                diffs = self._points[node.indices] - query
                dists = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
                for idx, d in zip(node.indices, dists):
                    heapq.heappush(heap, (float(d), next(counter), int(idx), None))
            else:
                for child in (node.left, node.right):
                    heapq.heappush(
                        heap,
                        (_box_distance(child, query), next(counter), None, child),
                    )
