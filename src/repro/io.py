"""Persistence: save and load instances and arrangements.

Two formats:

* **JSON** (:func:`save_instance_json` / :func:`load_instance_json`) --
  human-readable, good for small instances, fixtures and interchange.
* **NPZ** (:func:`save_instance_npz` / :func:`load_instance_npz`) --
  compressed numpy archive for large instances (attribute matrices stay
  binary).

Arrangements serialise as JSON pair lists with the MaxSum recorded for
integrity checking on load.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.core.conflicts import ConflictGraph
from repro.core.model import Arrangement, Instance
from repro.exceptions import ReproError

_FORMAT_VERSION = 1


def _instance_payload(instance: Instance) -> dict:
    payload: dict = {
        "version": _FORMAT_VERSION,
        "event_capacities": instance.event_capacities.tolist(),
        "user_capacities": instance.user_capacities.tolist(),
        "conflicts": sorted(instance.conflicts.pairs),
        "t": instance.t,
        "metric": instance.metric,
    }
    if instance.event_attributes is not None:
        payload["event_attributes"] = instance.event_attributes.tolist()
        payload["user_attributes"] = instance.user_attributes.tolist()
    else:
        payload["sims"] = instance.sims.tolist()
    return payload


def save_instance_json(instance: Instance, path: str | Path) -> None:
    """Write an instance to a JSON file.

    Attribute-backed instances store attributes (similarity recomputes on
    load); matrix-backed instances store the matrix.
    """
    Path(path).write_text(json.dumps(_instance_payload(instance)))


def load_instance_json(path: str | Path) -> Instance:
    """Load an instance written by :func:`save_instance_json`.

    Raises:
        ReproError: On a missing/garbled payload or unknown version.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read instance from {path}: {exc}") from exc
    return _instance_from_payload(payload, path)


def _instance_from_payload(payload: dict, path) -> Instance:
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported instance format version {version!r}"
        )
    cv = np.asarray(payload["event_capacities"], dtype=np.int64)
    cu = np.asarray(payload["user_capacities"], dtype=np.int64)
    conflicts = ConflictGraph(
        len(cv), [tuple(pair) for pair in payload["conflicts"]]
    )
    if "event_attributes" in payload:
        return Instance.from_attributes(
            np.asarray(payload["event_attributes"], dtype=np.float64),
            np.asarray(payload["user_attributes"], dtype=np.float64),
            cv,
            cu,
            conflicts,
            t=payload["t"],
            metric=payload.get("metric", "euclidean"),
        )
    return Instance.from_matrix(
        np.asarray(payload["sims"], dtype=np.float64), cv, cu, conflicts
    )


def save_instance_npz(instance: Instance, path: str | Path) -> None:
    """Write an instance to a compressed ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "event_capacities": instance.event_capacities,
        "user_capacities": instance.user_capacities,
        "conflicts": np.array(sorted(instance.conflicts.pairs), dtype=np.int64).reshape(-1, 2),
        "t": np.array([instance.t]),
        "metric": np.array([instance.metric]),
    }
    if instance.event_attributes is not None:
        arrays["event_attributes"] = instance.event_attributes
        arrays["user_attributes"] = instance.user_attributes
    else:
        arrays["sims"] = instance.sims
    np.savez_compressed(path, **arrays)


def load_instance_npz(path: str | Path) -> Instance:
    """Load an instance written by :func:`save_instance_npz`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["version"][0])
            if version != _FORMAT_VERSION:
                raise ReproError(
                    f"{path}: unsupported instance format version {version}"
                )
            cv = data["event_capacities"]
            cu = data["user_capacities"]
            conflicts = ConflictGraph(
                len(cv), [tuple(int(x) for x in pair) for pair in data["conflicts"]]
            )
            if "event_attributes" in data:
                return Instance.from_attributes(
                    data["event_attributes"],
                    data["user_attributes"],
                    cv,
                    cu,
                    conflicts,
                    t=float(data["t"][0]),
                    metric=str(data["metric"][0]),
                )
            return Instance.from_matrix(data["sims"], cv, cu, conflicts)
    except (OSError, KeyError, ValueError, zipfile.BadZipFile, EOFError) as exc:
        raise ReproError(f"cannot read instance from {path}: {exc}") from exc


def save_arrangement_json(arrangement: Arrangement, path: str | Path) -> None:
    """Write an arrangement's pairs (and MaxSum checksum) to JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "pairs": arrangement.pairs(),
        "max_sum": arrangement.max_sum(),
    }
    Path(path).write_text(json.dumps(payload))


def load_arrangement_json(
    path: str | Path, instance: Instance, check: bool = True
) -> Arrangement:
    """Load an arrangement against ``instance``.

    Args:
        check: Verify the recorded MaxSum matches the recomputed one
            (catches instance/arrangement mismatches).

    Raises:
        ReproError: On unreadable payloads or a MaxSum mismatch.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read arrangement from {path}: {exc}") from exc
    arrangement = Arrangement(instance)
    for event, user in payload["pairs"]:
        arrangement.add(int(event), int(user))
    if check:
        recomputed = arrangement.max_sum()
        recorded = payload["max_sum"]
        if abs(recomputed - recorded) > 1e-6:
            raise ReproError(
                f"{path}: recorded MaxSum {recorded} != recomputed "
                f"{recomputed}; wrong instance?"
            )
    return arrangement
