"""Timelines for the dynamic-EBSN simulator.

A :class:`Timeline` assigns, for each event of an instance, a posting
time and a start (freeze) time, and for each user an arrival time. The
simulator replays these in time order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Instance
from repro.exceptions import ReproError


@dataclass(frozen=True)
class Timeline:
    """Event posting/start times and user arrival times.

    Attributes:
        post_times: ``(n_events,)`` -- when each event becomes visible.
        start_times: ``(n_events,)`` -- when each event freezes; must be
            strictly after its posting time.
        arrival_times: ``(n_users,)`` -- when each user registers.
    """

    post_times: np.ndarray
    start_times: np.ndarray
    arrival_times: np.ndarray

    def __post_init__(self) -> None:
        if self.post_times.shape != self.start_times.shape:
            raise ReproError("post_times and start_times must align")
        if np.any(self.start_times <= self.post_times):
            raise ReproError("every event must start after it is posted")

    @property
    def horizon(self) -> float:
        """Last instant anything happens."""
        last_start = float(self.start_times.max()) if self.start_times.size else 0.0
        last_arrival = (
            float(self.arrival_times.max()) if self.arrival_times.size else 0.0
        )
        return max(last_start, last_arrival)

    def validate_against(self, instance: Instance) -> None:
        """Check the timeline covers exactly the instance's entities."""
        if self.post_times.shape[0] != instance.n_events:
            raise ReproError(
                f"timeline covers {self.post_times.shape[0]} events, "
                f"instance has {instance.n_events}"
            )
        if self.arrival_times.shape[0] != instance.n_users:
            raise ReproError(
                f"timeline covers {self.arrival_times.shape[0]} users, "
                f"instance has {instance.n_users}"
            )


def random_timeline(
    instance: Instance,
    rng: np.random.Generator,
    horizon: float = 100.0,
    min_lead_time: float = 10.0,
) -> Timeline:
    """Sample a random timeline for ``instance``.

    Events are posted uniformly over the first part of the horizon and
    start after a lead time of at least ``min_lead_time``; users arrive
    uniformly over the whole horizon (so late arrivals miss early
    events -- the effect the rebatch policy must cope with).
    """
    if horizon <= min_lead_time:
        raise ReproError("horizon must exceed min_lead_time")
    post = rng.uniform(0.0, horizon - min_lead_time, size=instance.n_events)
    lead = rng.uniform(min_lead_time, horizon / 2, size=instance.n_events)
    start = np.minimum(post + lead, horizon)
    # Guarantee strict ordering even after the clamp above.
    start = np.maximum(start, post + 1e-6)
    arrivals = rng.uniform(0.0, horizon, size=instance.n_users)
    return Timeline(post_times=post, start_times=start, arrival_times=arrivals)
