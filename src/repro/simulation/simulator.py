"""Discrete-event simulator for the EBSN arrangement lifecycle.

The simulator replays a :class:`~repro.simulation.workload.Timeline` over
a GEACC instance in chronological order. Three kinds of moments exist:

* **event posted** -- the event becomes *visible* (assignable);
* **user arrives** -- the user becomes visible; the policy may react;
* **event starts** -- the event *freezes*: its attendee list at that
  instant is final and contributes to the achieved MaxSum.

Policies mutate the arrangement only through :class:`SimulationState`,
which enforces the lifecycle rules: pairs may only be added between
visible, unfrozen events and arrived users, must satisfy every GEACC
constraint, and pairs involving frozen events can never be removed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import Arrangement, Instance
from repro.core.validation import validate_arrangement
from repro.exceptions import ReproError
from repro.simulation.workload import Timeline


class SimulationState:
    """The policy-facing view of the running simulation."""

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.arrangement = Arrangement(instance)
        self.now = 0.0
        self._visible_events: set[int] = set()
        self._frozen_events: set[int] = set()
        self._arrived_users: set[int] = set()

    @property
    def open_events(self) -> frozenset[int]:
        """Events currently posted and not yet frozen."""
        return frozenset(self._visible_events - self._frozen_events)

    @property
    def frozen_events(self) -> frozenset[int]:
        return frozenset(self._frozen_events)

    @property
    def arrived_users(self) -> frozenset[int]:
        return frozenset(self._arrived_users)

    def can_assign(self, event: int, user: int) -> bool:
        """Lifecycle rules + the usual GEACC feasibility guard."""
        return (
            event in self._visible_events
            and event not in self._frozen_events
            and user in self._arrived_users
            and self.instance.sim(event, user) > 0
            and self.arrangement.can_add(event, user)
        )

    def assign(self, event: int, user: int) -> None:
        """Add a pair; policies must only call this when allowed.

        Raises:
            ReproError: If the lifecycle or feasibility rules forbid it.
        """
        if not self.can_assign(event, user):
            raise ReproError(
                f"cannot assign event {event} to user {user} at t={self.now}"
            )
        self.arrangement.add(event, user)

    def unassign(self, event: int, user: int) -> None:
        """Remove a pair -- only while the event has not frozen."""
        if event in self._frozen_events:
            raise ReproError(f"event {event} is frozen; cannot revoke seats")
        self.arrangement.remove(event, user)

    # Internal lifecycle transitions (driven by the Simulator).

    def _post_event(self, event: int) -> None:
        self._visible_events.add(event)

    def _freeze_event(self, event: int) -> None:
        self._frozen_events.add(event)

    def _arrive_user(self, user: int) -> None:
        self._arrived_users.add(user)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run."""

    achieved_max_sum: float
    arrangement: Arrangement
    n_assignments: int
    events_frozen: int
    timeline_horizon: float
    policy_name: str

    def summary(self) -> str:
        return (
            f"policy={self.policy_name}: MaxSum={self.achieved_max_sum:.3f}, "
            f"{self.n_assignments} assignments, "
            f"{self.events_frozen} events frozen by t={self.timeline_horizon:.1f}"
        )


class Simulator:
    """Replays a timeline over an instance under a policy.

    Args:
        instance: The full GEACC instance (entities become visible over
            time per the timeline).
        timeline: Posting/start/arrival times; validated against the
            instance.
    """

    def __init__(self, instance: Instance, timeline: Timeline) -> None:
        timeline.validate_against(instance)
        self.instance = instance
        self.timeline = timeline

    def run(self, policy: "Policy") -> SimulationResult:  # noqa: F821
        """Run the simulation to the horizon and score the outcome.

        The final arrangement (frozen events' seats plus any standing
        assignments to never-started events -- none with the bundled
        timelines, where every event starts) is validated against the
        full instance before scoring.
        """
        from repro.simulation.policies import Policy  # cycle guard

        if not isinstance(policy, Policy):
            raise ReproError(f"{policy!r} is not a simulation Policy")
        state = SimulationState(self.instance)
        moments: list[tuple[float, int, str, int]] = []
        # Tie-break order within one instant: post events (0), arrivals
        # (1), policy ticks happen via callbacks, freezes last (2) -- a
        # user arriving exactly at start time still catches the event.
        for event, t in enumerate(self.timeline.post_times):
            moments.append((float(t), 0, "post", event))
        for user, t in enumerate(self.timeline.arrival_times):
            moments.append((float(t), 1, "arrive", user))
        for event, t in enumerate(self.timeline.start_times):
            moments.append((float(t), 2, "freeze", event))
        moments.sort()

        policy.on_start(state)
        for t, _, kind, entity in moments:
            state.now = t
            if kind == "post":
                state._post_event(entity)
                policy.on_event_posted(state, entity)
            elif kind == "arrive":
                state._arrive_user(entity)
                policy.on_user_arrival(state, entity)
            else:
                policy.before_event_freeze(state, entity)
                state._freeze_event(entity)
        policy.on_end(state)

        validate_arrangement(state.arrangement)
        return SimulationResult(
            achieved_max_sum=state.arrangement.max_sum(),
            arrangement=state.arrangement,
            n_assignments=len(state.arrangement),
            events_frozen=len(state.frozen_events),
            timeline_horizon=self.timeline.horizon,
            policy_name=policy.name,
        )
