"""Dynamic EBSN simulation (extension beyond the paper's static snapshot).

The paper arranges one static snapshot of events and users. Real EBSNs
are dynamic: organisers post events ahead of their start times, users
register over time, and once an event starts its attendee list is frozen.
This subpackage provides a discrete-event simulator over that lifecycle
plus pluggable arrangement policies, so the static algorithms can be
evaluated *in situ*:

* :class:`~repro.simulation.simulator.Simulator` -- replays a timeline of
  event postings, user arrivals and event freezes over a GEACC instance;
* :class:`~repro.simulation.policies.GreedyArrivalPolicy` -- first-come
  first-served assignment at user arrival (the online extension);
* :class:`~repro.simulation.policies.RebatchPolicy` -- periodically
  re-arranges everything not yet frozen with any registered solver,
  honouring commitments already frozen;
* :func:`~repro.simulation.workload.random_timeline` -- workload
  generator for posting/arrival/start times.

The ablation benchmark ``benchmarks/test_ablation_policies.py`` compares
policies against the clairvoyant offline optimum of the same instance.
"""

from repro.simulation.simulator import SimulationResult, Simulator, SimulationState
from repro.simulation.policies import (
    GreedyArrivalPolicy,
    Policy,
    RebatchPolicy,
)
from repro.simulation.workload import Timeline, random_timeline

__all__ = [
    "Simulator",
    "SimulationResult",
    "SimulationState",
    "Policy",
    "GreedyArrivalPolicy",
    "RebatchPolicy",
    "Timeline",
    "random_timeline",
]
