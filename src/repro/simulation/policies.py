"""Arrangement policies for the dynamic-EBSN simulator.

A :class:`Policy` receives lifecycle callbacks from the simulator and
mutates the arrangement through the :class:`SimulationState` guard API.
Two policies are provided; both are deterministic:

* :class:`GreedyArrivalPolicy` -- pure first-come-first-served: when a
  user arrives, give them their best feasible open events; when an event
  is posted, offer it to already-arrived users with spare capacity.
* :class:`RebatchPolicy` -- additionally, just before any event freezes
  (and that is the only moment a better arrangement still matters for
  it), tear down all assignments among *open* events and re-run a static
  GEACC solver on the open sub-problem, honouring frozen commitments
  (consumed user capacity, conflicts with frozen events).
"""

from __future__ import annotations

from abc import ABC

import numpy as np

from repro.core.algorithms import Solver, get_solver
from repro.core.model import Instance
from repro.simulation.simulator import SimulationState


class Policy(ABC):
    """Base policy: every callback defaults to doing nothing."""

    name = "noop"

    def on_start(self, state: SimulationState) -> None:
        """Called once before any moment is replayed."""

    def on_event_posted(self, state: SimulationState, event: int) -> None:
        """Called after ``event`` becomes visible."""

    def on_user_arrival(self, state: SimulationState, user: int) -> None:
        """Called after ``user`` becomes visible."""

    def before_event_freeze(self, state: SimulationState, event: int) -> None:
        """Called immediately before ``event`` freezes."""

    def on_end(self, state: SimulationState) -> None:
        """Called once after the horizon."""


class GreedyArrivalPolicy(Policy):
    """First-come-first-served seat assignment."""

    name = "greedy-arrival"

    def on_user_arrival(self, state: SimulationState, user: int) -> None:
        self._fill_user(state, user)

    def on_event_posted(self, state: SimulationState, event: int) -> None:
        # Offer the new event to already-arrived users, most interested
        # first, while seats and user capacity allow.
        sims = state.instance.sim_row(event)
        for user in sorted(
            state.arrived_users, key=lambda u: (-sims[u], u)
        ):
            if state.arrangement.event_remaining(event) <= 0:
                break
            if sims[user] > 0 and state.can_assign(event, user):
                state.assign(event, user)

    def _fill_user(self, state: SimulationState, user: int) -> None:
        sims = state.instance.sim_col(user)
        for event in np.argsort(-sims, kind="stable"):
            event = int(event)
            if sims[event] <= 0 or state.arrangement.user_remaining(user) <= 0:
                break
            if state.can_assign(event, user):
                state.assign(event, user)


class RebatchPolicy(GreedyArrivalPolicy):
    """Greedy arrival plus a global re-arrangement before each freeze.

    Args:
        solver: Static solver (instance or registry name) used for the
            re-arrangement of the open sub-problem. Defaults to
            Greedy-GEACC.
    """

    name = "rebatch"

    def __init__(self, solver: Solver | str = "greedy") -> None:
        self._solver = get_solver(solver) if isinstance(solver, str) else solver
        self.rebatches = 0

    def before_event_freeze(self, state: SimulationState, event: int) -> None:
        self._rebatch(state)

    def _rebatch(self, state: SimulationState) -> None:
        """Re-solve the open sub-problem from scratch.

        Builds a restricted instance over *all* events/users where a pair
        is only usable (sim > 0) if its event is open, its user has
        arrived, and the user's frozen commitments do not conflict with
        the event. User capacities are reduced by frozen seats; frozen
        events get capacity 0 in the sub-problem.
        """
        instance = state.instance
        open_events = sorted(state.open_events)
        if not open_events:
            return
        # Tear down standing assignments among open events.
        for event in open_events:
            for user in state.arrangement.users_of(event):
                state.unassign(event, user)

        sims = np.zeros((instance.n_events, instance.n_users))
        arrived = sorted(state.arrived_users)
        conflicts = instance.conflicts
        for event in open_events:
            row = instance.sim_row(event)
            for user in arrived:
                if row[user] <= 0:
                    continue
                frozen_commitments = state.arrangement.events_of(user)
                if conflicts.conflicts_with_any(event, frozen_commitments):
                    continue
                sims[event, user] = row[user]

        event_capacities = np.where(
            np.isin(np.arange(instance.n_events), open_events),
            instance.event_capacities,
            0,
        )
        user_remaining = np.array(
            [state.arrangement.user_remaining(u) for u in range(instance.n_users)]
        )
        sub_instance = Instance(
            event_capacities,
            user_remaining,
            conflicts,
            sims=sims,
        )
        solution = self._solver.solve(sub_instance)
        for event, user in solution.pairs():
            state.assign(event, user)
        self.rebatches += 1
