"""Successive Shortest Path Algorithm (SSPA) for minimum cost flow.

This is the solver the paper cites (via [6]) as the right choice for
large-scale many-to-many assignment with real-valued arc costs. The
implementation keeps Johnson node potentials so every Dijkstra search runs
on non-negative reduced costs, and exposes *incremental* augmentation:
Algorithm 1 of the paper sweeps the flow amount Delta from ``Delta_min`` to
``Delta_max`` and needs the minimum-cost flow at every intermediate amount.
Because SSPA's successive augmenting-path costs are non-decreasing, the
sweep is exactly a sequence of cheapest augmentations, so callers can step
one bottleneck (or one unit) at a time and observe the marginal cost.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable

from repro.exceptions import InfeasibleFlowError, NegativeCycleError
from repro.flow.network import FlowNetwork

_UNREACHED = math.inf


class SuccessiveShortestPaths:
    """Incremental min-cost-flow solver over a :class:`FlowNetwork`.

    Args:
        network: The network to route flow on. Mutated in place.
        source: Source node index.
        sink: Sink node index.

    The solver assumes the *initial* network has no negative-cost cycle.
    If any arc cost is negative, potentials are initialised with one
    Bellman-Ford pass; otherwise they start at zero.
    """

    def __init__(self, network: FlowNetwork, source: int, sink: int) -> None:
        self.network = network
        self.source = source
        self.sink = sink
        self.total_flow = 0
        self.total_cost = 0.0
        self._exhausted = False
        if any(arc.cost < 0 and arc.cap > 0 for arc in network.arcs):
            self._potentials = self._bellman_ford()
        else:
            self._potentials = [0.0] * network.n_nodes

    @property
    def exhausted(self) -> bool:
        """True once no augmenting path remains (max flow reached)."""
        return self._exhausted

    def next_path_cost(self) -> float | None:
        """Cost per unit of the cheapest remaining augmenting path.

        Returns None when the sink is no longer reachable. Runs a full
        Dijkstra search; the result is cached and reused by the next
        :meth:`augment` call.
        """
        if self._exhausted:
            return None
        found = self._dijkstra()
        if found is None:
            self._exhausted = True
            return None
        self._cached_search = found
        dist, _ = found
        return dist[self.sink] + self._potentials[self.sink] - self._potentials[self.source]

    def augment(self, max_units: int | None = None) -> tuple[int, float] | None:
        """Push flow along one cheapest augmenting path.

        Args:
            max_units: Cap on the units pushed this call (defaults to the
                path bottleneck). Passing 1 yields the literal unit-by-unit
                Delta sweep of Algorithm 1.

        Returns:
            ``(units_pushed, cost_per_unit)``, or None when no augmenting
            path exists.
        """
        if self._exhausted:
            return None
        search = getattr(self, "_cached_search", None)
        if search is None:
            search = self._dijkstra()
        self._cached_search = None
        if search is None:
            self._exhausted = True
            return None
        dist, parent_arc = search
        path_cost = (
            dist[self.sink] + self._potentials[self.sink] - self._potentials[self.source]
        )
        self._update_potentials(dist)
        bottleneck = self._bottleneck(parent_arc)
        if max_units is not None:
            bottleneck = min(bottleneck, max_units)
        self._push_along(parent_arc, bottleneck)
        self.total_flow += bottleneck
        self.total_cost += bottleneck * path_cost
        return bottleneck, path_cost

    def run(
        self,
        amount: int | None = None,
        stop_when: Callable[[float], bool] | None = None,
    ) -> tuple[int, float]:
        """Augment until ``amount`` units are routed (or max flow).

        Args:
            amount: Total flow to route; None means route maximum flow.
            stop_when: Optional predicate on the marginal path cost;
                augmentation stops before pushing a path whose per-unit
                cost satisfies the predicate.

        Returns:
            ``(total_flow, total_cost)`` after this call.

        Raises:
            InfeasibleFlowError: If ``amount`` exceeds the maximum flow.
        """
        while amount is None or self.total_flow < amount:
            cost = self.next_path_cost()
            if cost is None:
                if amount is not None:
                    raise InfeasibleFlowError(
                        f"requested {amount} units but max flow is {self.total_flow}"
                    )
                break
            if stop_when is not None and stop_when(cost):
                break
            remaining = None if amount is None else amount - self.total_flow
            self.augment(max_units=remaining)
        return self.total_flow, self.total_cost

    def _dijkstra(self) -> tuple[list[float], list[int]] | None:
        """Shortest path by reduced cost from source to sink.

        Returns ``(dist, parent_arc)`` where dist is in reduced costs, or
        None if the sink is unreachable in the residual network.
        """
        network = self.network
        potentials = self._potentials
        dist = [_UNREACHED] * network.n_nodes
        parent_arc = [-1] * network.n_nodes
        dist[self.source] = 0.0
        heap = [(0.0, self.source)]
        settled = [False] * network.n_nodes
        while heap:
            d, node = heapq.heappop(heap)
            if settled[node]:
                continue
            settled[node] = True
            if node == self.sink:
                break
            for arc_index in network.adjacency[node]:
                arc = network.arcs[arc_index]
                if arc.residual <= 0:
                    continue
                reduced = arc.cost + potentials[node] - potentials[arc.head]
                if reduced < -1e-9:
                    raise NegativeCycleError(
                        f"negative reduced cost {reduced} on arc {arc_index}; "
                        "potentials are inconsistent"
                    )
                candidate = d + max(reduced, 0.0)
                if candidate < dist[arc.head]:
                    dist[arc.head] = candidate
                    parent_arc[arc.head] = arc_index
                    heapq.heappush(heap, (candidate, arc.head))
        if dist[self.sink] is _UNREACHED or math.isinf(dist[self.sink]):
            return None
        return dist, parent_arc

    def _update_potentials(self, dist: list[float]) -> None:
        # Dijkstra terminates as soon as the sink settles, so labels of
        # unsettled nodes are tentative upper bounds. Clamping every label
        # at dist[sink] is the standard fix that keeps all residual reduced
        # costs non-negative after the potential update.
        sink_dist = dist[self.sink]
        for node in range(self.network.n_nodes):
            self._potentials[node] += min(dist[node], sink_dist)

    def _bottleneck(self, parent_arc: list[int]) -> int:
        bottleneck = None
        node = self.sink
        while node != self.source:
            arc_index = parent_arc[node]
            arc = self.network.arcs[arc_index]
            residual = arc.residual
            bottleneck = residual if bottleneck is None else min(bottleneck, residual)
            node = self.network.arcs[arc_index ^ 1].head
        return bottleneck if bottleneck is not None else 0

    def _push_along(self, parent_arc: list[int], amount: int) -> None:
        node = self.sink
        while node != self.source:
            arc_index = parent_arc[node]
            self.network.push(arc_index, amount)
            node = self.network.arcs[arc_index ^ 1].head

    def _bellman_ford(self) -> list[float]:
        network = self.network
        dist = [0.0] * network.n_nodes
        for sweep in range(network.n_nodes):
            changed = False
            for tail in range(network.n_nodes):
                for arc_index in network.adjacency[tail]:
                    arc = network.arcs[arc_index]
                    if arc.residual <= 0:
                        continue
                    if dist[tail] + arc.cost < dist[arc.head] - 1e-12:
                        dist[arc.head] = dist[tail] + arc.cost
                        changed = True
            if not changed:
                return dist
        raise NegativeCycleError("network contains a negative-cost cycle")


def min_cost_flow(
    network: FlowNetwork, source: int, sink: int, amount: int | None = None
) -> tuple[int, float]:
    """Route ``amount`` units (or maximum flow) at minimum cost.

    Convenience wrapper around :class:`SuccessiveShortestPaths`; the
    network's arc flows are updated in place.

    Returns:
        ``(flow, cost)`` actually routed.
    """
    solver = SuccessiveShortestPaths(network, source, sink)
    return solver.run(amount=amount)
