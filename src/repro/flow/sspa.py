"""Successive Shortest Path Algorithm (SSPA) for minimum cost flow.

This is the solver the paper cites (via [6]) as the right choice for
large-scale many-to-many assignment with real-valued arc costs. The
implementation keeps Johnson node potentials so every Dijkstra search runs
on non-negative reduced costs, and exposes *incremental* augmentation:
Algorithm 1 of the paper sweeps the flow amount Delta from ``Delta_min`` to
``Delta_max`` and needs the minimum-cost flow at every intermediate amount.
Because SSPA's successive augmenting-path costs are non-decreasing, the
sweep is exactly a sequence of cheapest augmentations, so callers can step
one bottleneck (or one unit) at a time and observe the marginal cost.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable

import numpy as np

from repro.exceptions import InfeasibleFlowError, NegativeCycleError
from repro.flow.network import FlowNetwork

_UNREACHED = math.inf


class SuccessiveShortestPaths:
    """Incremental min-cost-flow solver over a :class:`FlowNetwork`.

    Args:
        network: The network to route flow on. Mutated in place.
        source: Source node index.
        sink: Sink node index.

    The solver assumes the *initial* network has no negative-cost cycle.
    If any arc cost is negative, potentials are initialised with one
    Bellman-Ford pass; otherwise they start at zero.
    """

    def __init__(self, network: FlowNetwork, source: int, sink: int) -> None:
        self.network = network
        self.source = source
        self.sink = sink
        self.total_flow = 0
        self.total_cost = 0.0
        self._exhausted = False
        self._arrays = network.as_arrays()
        if any(arc.cost < 0 and arc.cap > 0 for arc in network.arcs):
            self._potentials = self._bellman_ford()
        else:
            self._potentials = np.zeros(network.n_nodes, dtype=np.float64)

    @property
    def exhausted(self) -> bool:
        """True once no augmenting path remains (max flow reached)."""
        return self._exhausted

    def next_path_cost(self) -> float | None:
        """Cost per unit of the cheapest remaining augmenting path.

        Returns None when the sink is no longer reachable. Runs a full
        Dijkstra search; the result is cached and reused by the next
        :meth:`augment` call.
        """
        if self._exhausted:
            return None
        found = self._dijkstra()
        if found is None:
            self._exhausted = True
            return None
        self._cached_search = found
        dist, _ = found
        return float(
            dist[self.sink] + self._potentials[self.sink] - self._potentials[self.source]
        )

    def augment(self, max_units: int | None = None) -> tuple[int, float] | None:
        """Push flow along one cheapest augmenting path.

        Args:
            max_units: Cap on the units pushed this call (defaults to the
                path bottleneck). Passing 1 yields the literal unit-by-unit
                Delta sweep of Algorithm 1.

        Returns:
            ``(units_pushed, cost_per_unit)``, or None when no augmenting
            path exists.
        """
        if self._exhausted:
            return None
        search = getattr(self, "_cached_search", None)
        if search is None:
            search = self._dijkstra()
        self._cached_search = None
        if search is None:
            self._exhausted = True
            return None
        dist, parent_arc = search
        path_cost = float(
            dist[self.sink] + self._potentials[self.sink] - self._potentials[self.source]
        )
        self._update_potentials(dist)
        bottleneck = self._bottleneck(parent_arc)
        if max_units is not None:
            bottleneck = min(bottleneck, max_units)
        self._push_along(parent_arc, bottleneck)
        self.total_flow += bottleneck
        self.total_cost += bottleneck * path_cost
        return bottleneck, path_cost

    def run(
        self,
        amount: int | None = None,
        stop_when: Callable[[float], bool] | None = None,
    ) -> tuple[int, float]:
        """Augment until ``amount`` units are routed (or max flow).

        Args:
            amount: Total flow to route; None means route maximum flow.
            stop_when: Optional predicate on the marginal path cost;
                augmentation stops before pushing a path whose per-unit
                cost satisfies the predicate.

        Returns:
            ``(total_flow, total_cost)`` after this call.

        Raises:
            InfeasibleFlowError: If ``amount`` exceeds the maximum flow.
        """
        while amount is None or self.total_flow < amount:
            cost = self.next_path_cost()
            if cost is None:
                if amount is not None:
                    raise InfeasibleFlowError(
                        f"requested {amount} units but max flow is {self.total_flow}"
                    )
                break
            if stop_when is not None and stop_when(cost):
                break
            remaining = None if amount is None else amount - self.total_flow
            self.augment(max_units=remaining)
        return self.total_flow, self.total_cost

    def _dijkstra(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Shortest path by reduced cost from source to sink.

        Returns ``(dist, parent_arc)`` where dist is in reduced costs, or
        None if the sink is unreachable in the residual network.

        Each settle relaxes the node's whole out-arc slice with one array
        expression over the :class:`~repro.flow.network.ResidualArrays`
        view. The reduced cost keeps the scalar association
        ``(cost + pot[node]) - pot[head]`` and surviving candidates are
        applied by a scalar pass *in adjacency order*, so labels, parents,
        and heap push order are bitwise identical to the per-arc loop this
        replaces.
        """
        network = self.network
        arrays = network.as_arrays()
        potentials = self._potentials
        dist = np.full(network.n_nodes, _UNREACHED, dtype=np.float64)
        parent_arc = np.full(network.n_nodes, -1, dtype=np.int64)
        dist[self.source] = 0.0
        heap = [(0.0, self.source)]
        settled = np.zeros(network.n_nodes, dtype=bool)
        indptr, arc_ids = arrays.indptr, arrays.arc_ids
        while heap:
            d, node = heapq.heappop(heap)
            if settled[node]:
                continue
            settled[node] = True
            if node == self.sink:
                break
            ids = arc_ids[indptr[node] : indptr[node + 1]]
            if not ids.shape[0]:
                continue
            live = arrays.cap[ids] > arrays.flow[ids]
            heads = arrays.head[ids]
            reduced = (arrays.cost[ids] + potentials[node]) - potentials[heads]
            bad = live & (reduced < -1e-9)
            if bad.any():
                offender = int(ids[bad.argmax()])
                raise NegativeCycleError(
                    f"negative reduced cost {float(reduced[bad.argmax()])} on "
                    f"arc {offender}; potentials are inconsistent"
                )
            candidate = d + np.maximum(reduced, 0.0)
            ok = live & (candidate < dist[heads])
            for j in np.flatnonzero(ok):
                head = int(heads[j])
                value = float(candidate[j])
                # Earlier arcs in this slice may have already lowered the
                # label; re-check in order like the scalar loop did.
                if value < dist[head]:
                    dist[head] = value
                    parent_arc[head] = int(ids[j])
                    heapq.heappush(heap, (value, head))
        if math.isinf(dist[self.sink]):
            return None
        return dist, parent_arc

    def _update_potentials(self, dist: np.ndarray) -> None:
        # Dijkstra terminates as soon as the sink settles, so labels of
        # unsettled nodes are tentative upper bounds. Clamping every label
        # at dist[sink] is the standard fix that keeps all residual reduced
        # costs non-negative after the potential update.
        self._potentials += np.minimum(dist, dist[self.sink])

    def _bottleneck(self, parent_arc: list[int]) -> int:
        bottleneck = None
        node = self.sink
        while node != self.source:
            arc_index = parent_arc[node]
            arc = self.network.arcs[arc_index]
            residual = arc.residual
            bottleneck = residual if bottleneck is None else min(bottleneck, residual)
            node = self.network.arcs[arc_index ^ 1].head
        return bottleneck if bottleneck is not None else 0

    def _push_along(self, parent_arc: list[int], amount: int) -> None:
        node = self.sink
        while node != self.source:
            arc_index = parent_arc[node]
            self.network.push(arc_index, amount)
            node = self.network.arcs[arc_index ^ 1].head

    def _bellman_ford(self) -> np.ndarray:
        """Initial potentials by vectorised Bellman-Ford (Jacobi sweeps).

        Each sweep relaxes every live arc at once against the previous
        sweep's labels via a scatter-min; strict improvement uses the same
        ``1e-12`` slack as the scalar loop. Jacobi needs at most one sweep
        per shortest-path hop, so ``n_nodes`` sweeps without convergence
        still certifies a negative cycle.
        """
        network = self.network
        arrays = network.as_arrays()
        live = arrays.cap > arrays.flow
        tails = arrays.tail[live]
        heads = arrays.head[live]
        costs = arrays.cost[live]
        dist = np.zeros(network.n_nodes, dtype=np.float64)
        for _ in range(network.n_nodes):
            relaxed = dist.copy()
            np.minimum.at(relaxed, heads, dist[tails] + costs)
            improved = relaxed < dist - 1e-12
            if not improved.any():
                return dist
            dist[improved] = relaxed[improved]
        raise NegativeCycleError("network contains a negative-cost cycle")


def min_cost_flow(
    network: FlowNetwork, source: int, sink: int, amount: int | None = None
) -> tuple[int, float]:
    """Route ``amount`` units (or maximum flow) at minimum cost.

    Convenience wrapper around :class:`SuccessiveShortestPaths`; the
    network's arc flows are updated in place.

    Returns:
        ``(flow, cost)`` actually routed.
    """
    solver = SuccessiveShortestPaths(network, source, sink)
    return solver.run(amount=amount)
