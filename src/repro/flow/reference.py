"""Scalar reference for the dense bipartite min-cost-flow kernel.

:class:`ReferenceBipartiteMinCostFlow` implements the specification in
:mod:`repro.flow.dense_bipartite`'s module docstring with explicit
per-element loops: same float associations, same two-phase strict sweeps,
same lowest-index tie-breaking, same Dijkstra cut and potential clamp.
Every intermediate quantity is an IEEE double on both sides, so the
kernel-equivalence property suite can assert *bitwise* identical flows,
path costs, and potentials -- ties included -- between this reference
and the block kernel.

It exists for verification only: it is O(|V| x |U|) Python work per
sweep generation and has no place on a hot path (lint rule R15 exempts
this module by name).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import FlowError

_SOURCE_FED = -1
_SWEEP_FED = -3

_INF = math.inf


class _Search:
    __slots__ = ("dist_v", "dist_u", "dist_t", "parent_u", "parent_t", "path_cost")

    def __init__(self, dist_v, dist_u, dist_t, parent_u, parent_t, path_cost):
        self.dist_v = dist_v
        self.dist_u = dist_u
        self.dist_t = dist_t
        self.parent_u = parent_u
        self.parent_t = parent_t
        self.path_cost = path_cost


class ReferenceBipartiteMinCostFlow:
    """Loop-based SSP on the source/events/users/sink network.

    Mirrors :class:`repro.flow.dense_bipartite.DenseBipartiteMinCostFlow`
    field-for-field (``flow``, ``event_used``, ``user_used``,
    ``total_flow``, ``total_cost``, ``exhausted``) so tests can compare
    the two after any prefix of ``run`` / ``augment`` calls.
    """

    def __init__(
        self,
        costs: np.ndarray,
        event_capacities: np.ndarray,
        user_capacities: np.ndarray,
    ) -> None:
        costs = np.ascontiguousarray(costs, dtype=np.float64)
        if costs.ndim != 2:
            raise FlowError(f"costs must be 2-D, got shape {costs.shape}")
        if np.any(costs < 0):
            raise FlowError("dense SSP requires non-negative arc costs")
        self.costs = costs
        self.n_events, self.n_users = costs.shape
        self.event_capacities = [int(c) for c in event_capacities]
        self.user_capacities = [int(c) for c in user_capacities]
        if len(self.event_capacities) != self.n_events:
            raise FlowError("event capacities misshaped")
        if len(self.user_capacities) != self.n_users:
            raise FlowError("user capacities misshaped")
        self.flow = np.zeros(costs.shape, dtype=bool)
        self.event_used = [0] * self.n_events
        self.user_used = [0] * self.n_users
        self.total_flow = 0
        self.total_cost = 0.0
        self._pot_v = [0.0] * self.n_events
        self._pot_u = [0.0] * self.n_users
        self._pot_t = 0.0
        self._exhausted = False
        self._cached_search: _Search | None = None

    # ------------------------------------------------------------------
    # Public driver (same surface as the kernel)
    # ------------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def augment(self) -> float | None:
        if self._exhausted:
            return None
        found = self._take_search()
        if found is None:
            return None
        self._commit(found)
        return found.path_cost

    def run(self, amount: int | None = None, stop_cost: float | None = None) -> int:
        routed = 0
        while amount is None or routed < amount:
            if self._exhausted:
                break
            found = self._take_search()
            if found is None:
                break
            if stop_cost is not None and found.path_cost >= stop_cost:
                self._cached_search = found
                break
            self._commit(found)
            routed += 1
        return routed

    def _take_search(self) -> _Search | None:
        found = self._cached_search
        self._cached_search = None
        if found is None:
            found = self._shortest_path()
        if found is None:
            self._exhausted = True
        return found

    # ------------------------------------------------------------------
    # Masking predicates (the kernel maintains these incrementally as
    # inf entries; here they are recomputed per probe)
    # ------------------------------------------------------------------

    def _event_closed(self, v: int) -> bool:
        return self.event_used[v] >= self.event_capacities[v]

    def _user_closed(self, u: int) -> bool:
        return self.user_used[u] >= self.user_capacities[u]

    def _masked(self, v: int, u: int) -> bool:
        """True where the forward arc s->v->u has no residual capacity."""
        return bool(self.flow[v, u]) or self._event_closed(v)

    # ------------------------------------------------------------------
    # One shortest-path search, scalar
    # ------------------------------------------------------------------

    def _shortest_path(self) -> _Search | None:
        nv, nu = self.n_events, self.n_users
        if nv == 0 or nu == 0:
            return None
        costs, pot_v, pot_u = self.costs, self._pot_v, self._pot_u

        # Phase 1: direct labels -- min over open arcs per user column.
        dist_u = [0.0] * nu
        for u in range(nu):
            best = _INF
            for v in range(nv):
                if self._masked(v, u):
                    continue
                c = costs[v, u]
                if c < best:
                    best = c
            dist_u[u] = best - pot_u[u]
        parent_u = [_SOURCE_FED] * nu
        dist_v = [
            -pot_v[v] if self.event_used[v] < self.event_capacities[v] else _INF
            for v in range(nv)
        ]

        def sink_relax() -> tuple[int, list[float]]:
            tvals = [0.0] * nu
            best_u, best_t = 0, _INF
            for u in range(nu):
                t = _INF if self._user_closed(u) else (dist_u[u] + pot_u[u]) - self._pot_t
                tvals[u] = t
                if t < best_t:
                    best_t = t
                    best_u = u
            return best_u, tvals

        parent_t, tvals = sink_relax()
        t_direct = tvals[parent_t]

        # Phase 2: two-phase strict sweeps over the matched arcs, in
        # row-major (v, u) order.
        matched = [
            (v, u) for v in range(nv) for u in range(nu) if self.flow[v, u]
        ]
        if matched:
            cres = {
                (v, u): (-costs[v, u] + pot_u[u]) - pot_v[v] for v, u in matched
            }
            matched_users = {u for _, u in matched}

            def segment_minima() -> dict[int, float]:
                seg: dict[int, float] = {}
                for v, u in matched:
                    cand = dist_u[u] + cres[(v, u)]
                    if v not in seg or cand < seg[v]:
                        seg[v] = cand
                return seg

            seg_min = segment_minima()
            changed = {v: m for v, m in seg_min.items() if m < dist_v[v]}
            if changed and min(changed.values()) < t_direct:
                for _ in range(nu + nv + 2):
                    for v, m in changed.items():
                        dist_v[v] = m
                    vc = sorted(changed)
                    improved: set[int] = set()
                    for u in range(nu):
                        best = _INF
                        for v in vc:
                            if self.flow[v, u]:
                                continue  # saturated: no forward residual
                            cand = ((costs[v, u] + pot_v[v]) - pot_u[u]) + dist_v[v]
                            if cand < best:
                                best = cand
                        if best < dist_u[u]:
                            dist_u[u] = best
                            parent_u[u] = _SWEEP_FED
                            improved.add(u)
                    if not improved:
                        break
                    if not (improved & matched_users):
                        break  # candidate vector cannot change: fixpoint
                    seg_min = segment_minima()
                    changed = {v: m for v, m in seg_min.items() if m < dist_v[v]}
                    if not changed:
                        break
                parent_t, tvals = sink_relax()

        dist_t = tvals[parent_t]
        if math.isinf(dist_t):
            return None
        return _Search(
            dist_v=dist_v,
            dist_u=dist_u,
            dist_t=dist_t,
            parent_u=parent_u,
            parent_t=parent_t,
            path_cost=dist_t + self._pot_t,
        )

    # ------------------------------------------------------------------
    # Equality-based parent recovery (pre-mutation, like the kernel)
    # ------------------------------------------------------------------

    def _parent_event_of(self, u: int, search: _Search) -> int:
        target = search.dist_u[u]
        best_v, best_val = 0, _INF
        for v in range(self.n_events):
            if search.parent_u[u] == _SOURCE_FED:
                if self._masked(v, u):
                    continue
                val = self.costs[v, u] - self._pot_u[u]
            else:
                if self.flow[v, u]:
                    continue
                val = ((self.costs[v, u] + self._pot_v[v]) - self._pot_u[u])
                val += search.dist_v[v]
            if val == target:
                return v
            if val < best_val:
                best_val = val
                best_v = v
        return best_v  # float-noise guard

    def _parent_user_of(self, v: int, search: _Search) -> int:
        target = search.dist_v[v]
        best, best_cand = -1, _INF
        for u in range(self.n_users):
            if not self.flow[v, u]:
                continue
            cand = search.dist_u[u] + (
                (-self.costs[v, u] + self._pot_u[u]) - self._pot_v[v]
            )
            if cand == target:
                return u
            if cand < best_cand:
                best_cand = cand
                best = u
        return best  # float-noise guard

    def _commit(self, search: _Search) -> None:
        adds: list[tuple[int, int]] = []
        drops: list[tuple[int, int]] = []
        u = search.parent_t
        while True:
            v = self._parent_event_of(u, search)
            adds.append((v, u))
            if search.parent_u[u] == _SOURCE_FED:
                break
            u = self._parent_user_of(v, search)
            drops.append((v, u))
        dist_t = search.dist_t
        for v in range(self.n_events):
            self._pot_v[v] += min(search.dist_v[v], dist_t)
        for u in range(self.n_users):
            self._pot_u[u] += min(search.dist_u[u], dist_t)
        self._pot_t += dist_t
        self.user_used[search.parent_t] += 1
        for v, u in adds:
            self.flow[v, u] = True
        self.event_used[adds[-1][0]] += 1
        for v, u in drops:
            self.flow[v, u] = False
        self.total_flow += 1
        self.total_cost += search.path_cost
